#!/usr/bin/env python
"""Error-rate campaign on a suite matrix (a miniature Figure 4).

Sweeps normalised error rates on one of the paper's matrix analogues and
prints the slowdown of every resilience method with respect to the ideal
CG, reproducing the shape of Figure 4: exact forward recovery stays in
the single digits while restart-, rollback- and trivial-based methods
blow up as the error rate grows.

Run with::

    python examples/error_rate_campaign.py [matrix] [rates...]
    python examples/error_rate_campaign.py thermal2 1 10 50
"""

from __future__ import annotations

import sys

from repro.analysis.report import format_table
from repro.experiments.common import ExperimentConfig, build_problem, run_ideal, run_method
from repro.faults.scenarios import ErrorScenario


def main(matrix: str = "qa8fm", rates=(1.0, 5.0, 20.0)) -> None:
    config = ExperimentConfig(repetitions=1, tolerance=1e-9,
                              max_iterations=8000)
    A, b = build_problem(matrix, config)
    ideal = run_ideal(A, b, config, matrix_name=matrix)
    print(f"matrix {matrix}: n={A.shape[0]}, ideal solve "
          f"{ideal.record.iterations} iterations "
          f"({ideal.solve_time:.3f}s simulated)\n")

    rows = []
    for method in ("AFEIR", "FEIR", "Lossy", "ckpt", "Trivial"):
        row = [method]
        for rate in rates:
            scenario = ErrorScenario(name=f"rate{rate:g}",
                                     normalized_rate=float(rate),
                                     seed=config.seed + int(rate))
            run = run_method(A, b, method, scenario, ideal, config,
                             matrix_name=matrix)
            row.append(run.overhead_percent if run.record.converged
                       else float("inf"))
        rows.append(row)

    print(format_table(["method"] + [f"rate {r:g}" for r in rates], rows,
                       title="Slowdown vs ideal CG (%)"))
    print("\n'inf' marks runs that exceeded the iteration budget "
          "(the trivial method at high rates).")


if __name__ == "__main__":
    matrix = sys.argv[1] if len(sys.argv) > 1 else "qa8fm"
    rates = tuple(float(r) for r in sys.argv[2:]) or (1.0, 5.0, 20.0)
    main(matrix, rates)
