#!/usr/bin/env python
"""Error-rate campaign on a suite matrix (a miniature Figure 4).

Sweeps normalised error rates on one of the paper's matrix analogues and
prints the slowdown of every resilience method with respect to the ideal
CG, reproducing the shape of Figure 4: exact forward recovery stays in
the single digits while restart-, rollback- and trivial-based methods
blow up as the error rate grows.

The sweep is a declarative :class:`repro.campaign.CampaignSpec`; swap
the executor name to fan the trials out over a process pool with
identical (bit-for-bit) statistics.  Trials go through the
content-addressed campaign store by default, so re-running the sweep
(or growing it with extra rates) only executes what is new —
``REPRO_NO_STORE=1`` opts out::

    python examples/error_rate_campaign.py [matrix] [rates...]
    python examples/error_rate_campaign.py thermal2 1 10 50
    REPRO_EXECUTOR=process python examples/error_rate_campaign.py qa8fm
    REPRO_NO_STORE=1 python examples/error_rate_campaign.py qa8fm
"""

from __future__ import annotations

import os
import sys

from repro.campaign import (DIVERGED_SLOWDOWN, CampaignSpec, CampaignStore,
                            MatrixSpec, SolverKnobs, make_executor,
                            run_campaign)


def main(matrix: str = "qa8fm", rates=(1.0, 5.0, 20.0),
         executor_name: str = "serial", repetitions: int = 1) -> None:
    spec = CampaignSpec(
        matrices=[MatrixSpec.parse(matrix)],
        methods=("AFEIR", "FEIR", "Lossy", "ckpt", "Trivial"),
        rates=tuple(float(r) for r in rates),
        repetitions=repetitions,
        knobs=SolverKnobs(tolerance=1e-9, max_iterations=8000),
        name=f"error-rate-{matrix}")
    executor = make_executor(executor_name)
    store = None if os.environ.get("REPRO_NO_STORE") else CampaignStore()
    result = run_campaign(spec, executor=executor, store=store)

    print(f"matrix {matrix}: {len(result)} trials via the "
          f"{executor.describe()} executor "
          f"({result.wall_time:.2f}s wall)")
    if store is not None:
        print(f"{store.stats_line()}")
    print()
    print(result.format(title="Slowdown vs ideal CG (%), harmonic mean"))
    diverged = sum(1 for t in result.trials if not t.converged)
    if diverged:
        print(f"\n{diverged} run(s) exceeded the iteration budget (counted "
              f"at the {int(DIVERGED_SLOWDOWN)}% axis cap, like the paper's "
              f"log-scale figure).")


if __name__ == "__main__":
    matrix = sys.argv[1] if len(sys.argv) > 1 else "qa8fm"
    rates = tuple(float(r) for r in sys.argv[2:]) or (1.0, 5.0, 20.0)
    main(matrix, rates, executor_name=os.environ.get("REPRO_EXECUTOR",
                                                     "serial"))
