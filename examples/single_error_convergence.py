#!/usr/bin/env python
"""Convergence curves under a single DUE (a textual Figure 3).

Runs the thermal2 analogue with one error injected into the iterate and
prints an ASCII convergence plot (log10 relative residual against
simulated time) for the ideal CG, FEIR, AFEIR, the Lossy Restart and
checkpoint/rollback.

Run with::

    python examples/single_error_convergence.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentConfig
from repro.experiments.fig3 import format_fig3, run_fig3


def ascii_plot(result, width: int = 72, height: int = 18) -> str:
    """Render the residual histories as a rough ASCII chart."""
    symbols = {"Ideal": ".", "AFEIR": "a", "FEIR": "f", "Lossy": "l",
               "ckpt": "c"}
    t_max = max(result.final_times.values())
    curves = {}
    for method, history in result.histories.items():
        times = np.asarray(history.times)
        logres = history.log_residuals()
        curves[method] = (times, logres)
    y_min = min(lr.min() for _, lr in curves.values())
    y_max = max(lr.max() for _, lr in curves.values())
    grid = [[" "] * width for _ in range(height)]
    for method, (times, logres) in curves.items():
        for t, y in zip(times, logres, strict=True):
            col = min(width - 1, int(t / t_max * (width - 1)))
            row = min(height - 1,
                      int((y_max - y) / max(y_max - y_min, 1e-12) * (height - 1)))
            grid[row][col] = symbols[method]
    lines = ["log10(residual)  [" + ", ".join(f"{s}={m}" for m, s in
                                              symbols.items()) + "]"]
    for r, row in enumerate(grid):
        label = f"{y_max - (y_max - y_min) * r / (height - 1):6.1f} |"
        lines.append(label + "".join(row))
    lines.append(" " * 8 + "-" * width)
    lines.append(" " * 8 + f"0 ... simulated time ... {t_max:.3f}s")
    return "\n".join(lines)


def main() -> None:
    config = ExperimentConfig(repetitions=1, tolerance=1e-9,
                              max_iterations=8000)
    result = run_fig3(config, matrix="thermal2", inject_fraction=0.4, page=3)
    print(format_fig3(result))
    print()
    print(f"(error injected at t={result.injection_time:.3f}s)")
    print()
    print(ascii_plot(result))


if __name__ == "__main__":
    main()
