#!/usr/bin/env python
"""Quickstart: protect a CG solve against DUE with exact forward recovery.

Builds a 2-D Poisson problem, injects one page-sized memory error into
the iterate mid-solve, and compares the ideal CG against FEIR (recovery
in the critical path) and AFEIR (recovery overlapped with reductions).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ResilientCG, SolverConfig, make_strategy
from repro.faults import single_error_scenario
from repro.matrices import poisson_2d_5pt
from repro.matrices.stencil import stencil_rhs


def main() -> None:
    # 1. Build a problem: a 64x64 Poisson grid (4096 unknowns).
    A = poisson_2d_5pt(64)
    b = stencil_rhs(A, kind="random", seed=0)
    config = SolverConfig(num_workers=8, page_size=128)

    # 2. Ideal (fault-free, resilience-free) baseline.
    ideal = ResilientCG(A, b, config=config).solve()
    print("ideal    :", ideal.record.summary())

    # 3. Inject one DUE into page 5 of the iterate at 40% of the solve.
    scenario = single_error_scenario("x", page=5,
                                     time=0.4 * ideal.record.solve_time)

    # 4. Solve with exact forward recovery, in and out of the critical path.
    for method in ("FEIR", "AFEIR", "Lossy", "ckpt"):
        strategy = make_strategy(method, checkpoint_interval=100)
        solver = ResilientCG(A, b, strategy=strategy, scenario=scenario,
                             config=config)
        result = solver.solve(ideal_time=ideal.record.solve_time)
        slowdown = result.record.slowdown_vs(ideal.record)
        print(f"{method:<9}: {result.record.summary()}  "
              f"(slowdown {slowdown:+.2f}%)")

    print("\nFEIR/AFEIR repair the lost page exactly from the relations of "
          "Table 1,\nso they keep the ideal convergence; Lossy restarts and "
          "checkpointing rolls back.")


if __name__ == "__main__":
    main()
