#!/usr/bin/env python
"""Scaling study: analytic Figure 5 projection + measured rank execution.

First calibrates the iteration counts of every resilience method on a
small 27-point Poisson problem and projects per-iteration times to the
paper's 512^3 problem on 64-1024 cores (8 cores per MPI rank).  Then
*really executes* the strip partition at small scale — one rank worker
per row strip, real halo exchange of the search direction, tree
allreduces for the dot products — and prints the measured communication
wall times next to the model's predictions (the results are
bit-identical to the single-rank solver; only where kernels run
changes).

Run with::

    python examples/distributed_scaling.py
"""

from __future__ import annotations

from repro.experiments.fig5 import (format_fig5, format_fig5_measured,
                                    run_fig5, run_fig5_measured)


def main() -> None:
    result = run_fig5(core_counts=(64, 128, 256, 512, 1024),
                      error_counts=(1, 2), calibration_points=16,
                      target_points=512)
    print(format_fig5(result))
    print()
    print("Expected shape (paper): AFEIR/FEIR track the ideal CG, the Lossy")
    print("Restart trails them, and checkpointing/trivial recovery stay below")
    print("a third of the ideal speedup once errors are injected.")
    print()
    measured = run_fig5_measured(ranks=(1, 2, 4), points=10)
    print(format_fig5_measured(measured))


if __name__ == "__main__":
    main()
