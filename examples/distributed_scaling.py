#!/usr/bin/env python
"""Scaling study on the simulated cluster (a miniature Figure 5).

Calibrates the iteration counts of every resilience method on a small
27-point Poisson problem, then projects per-iteration times to the
paper's 512^3 problem on 64-1024 cores (8 cores per MPI rank) and prints
the resulting speedups.

Run with::

    python examples/distributed_scaling.py
"""

from __future__ import annotations

from repro.experiments.fig5 import format_fig5, run_fig5


def main() -> None:
    result = run_fig5(core_counts=(64, 128, 256, 512, 1024),
                      error_counts=(1, 2), calibration_points=16,
                      target_points=512)
    print(format_fig5(result))
    print()
    print("Expected shape (paper): AFEIR/FEIR track the ideal CG, the Lossy")
    print("Restart trails them, and checkpointing/trivial recovery stay below")
    print("a third of the ideal speedup once errors are injected.")


if __name__ == "__main__":
    main()
