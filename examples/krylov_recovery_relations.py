#!/usr/bin/env python
"""Using the Table 1 relations directly on CG, BiCGStab and GMRES data.

The recovery relations are solver-agnostic: this example builds the
dynamic vectors of each Krylov method, destroys one memory page of each,
and restores it exactly from the surviving data, demonstrating the
protection scheme of Section 3.1 without running the full resilient
solver machinery.

Run with::

    python examples/krylov_recovery_relations.py
"""

from __future__ import annotations

import numpy as np

from repro.core.relations import (HessenbergRelation, LinearCombinationRelation,
                                  MatVecRelation, ResidualRelation)
from repro.matrices.blocked import PageBlockedMatrix
from repro.matrices.stencil import poisson_2d_5pt, stencil_rhs


def report(label: str, recovered: np.ndarray, original: np.ndarray) -> None:
    error = np.linalg.norm(recovered - original) / max(np.linalg.norm(original),
                                                       1e-300)
    print(f"  {label:<38s} relative recovery error = {error:.2e}")


def main() -> None:
    A = poisson_2d_5pt(48)                     # n = 2304
    blocked = PageBlockedMatrix(A, page_size=256)
    rng = np.random.default_rng(0)
    b = stencil_rhs(A, kind="random", seed=1)
    page = 4
    sl = blocked.block_slice(page)

    print("CG relations (Listing 1)")
    x = rng.standard_normal(A.shape[0])
    g = b - A @ x
    d = rng.standard_normal(A.shape[0])
    q = A @ d
    residual_rel = ResidualRelation(blocked, b)
    matvec_rel = MatVecRelation(blocked)
    report("g_i = b_i - A_{i,:} x", residual_rel.recover_residual_page(page, x),
           g[sl])
    report("A_ii x_i = b_i - g_i - sum A_ij x_j",
           residual_rel.recover_iterate_page(page, g, np.where(
               np.arange(A.shape[0]) // 256 == page, 0.0, x)), x[sl])
    report("q_i = A_{i,:} d", matvec_rel.recover_lhs_page(page, d), q[sl])
    report("A_ii d_i = q_i - sum A_ij d_j",
           matvec_rel.recover_rhs_page(page, q, np.where(
               np.arange(A.shape[0]) // 256 == page, 0.0, d)), d[sl])

    print("BiCGStab relations (Listing 3): s = g - alpha q")
    alpha = 0.37
    s = g - alpha * q
    lincomb = LinearCombinationRelation(alpha=1.0, beta=-alpha)
    report("s_i = g_i - alpha q_i", lincomb.recover_lhs_page(g[sl], q[sl]), s[sl])
    report("q_i = (g_i - s_i) / alpha", lincomb.recover_w_page(s[sl], g[sl]),
           q[sl])

    print("GMRES relation (Listing 4): Arnoldi basis from the Hessenberg matrix")
    m = 8
    V = np.zeros((A.shape[0], m + 1))
    H = np.zeros((m + 1, m))
    V[:, 0] = g / np.linalg.norm(g)
    for k in range(m):
        w = A @ V[:, k]
        for i in range(k + 1):
            H[i, k] = w @ V[:, i]
            w -= H[i, k] * V[:, i]
        H[k + 1, k] = np.linalg.norm(w)
        V[:, k + 1] = w / H[k + 1, k]
    hessenberg = HessenbergRelation(blocked)
    lost_column = 5
    report(f"v_{lost_column} from H and the other basis vectors",
           hessenberg.recover_basis_vector(lost_column, V, H), V[:, lost_column])

    print("\nEvery dynamic vector of the three solvers is recoverable from")
    print("data that coexists with it, which is the basis of FEIR/AFEIR.")


if __name__ == "__main__":
    main()
