"""Statistical helpers matching the paper's reporting conventions.

The paper reports *harmonic means* of overheads across matrices
(Tables 2 and Figure 4 captions) and error bars as standard deviations
across repetitions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np


def harmonic_mean(values: Sequence[float]) -> float:
    """Plain harmonic mean; every value must be positive."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("harmonic mean of an empty sequence")
    if np.any(arr <= 0):
        raise ValueError("harmonic mean requires strictly positive values")
    return float(arr.size / np.sum(1.0 / arr))


def harmonic_mean_overhead(overheads_percent: Sequence[float]) -> float:
    """Harmonic mean of overhead percentages, robust to zero overheads.

    Overheads are expressed as percentages (possibly zero for methods
    with no fault-free cost, like the Lossy Restart).  A harmonic mean is
    undefined at zero, so we follow the standard convention of averaging
    the slowdown *factors* (1 + overhead/100) harmonically and converting
    back — which reproduces the paper's 0.00% entries exactly.
    """
    arr = np.asarray(list(overheads_percent), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("mean of an empty sequence")
    factors = 1.0 + arr / 100.0
    if np.any(factors <= 0):
        raise ValueError("slowdown factors must be positive")
    hm = harmonic_mean(factors)
    return 100.0 * (hm - 1.0)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric mean of an empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def mean_and_std(values: Sequence[float]) -> Tuple[float, float]:
    """Arithmetic mean and standard deviation (ddof=0)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("mean of an empty sequence")
    return float(arr.mean()), float(arr.std())


def aggregate_by_key(pairs: Iterable[Tuple[str, float]]) -> Dict[str, List[float]]:
    """Group (key, value) pairs into key -> list of values."""
    out: Dict[str, List[float]] = {}
    for key, value in pairs:
        out.setdefault(key, []).append(value)
    return out
