"""Overhead / slowdown / speedup computations.

Two flavours of overhead coexist since the threaded execution backend
landed: *simulated* overhead (the discrete-event makespan ratio of
Table 2 / Figure 4 — deterministic, backend-independent) and *measured*
overhead (the wall-clock ratio of the same graphs really executed on
threads — noisy, but a direct observation instead of a model).
"""

from __future__ import annotations


def overhead_percent(resilient_time: float, ideal_time: float) -> float:
    """Extra execution time of a resilient run versus the ideal run, in %.

    This is the quantity of Table 2 and the y-axis of Figure 4 ("a
    slowdown close to 0 means the resilient CG converges at a speed
    close to that of the ideal one").
    """
    if ideal_time <= 0:
        raise ValueError("ideal time must be positive")
    if resilient_time < 0:
        raise ValueError("resilient time cannot be negative")
    return 100.0 * (resilient_time - ideal_time) / ideal_time


#: The paper uses "overhead" and "performance slowdown" interchangeably.
slowdown_percent = overhead_percent


#: Wall-clock overhead of a really-executed run versus its baseline —
#: the same formula and guards as the simulated flavour (negative values
#: are fine in both: real executions are noisy, and a method whose extra
#: work hides entirely under the reductions, AFEIR's design goal, can
#: measure at or below the ideal run's wall time).  Named separately so
#: call sites say which of the two quantities they report.
measured_overhead_percent = overhead_percent


def speedup(time_reference: float, time_parallel: float) -> float:
    """Classical speedup of a parallel run versus a reference run."""
    if time_parallel <= 0:
        raise ValueError("parallel time must be positive")
    if time_reference <= 0:
        raise ValueError("reference time must be positive")
    return time_reference / time_parallel


def parallel_efficiency(speedup_value: float, core_ratio: float) -> float:
    """Parallel efficiency = speedup / (cores / reference cores)."""
    if core_ratio <= 0:
        raise ValueError("core ratio must be positive")
    return speedup_value / core_ratio
