"""Plain-text table formatting for experiment drivers and benchmarks."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None, float_format: str = "{:.2f}") -> str:
    """Render a fixed-width text table (no external dependency).

    Floats are rendered with ``float_format``; everything else with
    ``str``.  Used by the benchmark harness to print the same rows the
    paper's tables report.
    """
    def render(cell: object) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    str_rows: List[List[str]] = [[render(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    ncols = len(headers)
    for row in str_rows:
        if len(row) != ncols:
            raise ValueError(f"row {row} does not have {ncols} columns")
    widths = [max(len(headers[c]), *(len(r[c]) for r in str_rows)) if str_rows
              else len(headers[c]) for c in range(ncols)]
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths, strict=True)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths, strict=True)))
    return "\n".join(lines)


def format_percent(value: float, decimals: int = 2) -> str:
    """Format a percentage the way the paper's tables do (e.g. ``5.37%``)."""
    return f"{value:.{decimals}f}%"
