"""Analysis utilities: convergence histories, overhead statistics, reports."""

from repro.analysis.convergence import ConvergenceRecord, ResidualHistory
from repro.analysis.overheads import overhead_percent, slowdown_percent, speedup
from repro.analysis.stats import geometric_mean, harmonic_mean, harmonic_mean_overhead
from repro.analysis.report import format_table

__all__ = [
    "ConvergenceRecord",
    "ResidualHistory",
    "format_table",
    "geometric_mean",
    "harmonic_mean",
    "harmonic_mean_overhead",
    "overhead_percent",
    "slowdown_percent",
    "speedup",
]
