"""Residual histories and convergence records.

Figure 3 of the paper plots ``log10(||Ax - b|| / ||b||)`` against wall
time; every solver in this package therefore records, per iteration, the
simulated time and the relative residual so the same plot (and the
convergence-vs-slowdown comparisons of Figure 4) can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class ResidualHistory:
    """Per-iteration record of (iteration, simulated time, relative residual)."""

    iterations: List[int] = field(default_factory=list)
    times: List[float] = field(default_factory=list)
    residuals: List[float] = field(default_factory=list)

    def append(self, iteration: int, time: float, residual: float) -> None:
        if residual < 0:
            raise ValueError("residual norms cannot be negative")
        self.iterations.append(int(iteration))
        self.times.append(float(time))
        self.residuals.append(float(residual))

    def __len__(self) -> int:
        return len(self.iterations)

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else float("inf")

    @property
    def final_time(self) -> float:
        return self.times[-1] if self.times else 0.0

    @property
    def final_iteration(self) -> int:
        return self.iterations[-1] if self.iterations else 0

    def log_residuals(self) -> np.ndarray:
        """``log10`` of the residuals (the y-axis of Figure 3)."""
        res = np.asarray(self.residuals, dtype=np.float64)
        res = np.maximum(res, np.finfo(np.float64).tiny)
        return np.log10(res)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (np.asarray(self.iterations), np.asarray(self.times),
                np.asarray(self.residuals))

    def is_monotone(self, tolerance: float = 0.0) -> bool:
        """True if residuals never increase by more than ``tolerance`` (relative)."""
        res = np.asarray(self.residuals)
        if res.size < 2:
            return True
        increases = np.diff(res) > tolerance * np.maximum(res[:-1], 1e-300)
        return not bool(np.any(increases))

    def time_to_reach(self, threshold: float) -> Optional[float]:
        """Earliest recorded time at which the residual dropped below ``threshold``."""
        for t, r in zip(self.times, self.residuals, strict=True):
            if r <= threshold:
                return t
        return None


@dataclass
class ConvergenceRecord:
    """Outcome of one solve."""

    converged: bool
    iterations: int
    solve_time: float
    final_residual: float
    history: ResidualHistory = field(default_factory=ResidualHistory)
    method: str = ""
    matrix: str = ""
    faults_injected: int = 0
    faults_detected: int = 0
    restarts: int = 0
    rollbacks: int = 0

    def slowdown_vs(self, baseline: "ConvergenceRecord") -> float:
        """Relative slowdown versus a baseline record, in percent."""
        if baseline.solve_time <= 0:
            raise ValueError("baseline solve time must be positive")
        return 100.0 * (self.solve_time - baseline.solve_time) / baseline.solve_time

    def summary(self) -> str:
        status = "converged" if self.converged else "NOT converged"
        return (f"{self.method or 'solver'} on {self.matrix or 'matrix'}: "
                f"{status} in {self.iterations} iterations, "
                f"t={self.solve_time:.3f}s, residual={self.final_residual:.3e}, "
                f"faults={self.faults_detected}/{self.faults_injected}")
