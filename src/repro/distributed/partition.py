"""Row-wise strip partitioning of the linear system across ranks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
import scipy.sparse as sp


@dataclass(frozen=True)
class RankPartition:
    """Rows owned by one rank and the halo it needs from its neighbours."""

    rank: int
    row_start: int
    row_stop: int
    #: Number of remote vector entries this rank reads during A*d.
    halo_size: int
    #: Ranks this one exchanges halos with.
    neighbours: Tuple[int, ...]
    #: Nonzeros in the local block of rows.
    local_nnz: int

    @property
    def local_rows(self) -> int:
        return self.row_stop - self.row_start


class StripPartition:
    """Partition a sparse matrix into contiguous row strips, one per rank.

    The halo of a rank is the set of column indices referenced by its rows
    that fall outside its own row range — exactly the entries of the
    search direction ``p`` that the paper's "exchange task" communicates
    every iteration (Section 3.4).
    """

    def __init__(self, A: sp.spmatrix, num_ranks: int):
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        A = sp.csr_matrix(A)
        n = A.shape[0]
        if num_ranks > n:
            raise ValueError(f"cannot split {n} rows over {num_ranks} ranks")
        self.A = A
        self.n = n
        self.num_ranks = num_ranks
        bounds = np.linspace(0, n, num_ranks + 1).astype(int)
        self._partitions: List[RankPartition] = []
        for rank in range(num_ranks):
            start, stop = int(bounds[rank]), int(bounds[rank + 1])
            sub = A[start:stop, :]
            cols = sub.indices
            remote = cols[(cols < start) | (cols >= stop)]
            halo = int(np.unique(remote).size)
            neighbour_ranks = sorted({int(np.searchsorted(bounds, c, side="right") - 1)
                                      for c in np.unique(remote)})
            self._partitions.append(RankPartition(
                rank=rank, row_start=start, row_stop=stop, halo_size=halo,
                neighbours=tuple(r for r in neighbour_ranks if r != rank),
                local_nnz=int(sub.nnz)))

    def partition(self, rank: int) -> RankPartition:
        if not 0 <= rank < self.num_ranks:
            raise IndexError(f"rank {rank} out of range")
        return self._partitions[rank]

    @property
    def partitions(self) -> List[RankPartition]:
        return list(self._partitions)

    def max_halo(self) -> int:
        return max(p.halo_size for p in self._partitions)

    def max_local_nnz(self) -> int:
        return max(p.local_nnz for p in self._partitions)

    def load_imbalance(self) -> float:
        """Ratio of the heaviest rank's nnz to the average (1.0 = balanced)."""
        nnzs = [p.local_nnz for p in self._partitions]
        return max(nnzs) / (sum(nnzs) / len(nnzs))
