"""Row-wise strip partitioning of the linear system across ranks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np
import scipy.sparse as sp


@dataclass(frozen=True)
class RankPartition:
    """Rows owned by one rank and the halo it needs from its neighbours."""

    rank: int
    row_start: int
    row_stop: int
    #: Number of remote vector entries this rank reads during A*d.
    halo_size: int
    #: Ranks this one exchanges halos with.
    neighbours: Tuple[int, ...]
    #: Per-neighbour halo breakdown: ``(neighbour, entries read from it)``,
    #: in neighbour order.  Sums to ``halo_size``.
    halo_by_neighbour: Tuple[Tuple[int, int], ...]
    #: Nonzeros in the local block of rows.
    local_nnz: int

    @property
    def local_rows(self) -> int:
        return self.row_stop - self.row_start

    def halo_sizes(self) -> Tuple[int, ...]:
        """Entries read from each neighbour, in ``neighbours`` order
        (the per-neighbour shares the communication model charges)."""
        return tuple(size for _, size in self.halo_by_neighbour)


class StripPartition:
    """Partition a sparse matrix into contiguous row strips, one per rank.

    The halo of a rank is the set of column indices referenced by its rows
    that fall outside its own row range — exactly the entries of the
    search direction ``p`` that the paper's "exchange task" communicates
    every iteration (Section 3.4).

    With ``align > 1`` every strip boundary is snapped to a multiple of
    ``align`` (the rank runtime aligns strips to memory pages so each
    page — the unit of DUE loss and of the reproducible reductions — has
    exactly one owning rank).
    """

    def __init__(self, A: "sp.spmatrix", num_ranks: int, align: int = 1):
        if num_ranks <= 0:
            raise ValueError(f"num_ranks must be positive, got {num_ranks}")
        if align <= 0:
            raise ValueError(f"align must be positive, got {align}")
        if not isinstance(A, sp.spmatrix):
            try:
                # SparseOperator and array-likes share the CSR triplet.
                A = sp.csr_matrix((A.data, A.indices, A.indptr),
                                  shape=A.shape)
            except AttributeError:
                A = sp.csr_matrix(A)
        A = sp.csr_matrix(A)
        n = A.shape[0]
        if num_ranks > n:
            raise ValueError(f"cannot split {n} rows over {num_ranks} ranks")
        self.A = A
        self.n = n
        self.num_ranks = num_ranks
        self.align = int(align)
        bounds = self._strip_bounds(n, num_ranks, self.align)
        self._bounds = bounds
        self._partitions: List[RankPartition] = []
        self._halo_indices: List[Dict[int, np.ndarray]] = []
        for rank in range(num_ranks):
            start, stop = int(bounds[rank]), int(bounds[rank + 1])
            p0, p1 = int(A.indptr[start]), int(A.indptr[stop])
            cols = A.indices[p0:p1]
            remote = np.unique(cols[(cols < start) | (cols >= stop)])
            owners = np.searchsorted(bounds, remote, side="right") - 1
            by_neighbour: Dict[int, np.ndarray] = {
                int(r): remote[owners == r] for r in np.unique(owners)}
            neighbour_ranks = tuple(sorted(by_neighbour))
            self._halo_indices.append(by_neighbour)
            self._partitions.append(RankPartition(
                rank=rank, row_start=start, row_stop=stop,
                halo_size=int(remote.size),
                neighbours=neighbour_ranks,
                halo_by_neighbour=tuple((r, int(by_neighbour[r].size))
                                        for r in neighbour_ranks),
                local_nnz=p1 - p0))

    @staticmethod
    def _strip_bounds(n: int, num_ranks: int, align: int) -> np.ndarray:
        """Contiguous, validated strip bounds (aligned when requested).

        A truncated ``linspace`` is only *accidentally* non-empty; after
        snapping to ``align`` it genuinely can collapse a strip, so the
        bounds are validated explicitly instead of trusting the rounding.
        """
        if align > 1:
            units = -(-n // align)          # ceil: ragged final unit allowed
            if units < num_ranks:
                raise ValueError(
                    f"cannot split {n} rows into {num_ranks} strips aligned "
                    f"to {align}: only {units} aligned unit(s) available "
                    f"(reduce num_ranks or the alignment/page size)")
            unit_bounds = np.linspace(0, units, num_ranks + 1).astype(int)
            bounds = np.minimum(unit_bounds * align, n)
        else:
            bounds = np.linspace(0, n, num_ranks + 1).astype(int)
        if bounds[0] != 0 or bounds[-1] != n:
            raise ValueError(
                f"strip bounds {bounds.tolist()} do not cover [0, {n})")
        empty = np.flatnonzero(np.diff(bounds) <= 0)
        if empty.size:
            raise ValueError(
                f"strip partition of {n} rows over {num_ranks} ranks "
                f"(align={align}) produces empty strip(s) for rank(s) "
                f"{empty.tolist()}; use fewer ranks")
        return bounds

    # ------------------------------------------------------------------
    def partition(self, rank: int) -> RankPartition:
        if not 0 <= rank < self.num_ranks:
            raise IndexError(f"rank {rank} out of range")
        return self._partitions[rank]

    @property
    def partitions(self) -> List[RankPartition]:
        return list(self._partitions)

    @property
    def bounds(self) -> np.ndarray:
        """Strip boundaries: rank ``r`` owns rows ``[bounds[r], bounds[r+1])``."""
        return self._bounds.copy()

    def owner_of_row(self, row: int) -> int:
        """Rank owning global row ``row``."""
        if not 0 <= row < self.n:
            raise IndexError(f"row {row} out of range for n={self.n}")
        return int(np.searchsorted(self._bounds, row, side="right") - 1)

    def halo_indices(self, rank: int) -> Dict[int, np.ndarray]:
        """Global column indices ``rank`` must receive, per neighbour.

        The arrays are sorted ascending; neighbour ``j``'s array is
        exactly the payload of the ``j -> rank`` halo message.
        """
        if not 0 <= rank < self.num_ranks:
            raise IndexError(f"rank {rank} out of range")
        return {r: idx.copy() for r, idx in self._halo_indices[rank].items()}

    def send_plan(self, rank: int) -> Dict[int, np.ndarray]:
        """Global indices ``rank`` must send, per destination rank.

        The mirror of :meth:`halo_indices`: destination ``j`` receives the
        entries of ``rank``'s strip that appear in ``j``'s halo.
        """
        plan: Dict[int, np.ndarray] = {}
        for other in range(self.num_ranks):
            if other == rank:
                continue
            idx = self._halo_indices[other].get(rank)
            if idx is not None and idx.size:
                plan[other] = idx.copy()
        return plan

    def max_halo(self) -> int:
        return max(p.halo_size for p in self._partitions)

    def max_local_nnz(self) -> int:
        return max(p.local_nnz for p in self._partitions)

    def load_imbalance(self) -> float:
        """Ratio of the heaviest rank's nnz to the average (1.0 = balanced)."""
        nnzs = [p.local_nnz for p in self._partitions]
        return max(nnzs) / (sum(nnzs) / len(nnzs))
