"""Inter-rank communication cost model (halo exchange, allreduce)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple, Union

import numpy as np

from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL


@dataclass(frozen=True)
class CommunicationModel:
    """Latency/bandwidth model of the cluster interconnect.

    The defaults are loosely based on MareNostrum-3 era InfiniBand FDR10
    (the machine of Section 5.5): microsecond-scale latency, a few GB/s
    of per-link bandwidth.
    """

    cost_model: CostModel = DEFAULT_COST_MODEL

    def halo_exchange(self, halo: Union[int, Sequence[int]],
                      num_neighbours: int = 0) -> float:
        """Time for one rank to exchange its halo with its neighbours.

        ``halo`` is either the per-neighbour entry counts (the honest
        form, straight from
        :meth:`~repro.distributed.partition.RankPartition.halo_sizes`) or
        a total entry count evenly split over ``num_neighbours``.

        Messages to different neighbours overlap (they use different
        links and are posted together), so the exchange costs a single
        message latency plus the *largest* per-neighbour share — not the
        mean share with one serialised latency per neighbour.
        """
        if isinstance(halo, (int, np.integer)):
            if halo < 0 or num_neighbours < 0:
                raise ValueError("halo size and neighbour count must be >= 0")
            if num_neighbours == 0 or halo == 0:
                return 0.0
            max_entries = halo / num_neighbours
        else:
            sizes = [int(s) for s in halo]
            if any(s < 0 for s in sizes):
                raise ValueError("per-neighbour halo sizes must be >= 0")
            sizes = [s for s in sizes if s > 0]
            if not sizes:
                return 0.0
            max_entries = max(sizes)
        return (self.cost_model.network_latency
                + 8.0 * max_entries / self.cost_model.network_bandwidth)

    def allreduce(self, num_ranks: int, values: int = 1) -> float:
        """Tree allreduce of ``values`` doubles across ``num_ranks`` ranks."""
        if num_ranks <= 1:
            return 0.0
        if values < 0:
            raise ValueError(f"values must be >= 0, got {values}")
        return self.cost_model.allreduce(8.0 * values, num_ranks)

    def broadcast(self, num_ranks: int, num_bytes: float) -> float:
        """Tree broadcast (used for initial data distribution, not timed in CG)."""
        if num_ranks <= 1:
            return 0.0
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be >= 0, got {num_bytes}")
        stages = math.ceil(math.log2(num_ranks))
        return stages * self.cost_model.message(num_bytes)


def fit_communication_model(
        samples: Iterable[Tuple[float, float]],
        base: CostModel = DEFAULT_COST_MODEL) -> Tuple[CommunicationModel,
                                                       float, float]:
    """Calibrate the interconnect constants from measured exchanges.

    ``samples`` are ``(payload_bytes, seconds)`` pairs of real point-to-
    point transfers (the rank runtime's halo messages and allreduce
    hops).  A least-squares fit of ``t = latency + bytes / bandwidth``
    yields effective constants; the returned model plugs straight into
    :class:`~repro.distributed.cluster.ClusterModel`, so the analytic
    Figure 5 projection can be re-anchored on *measured* communication
    instead of the InfiniBand defaults.

    Returns ``(model, latency, bandwidth)``.  Degenerate inputs (fewer
    than two distinct payload sizes) keep the base bandwidth and fit the
    latency as the mean residual, which is still the dominant term for
    queue-based shared-memory transports.
    """
    pts = [(float(b), float(t)) for b, t in samples if t > 0]
    if not pts:
        raise ValueError("cannot calibrate from zero measured samples")
    xs = np.array([b for b, _ in pts])
    ts = np.array([t for _, t in pts])
    if np.unique(xs).size >= 2:
        design = np.column_stack([np.ones_like(xs), xs])
        (latency, inv_bw), *_ = np.linalg.lstsq(design, ts, rcond=None)
        latency = float(latency)
        bandwidth = (1.0 / inv_bw) if inv_bw > 0 else base.network_bandwidth
    else:
        bandwidth = base.network_bandwidth
        latency = float(np.mean(ts - xs / bandwidth))
    latency = max(latency, 1e-9)
    bandwidth = float(max(bandwidth, 1.0))
    model = CommunicationModel(base.scaled(network_latency=latency,
                                           network_bandwidth=bandwidth))
    return model, latency, bandwidth
