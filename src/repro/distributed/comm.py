"""Inter-rank communication cost model (halo exchange, allreduce)."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL


@dataclass(frozen=True)
class CommunicationModel:
    """Latency/bandwidth model of the cluster interconnect.

    The defaults are loosely based on MareNostrum-3 era InfiniBand FDR10
    (the machine of Section 5.5): microsecond-scale latency, a few GB/s
    of per-link bandwidth.
    """

    cost_model: CostModel = DEFAULT_COST_MODEL

    def halo_exchange(self, halo_entries: int, num_neighbours: int) -> float:
        """Time for one rank to exchange its halo with its neighbours.

        Each neighbour exchange is one message pair; messages to different
        neighbours are assumed to overlap, so the cost is dominated by the
        largest per-neighbour share plus one latency per neighbour.
        """
        if halo_entries < 0 or num_neighbours < 0:
            raise ValueError("halo size and neighbour count must be >= 0")
        if num_neighbours == 0 or halo_entries == 0:
            return 0.0
        bytes_per_neighbour = 8.0 * halo_entries / num_neighbours
        return (num_neighbours * self.cost_model.network_latency
                + bytes_per_neighbour / self.cost_model.network_bandwidth)

    def allreduce(self, num_ranks: int, values: int = 1) -> float:
        """Tree allreduce of ``values`` doubles across ``num_ranks`` ranks."""
        if num_ranks <= 1:
            return 0.0
        return self.cost_model.allreduce(8.0 * values, num_ranks)

    def broadcast(self, num_ranks: int, num_bytes: float) -> float:
        """Tree broadcast (used for initial data distribution, not timed in CG)."""
        if num_ranks <= 1:
            return 0.0
        stages = math.ceil(math.log2(num_ranks))
        return stages * self.cost_model.message(num_bytes)
