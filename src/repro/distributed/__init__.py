"""Distributed-memory layer: measured rank execution + analytic scaling.

The paper's Section 5.5 runs a hybrid MPI + OmpSs CG on 64 to 1024 cores
of MareNostrum (one MPI rank per 8-core socket) solving a 27-point
stencil Poisson problem, and reports speedups for the five resilience
methods under one and two injected errors per run.

This package now covers that setup from two complementary angles:

* :mod:`repro.distributed.ranks` **really executes** the strip
  partition at small scale: one rank worker per
  :class:`~repro.distributed.partition.RankPartition` row strip, halo
  exchange of the search direction over shared-memory message queues,
  reproducibly-ordered tree allreduces for the dot products, and
  recovery dispatched to the rank owning the corrupted page — with
  every transfer wall-clock timed (``SolverConfig(ranks=N)``).
* :class:`~repro.distributed.cluster.ClusterModel` projects the same
  iteration structure analytically to the paper's 512^3 problem on up
  to 1024 cores, using a :class:`~repro.distributed.comm.CommunicationModel`
  whose interconnect constants default to InfiniBand-era values and can
  be calibrated from the measured rank-runtime exchanges
  (:func:`~repro.distributed.comm.fit_communication_model`).
"""

from repro.distributed.partition import RankPartition, StripPartition
from repro.distributed.comm import CommunicationModel, fit_communication_model
from repro.distributed.cluster import ClusterModel, ScalingResult
from repro.distributed.ranks import (RankCommStats, RankKernelEngine,
                                     RankRuntime)

__all__ = [
    "ClusterModel",
    "CommunicationModel",
    "RankCommStats",
    "RankKernelEngine",
    "RankPartition",
    "RankRuntime",
    "ScalingResult",
    "StripPartition",
    "fit_communication_model",
]
