"""Simulated distributed-memory (MPI + tasks) layer for the scaling study.

The paper's Section 5.5 runs a hybrid MPI + OmpSs CG on 64 to 1024 cores
of MareNostrum (one MPI rank per 8-core socket) solving a 27-point
stencil Poisson problem, and reports speedups for the five resilience
methods under one and two injected errors per run.

Real MPI is not available offline (and pure Python could not exercise it
meaningfully anyway), so this package models the distributed execution
analytically on top of the same cost model used by the single-node
runtime: per-rank strip partitions, neighbour halo exchanges whose
volume follows the stencil bandwidth, and tree allreduces for the CG
scalars.  The per-iteration numerical behaviour (how many extra
iterations a restart costs, how long a recovery takes) is taken from the
single-node machinery, so the speedup curves reflect the same trade-offs
the paper measures.
"""

from repro.distributed.partition import StripPartition
from repro.distributed.comm import CommunicationModel
from repro.distributed.cluster import ClusterModel, ScalingResult

__all__ = [
    "ClusterModel",
    "CommunicationModel",
    "ScalingResult",
    "StripPartition",
]
