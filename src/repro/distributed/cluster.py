"""Cluster-scale model for the Figure 5 scaling study.

The model is a hybrid:

* *iteration counts* per method and error count come from real runs of
  the single-node :class:`~repro.solvers.ResilientCG` machinery on a
  small 27-point Poisson problem (so restart penalties, rollback losses
  and exact-recovery behaviour are measured, not guessed);
* *per-iteration time* at the target problem size (the paper's 512^3
  unknowns) and rank count is computed analytically from the cost model:
  per-rank roofline compute over 8 worker cores, strip-partition halo
  exchange, and two tree allreduces per iteration, plus each method's
  fault-free per-iteration overhead (recovery-task barriers for FEIR,
  checkpoint writes for the checkpointing method);
* per-error costs (recovery solves, signal servicing, rollback reads)
  are added on top, in or out of the critical path depending on the
  method.

Speedups are reported relative to the ideal CG on the smallest core
count (64 cores = 8 ranks), exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.manager import STRATEGY_NAMES, make_strategy
from repro.distributed.comm import CommunicationModel
from repro.faults.scenarios import ErrorScenario, multi_error_scenario
from repro.faults.injector import Injection
from repro.matrices.stencil import poisson_3d_27pt, stencil_rhs
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.solvers.resilient_cg import ResilientCG, SolverConfig


@dataclass
class ScalingResult:
    """Speedup of one method at one core count and error count."""

    method: str
    cores: int
    errors: int
    iterations: int
    time: float
    speedup: float
    parallel_efficiency: float


@dataclass(frozen=True)
class CalibrationTask:
    """One (method, error count) calibration solve — picklable, so the
    calibration grid can be fanned out over a campaign executor."""

    method: str
    errors: int
    calibration_points: int
    workers_per_rank: int
    tolerance: float
    checkpoint_interval: int
    tau: float
    pages: int
    cost_model: CostModel = DEFAULT_COST_MODEL

    def content_token(self) -> str:
        """Canonical token for the campaign store: the measured iteration
        count is a pure function of these fields."""
        import dataclasses
        cost = ",".join(f"{f.name}={getattr(self.cost_model, f.name)!r}"
                        for f in dataclasses.fields(self.cost_model))
        return (f"fig5-calibration/v1|method={self.method}|"
                f"errors={self.errors}|points={self.calibration_points}|"
                f"wpr={self.workers_per_rank}|tol={self.tolerance!r}|"
                f"ckpt={self.checkpoint_interval}|tau={self.tau!r}|"
                f"pages={self.pages}|cost[{cost}]")


#: Per-process cache of the calibration problem (the same 27-point
#: Poisson system serves every cell of the grid).
_CALIBRATION_PROBLEMS: Dict[int, tuple] = {}


def _calibration_problem(points: int) -> tuple:
    if points not in _CALIBRATION_PROBLEMS:
        A = poisson_3d_27pt(points)
        _CALIBRATION_PROBLEMS[points] = (A, stencil_rhs(A))
    return _CALIBRATION_PROBLEMS[points]


def run_calibration_task(task: CalibrationTask):
    """``(task, measured iteration count)`` of one calibration cell.

    Module-level so process-pool executors can pickle it; the task is
    echoed back because pool executors complete work out of order.
    """
    A, b = _calibration_problem(task.calibration_points)
    cfg = SolverConfig(num_workers=task.workers_per_rank, page_size=128,
                       tolerance=task.tolerance, record_history=False)
    if task.errors == 0:
        scenario: Optional[ErrorScenario] = None
    else:
        # Errors hit pages of the iterate at evenly spread times,
        # mirroring the paper's "1 and 2 errors per run".
        injections = [Injection(time=task.tau * (k + 1) / (task.errors + 1),
                                vector="x",
                                page=(7 * (k + 1)) % max(task.pages, 1))
                      for k in range(task.errors)]
        scenario = multi_error_scenario(injections,
                                        name=f"{task.method}-{task.errors}err")
    strategy = make_strategy(task.method, cost_model=task.cost_model,
                             checkpoint_interval=task.checkpoint_interval)
    solver = ResilientCG(A, b, strategy=strategy, scenario=scenario,
                         config=cfg)
    record = solver.solve(ideal_time=task.tau).record
    return task, max(record.iterations, 1)


@dataclass
class ClusterModel:
    """Analytic MPI+tasks scaling model calibrated on small-problem runs."""

    #: Unknowns per dimension of the *target* problem (the paper uses 512).
    target_points: int = 512
    #: Unknowns per dimension of the small problem used to measure
    #: iteration counts (kept small so the model builds in seconds).
    calibration_points: int = 24
    workers_per_rank: int = 8
    cost_model: CostModel = DEFAULT_COST_MODEL
    tolerance: float = 1e-10
    checkpoint_interval: int = 50
    #: Interconnect model used for halo/allreduce terms.  Defaults to the
    #: InfiniBand-ish constants of :class:`CommunicationModel`; pass one
    #: calibrated by
    #: :func:`~repro.distributed.comm.fit_communication_model` to anchor
    #: the projection on *measured* rank-runtime exchanges.
    comm_model: Optional[CommunicationModel] = None
    _iteration_cache: Dict = field(default_factory=dict, repr=False)
    _calibration: Dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # calibration runs (real numerics on the small problem)
    # ------------------------------------------------------------------
    def _ideal_calibration_key(self) -> str:
        """Content address of the ideal calibration solve's outcome."""
        import dataclasses

        from repro.campaign.spec import content_hash
        cost = ",".join(f"{f.name}={getattr(self.cost_model, f.name)!r}"
                        for f in dataclasses.fields(self.cost_model))
        return content_hash(
            f"fig5-ideal/v1|points={self.calibration_points}|"
            f"wpr={self.workers_per_rank}|tol={self.tolerance!r}|"
            f"page=128|cost[{cost}]")

    def _calibrate(self, executor=None, store=None) -> Dict:
        """Measure iteration counts per (method, errors) on the small problem.

        ``executor`` is an optional
        :class:`~repro.campaign.executors.CampaignExecutor`; the 15-cell
        (method x error count) grid of real solver runs is independent
        work, so it maps over the campaign executors exactly like
        fault-injection trials do.  ``store`` (a
        :class:`~repro.campaign.store.CampaignStore`) caches both the
        ideal solve (``tau``, page count, iterations) and every cell's
        measured iteration count by content address, so a warm Figure 5
        re-run performs no calibration solves at all.
        """
        if self._calibration:
            return self._calibration
        from repro.campaign.spec import content_hash

        ideal_key = self._ideal_calibration_key()
        cached_ideal = store.get_scalar(ideal_key) if store is not None \
            else None
        if cached_ideal is not None:
            tau = float.fromhex(cached_ideal["tau"])
            pages = int(cached_ideal["pages"])
            ideal_iterations = int(cached_ideal["iterations"])
        else:
            A, b = _calibration_problem(self.calibration_points)
            cfg = SolverConfig(num_workers=self.workers_per_rank,
                               page_size=128, tolerance=self.tolerance,
                               record_history=False)
            ideal_solver = ResilientCG(A, b, config=cfg)
            pages = ideal_solver.blocked.num_blocks
            ideal = ideal_solver.solve()
            tau = ideal.record.solve_time
            ideal_iterations = ideal.record.iterations
            if store is not None:
                store.put_scalar(ideal_key, {
                    "tau": float(tau).hex(), "pages": pages,
                    "iterations": ideal_iterations})
        results: Dict = {"ideal": {0: ideal_iterations,
                                   1: ideal_iterations,
                                   2: ideal_iterations}}
        tasks = [CalibrationTask(method=name, errors=errors,
                                 calibration_points=self.calibration_points,
                                 workers_per_rank=self.workers_per_rank,
                                 tolerance=self.tolerance,
                                 checkpoint_interval=self.checkpoint_interval,
                                 tau=tau, pages=pages,
                                 cost_model=self.cost_model)
                 for name in STRATEGY_NAMES for errors in (0, 1, 2)]
        iteration_counts: Dict = {}
        pending = []
        for task in tasks:
            cached = store.get_scalar(content_hash(task.content_token())) \
                if store is not None else None
            if cached is not None:
                iteration_counts[(task.method, task.errors)] = int(cached)
            else:
                pending.append(task)
        if executor is None:
            from repro.campaign.executors import SerialExecutor
            executor = SerialExecutor()
        for task, count in executor.run(run_calibration_task, pending):
            iteration_counts[(task.method, task.errors)] = count
            if store is not None:
                store.put_scalar(content_hash(task.content_token()), count)
        for name in STRATEGY_NAMES:
            results[name] = {errors: iteration_counts[(name, errors)]
                             for errors in (0, 1, 2)}
        self._calibration = results
        return results

    # ------------------------------------------------------------------
    # analytic per-iteration time at the target scale
    # ------------------------------------------------------------------
    def _target_rows(self) -> int:
        return self.target_points ** 3

    def iteration_time(self, num_ranks: int, method: str = "ideal") -> float:
        """Per-iteration wall time of the hybrid CG at the target scale."""
        if num_ranks < 1:
            raise ValueError(f"num_ranks must be >= 1, got {num_ranks}")
        key = (num_ranks, method)
        if key in self._iteration_cache:
            return self._iteration_cache[key]
        cm = self.cost_model
        n = self._target_rows()
        rows = n / num_ranks
        nnz = 27.0 * rows
        # Local compute of one iteration (spmv + 3 axpy + 2 dots), spread over
        # the rank's worker cores.
        flops = 2.0 * nnz + 5.0 * 2.0 * rows
        bytes_moved = 12.0 * nnz + 10.0 * 8.0 * rows
        compute = cm.kernel_time(flops, bytes_moved) / self.workers_per_rank
        # Task runtime overhead: ~6 strip-mined task groups per iteration.
        runtime = 6.0 * cm.task_overhead
        time = compute + self.comm_time_per_iteration(num_ranks) + runtime
        # Method-specific fault-free per-iteration overhead.
        if method == "FEIR":
            time += 3.0 * (cm.task_overhead + cm.recovery_check())
        elif method == "AFEIR":
            time += 1.0 * cm.task_overhead
        elif method == "ckpt":
            volume = 2.0 * 8.0 * rows
            time += cm.checkpoint_write(volume) / self.checkpoint_interval
        self._iteration_cache[key] = time
        return time

    def neighbour_planes(self, num_ranks: int) -> List[int]:
        """Per-neighbour halo sizes of an interior rank's strip.

        A single rank owns the whole domain and exchanges nothing — the
        old ``2 if num_ranks > 2 else 1`` floor charged ~a millisecond
        of phantom halo per iteration at ``num_ranks == 1``, skewing
        every sweep whose smallest configuration collapses to one rank.
        """
        if num_ranks < 1:
            raise ValueError(f"num_ranks must be >= 1, got {num_ranks}")
        plane = int(self.target_points ** 2)
        if num_ranks == 1:
            return []
        if num_ranks == 2:
            return [plane]
        return [plane, plane]

    def comm_time_per_iteration(self, num_ranks: int) -> float:
        """Halo + allreduce share of one CG iteration at ``num_ranks``."""
        comm = self.comm_model or CommunicationModel(self.cost_model)
        return (comm.halo_exchange(self.neighbour_planes(num_ranks))
                + 2.0 * comm.allreduce(num_ranks))

    def _per_error_cost(self, method: str, num_ranks: int) -> float:
        """Critical-path time added by servicing one DUE at the target scale."""
        cm = self.cost_model
        service = 0.5e-3
        block = cm.block_solve(512, factorized=False)
        if method == "FEIR":
            return service + block
        if method == "AFEIR":
            return service          # recovery overlapped with computation
        if method == "Lossy":
            # Interpolation plus the restart's full residual recomputation.
            return service + block + self.iteration_time(num_ranks, "ideal")
        if method == "ckpt":
            rows = self._target_rows() / num_ranks
            return service + cm.checkpoint_read(2.0 * 8.0 * rows)
        if method == "Trivial":
            return service
        return service

    # ------------------------------------------------------------------
    # the actual scaling sweep
    # ------------------------------------------------------------------
    def run(self, core_counts: Sequence[int] = (64, 128, 256, 512, 1024),
            error_counts: Sequence[int] = (1, 2),
            methods: Sequence[str] = STRATEGY_NAMES,
            executor=None, store=None) -> List[ScalingResult]:
        """Produce the Figure 5 dataset: speedups per method/cores/errors.

        ``executor`` (a campaign executor) parallelises the calibration
        solves; the analytic extrapolation itself is instantaneous.
        ``store`` caches the calibration solves content-addressed, so a
        warm re-run skips them entirely.
        """
        if not core_counts:
            raise ValueError("core_counts must not be empty")
        for cores in core_counts:
            self._ranks_for(cores)      # validate before any solve runs
        calibration = self._calibrate(executor=executor, store=store)
        results: List[ScalingResult] = []
        ref_cores = min(core_counts)
        ref_ranks = self._ranks_for(ref_cores)
        ref_time = (calibration["ideal"][0]
                    * self.iteration_time(ref_ranks, "ideal"))
        for cores in core_counts:
            ranks = self._ranks_for(cores)
            # Ideal reference at this core count.
            ideal_time = calibration["ideal"][0] * self.iteration_time(ranks, "ideal")
            results.append(ScalingResult(
                method="Ideal", cores=cores, errors=0,
                iterations=calibration["ideal"][0], time=ideal_time,
                speedup=ref_time / ideal_time,
                parallel_efficiency=(ref_time / ideal_time)
                / (cores / ref_cores)))
            for errors in error_counts:
                for method in methods:
                    iterations = calibration[method][errors]
                    time = iterations * self.iteration_time(ranks, method)
                    time += errors * self._per_error_cost(method, ranks)
                    speedup = ref_time / time
                    results.append(ScalingResult(
                        method=method, cores=cores, errors=errors,
                        iterations=iterations, time=time, speedup=speedup,
                        parallel_efficiency=speedup / (cores / ref_cores)))
        return results

    def _ranks_for(self, cores: int) -> int:
        """Rank count at ``cores``, refusing the degenerate configurations
        that used to be silently clamped to one rank."""
        if cores < self.workers_per_rank:
            raise ValueError(
                f"{cores} cores cannot host a {self.workers_per_rank}"
                f"-worker rank; the old behaviour silently clamped this to "
                f"1 rank, skewing the sweep (lower workers_per_rank or "
                f"raise the core count)")
        return cores // self.workers_per_rank

    def ideal_parallel_efficiency(self, cores: int,
                                  reference_cores: int = 64) -> float:
        """Parallel efficiency of the ideal CG at ``cores`` (paper: 80.17%)."""
        ranks = self._ranks_for(cores)
        ref_ranks = self._ranks_for(reference_cores)
        ref = self.iteration_time(ref_ranks, "ideal")
        cur = self.iteration_time(ranks, "ideal")
        return (ref / cur) / (cores / reference_cores)
