"""Rank-parallel execution of the CG kernels (the paper's Section 3.4).

This module really *executes* the strip partition that
:class:`~repro.distributed.cluster.ClusterModel` only models: ``N`` rank
workers (threads standing in for MPI processes, one per
:class:`~repro.distributed.partition.RankPartition` row strip) run each
iteration's kernels concurrently, with

* **halo exchange** — before the sparse mat-vec, every rank sends the
  strip entries its neighbours reference and receives its own halo of
  the search direction over per-pair message queues; the local mat-vec
  reads remote entries *only* from the received halo buffer, so the
  exchange is load-bearing, not decorative;
* **tree allreduce** — the dot products are reduced over a binary rank
  tree (gather per-page partials up, broadcast the scalar down).  The
  payload is the vector of per-page partial sums and the root combines
  them in fixed page order, so the result is *bit-identical* to the
  single-rank :func:`~repro.runtime.kernels.paged_dot` no matter how
  many ranks contributed — the classic reproducible-reduction trick;
* **owner-local recovery** — FEIR/AFEIR block solves and rollback
  reads are dispatched to the worker owning the corrupted page, the
  paper's locality rule for recovery tasks.  (A multi-page event is
  serviced in one piece by the first page's owner, because simultaneous
  losses may need a coupled solve over the union of the lost pages —
  Section 2.4 case 1 — which cannot be split along ownership lines.)

Every message transfer is wall-clock timed; the per-solve
:class:`RankCommStats` feeds the measured Figure 5 mode and the
calibration of the analytic cluster model's interconnect constants
(:func:`~repro.distributed.comm.fit_communication_model`).

The simulated timeline of the solver is untouched: ranks change *where*
numerics execute, never what the discrete-event clock decides, which is
what makes N-rank and single-rank solves comparable bit for bit.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.distributed.partition import StripPartition
from repro.matrices.blocked import PageBlockedMatrix
from repro.memory.pages import page_count
from repro.runtime.kernels import (KernelEngine, page_partials,
                                   reduce_partials)
from repro.sanitize import make_lock, make_queue


@dataclass
class RankCommStats:
    """Measured communication of one rank-parallel solve."""

    ranks: int
    #: Halo exchanges executed (one per distributed spmv).
    halo_exchanges: int = 0
    #: Wall seconds of halo exchange, critical path (max across ranks).
    halo_seconds: float = 0.0
    #: Total halo payload bytes moved between ranks.
    halo_bytes: int = 0
    #: Tree allreduces executed (one per dot product).
    allreduces: int = 0
    #: Wall seconds of allreduce communication, critical path.
    allreduce_seconds: float = 0.0
    #: Total allreduce payload bytes (per-page partials up, scalars down).
    allreduce_bytes: int = 0
    #: Recovery thunks dispatched to page owners.
    recoveries: int = 0
    recovery_seconds: float = 0.0
    recoveries_by_rank: Dict[int, int] = field(default_factory=dict)
    #: Probe-grade halo exchanges re-enacted for the wall-clock
    #: measurement (:meth:`RankRuntime.halo_exchange`).  Counted apart
    #: from the load-bearing ``halo_exchanges`` so per-exchange averages
    #: keep meaning "one distributed spmv".
    probe_exchanges: int = 0
    #: ``(payload_bytes, seconds)`` of individual point-to-point *halo*
    #: transfers, the raw material of the comm-model calibration.
    #: Allreduce waits are excluded on purpose: they include subtree
    #: compute and barrier skew, which would bias the fitted latency.
    message_samples: List[Tuple[float, float]] = field(default_factory=list)

    # ------------------------------------------------------------------
    def halo_seconds_per_exchange(self) -> float:
        return self.halo_seconds / self.halo_exchanges \
            if self.halo_exchanges else 0.0

    def allreduce_seconds_per_op(self) -> float:
        return self.allreduce_seconds / self.allreduces \
            if self.allreduces else 0.0

    def summary(self) -> Dict[str, object]:
        return {
            "ranks": self.ranks,
            "halo_exchanges": self.halo_exchanges,
            "halo_ms_per_exchange": 1e3 * self.halo_seconds_per_exchange(),
            "halo_bytes": self.halo_bytes,
            "allreduces": self.allreduces,
            "allreduce_ms_per_op": 1e3 * self.allreduce_seconds_per_op(),
            "allreduce_bytes": self.allreduce_bytes,
            "recoveries": self.recoveries,
            "recoveries_by_rank": dict(self.recoveries_by_rank),
            "probe_exchanges": self.probe_exchanges,
        }


class _RankState:
    """Per-rank private state: strip bounds, halo plans, local buffers."""

    __slots__ = ("rank", "start", "stop", "recv_plan", "send_plan",
                 "d_buf", "slab_matvec", "inbox")

    def __init__(self, rank: int, start: int, stop: int,
                 recv_plan: Dict[int, np.ndarray],
                 send_plan: Dict[int, np.ndarray],
                 n: int, slab_matvec: Callable[[np.ndarray], np.ndarray]):
        self.rank = rank
        self.start = start
        self.stop = stop
        self.recv_plan = recv_plan
        self.send_plan = send_plan
        #: Rank-local image of the operand vector: own strip plus the
        #: received halo; everything else stays zero (A's strip rows
        #: reference only owned + halo columns, by halo construction).
        self.d_buf = np.zeros(n, dtype=np.float64)
        self.slab_matvec = slab_matvec
        self.inbox = make_queue(f"rank-inbox:{rank}")


class RankRuntimeError(RuntimeError):
    """A rank worker failed or a message timed out."""


class RankRuntime:
    """Thread-per-rank executor of strip-partitioned CG kernels."""

    def __init__(self, blocked: PageBlockedMatrix, num_ranks: int,
                 timeout: float = 60.0):
        if num_ranks < 1:
            raise ValueError(f"num_ranks must be >= 1, got {num_ranks}")
        self.blocked = blocked
        self.n = blocked.n
        self.page_size = blocked.page_size
        self.num_ranks = int(num_ranks)
        self.timeout = float(timeout)
        self.partition = StripPartition(blocked.A, self.num_ranks,
                                        align=self.page_size)
        self.stats = RankCommStats(ranks=self.num_ranks)
        #: Per-op reply queues keyed by sequence number, so concurrent
        #: orchestrator calls (the threaded scheduler dispatches halo
        #: re-enactments and owner probes from different backend worker
        #: threads) never consume each other's replies.
        self._pending: Dict[int, "queue.Queue"] = {}
        self._post_lock = make_lock("RankRuntime.post_lock")
        #: Serialises collectives: the per-pair channels pair sends with
        #: receives positionally, so two collectives must never be in
        #: flight at once.
        self._collective_lock = make_lock("RankRuntime.collective_lock")
        self._chan: Dict[Tuple[int, int], "queue.Queue"] = {
            (src, dst): make_queue(f"rank-chan:{src}->{dst}")
            for src in range(self.num_ranks)
            for dst in range(self.num_ranks) if src != dst}
        self._states: List[_RankState] = []
        for part in self.partition.partitions:
            self._states.append(_RankState(
                rank=part.rank, start=part.row_start, stop=part.row_stop,
                recv_plan=self.partition.halo_indices(part.rank),
                send_plan=self.partition.send_plan(part.rank),
                n=self.n,
                slab_matvec=self._make_slab_matvec(part.row_start,
                                                   part.row_stop)))
        self._seq = 0
        self._closed = False
        self._threads = [threading.Thread(target=self._worker, args=(r,),
                                          name=f"repro-rank-{r}",
                                          daemon=True)
                         for r in range(self.num_ranks)]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _make_slab_matvec(self, start: int, stop: int
                          ) -> Callable[[np.ndarray], np.ndarray]:
        """``(A v)[start:stop]`` using the same kernel the full-matrix
        product uses, so strip results are bitwise equal to slices of
        the single-rank product."""
        if not self.blocked.uses_sparse_operator:
            self.blocked.row_slab(start, stop)    # build the cache eagerly
        return lambda v: self.blocked.range_product(start, stop, v)

    def page_owner(self, page: int) -> int:
        """Rank owning memory page ``page`` (strips are page-aligned)."""
        npages = page_count(self.n, self.page_size)
        if not 0 <= page < npages:
            raise IndexError(f"page {page} out of range for {npages} pages")
        return self.partition.owner_of_row(
            min(page * self.page_size, self.n - 1))

    # ------------------------------------------------------------------
    # orchestration
    # ------------------------------------------------------------------
    def _post(self, ranks: List[int], op: str, payload) -> Dict[int, object]:
        """Post one op to ``ranks`` and gather their replies.

        Thread-safe for concurrent callers: each op gets a private reply
        queue keyed by its sequence number, and workers route replies by
        that key, so the threaded scheduler can dispatch an owner probe
        while a halo re-enactment collective is still in flight.
        """
        if self._closed:
            raise RankRuntimeError("rank runtime already closed")
        with self._post_lock:
            self._seq += 1
            seq = self._seq
            reply_queue = make_queue(f"rank-reply:{seq}")
            self._pending[seq] = reply_queue
        try:
            for r in ranks:
                self._states[r].inbox.put((op, seq, payload))
            replies: Dict[int, object] = {}
            failure: Optional[BaseException] = None
            deadline = perf_counter() + self.timeout  # repro-lint: allow[wall-clock] collective timeout deadline, never fingerprinted
            while len(replies) < len(ranks):
                remaining = deadline - perf_counter()  # repro-lint: allow[wall-clock] collective timeout deadline, never fingerprinted
                try:
                    rank, result, exc = reply_queue.get(
                        timeout=max(remaining, 1e-3))
                except queue.Empty:
                    raise RankRuntimeError(
                        f"rank runtime timed out after {self.timeout}s "
                        f"waiting for op {op!r} (ranks {ranks})") from None
                if exc is not None and failure is None:
                    failure = exc
                replies[rank] = result
        finally:
            with self._post_lock:
                self._pending.pop(seq, None)
        if failure is not None:
            raise RankRuntimeError(
                f"rank worker failed during op {op!r}") from failure
        return replies

    def _collective(self, op: str, payload) -> Dict[int, object]:
        with self._collective_lock:
            return self._post(list(range(self.num_ranks)), op, payload)

    # ------------------------------------------------------------------
    # public kernel operations
    # ------------------------------------------------------------------
    def strip_map(self, fn: Callable[[int, int, int], None]) -> None:
        """Run ``fn(rank, row_start, row_stop)`` on every rank worker."""
        self._collective("strip", fn)

    def spmv(self, d: np.ndarray, out: np.ndarray) -> None:
        """Distributed ``out <- A d`` with a real halo exchange of ``d``."""
        replies = self._collective("spmv", (d, out))
        windows = [r["window"] for r in replies.values()]
        self.stats.halo_exchanges += 1
        self.stats.halo_seconds += max(windows) if windows else 0.0
        self.stats.halo_bytes += sum(r["bytes_sent"]
                                     for r in replies.values())
        for r in replies.values():
            self.stats.message_samples.extend(r["samples"])

    def dot(self, u: np.ndarray, v: np.ndarray,
            skip_pages: Set[int] = frozenset()) -> float:
        """Tree-allreduced, reproducibly ordered dot product."""
        replies = self._collective("dot", (u, v, frozenset(skip_pages)))
        self.stats.allreduces += 1
        self.stats.allreduce_seconds += max(r["comm"]
                                            for r in replies.values())
        self.stats.allreduce_bytes += sum(r["bytes_sent"]
                                          for r in replies.values())
        return replies[0]["value"]

    def halo_exchange(self, d: np.ndarray) -> float:
        """Re-enact the halo exchange of ``d`` (read-only, bitwise
        neutral): every rank really sends and receives its halo of the
        current search direction over the rank channels, refreshing the
        same ``d_buf`` entries the preceding distributed spmv filled
        with the same values.  Used by the wall-clock re-enactment so
        the exchange has a measurable interval recovery can overlap;
        counted as a probe, not as a load-bearing exchange.  Returns the
        critical-path window in seconds.
        """
        replies = self._collective("halo", d)
        windows = [r["window"] for r in replies.values()]
        self.stats.probe_exchanges += 1
        for r in replies.values():
            self.stats.message_samples.extend(r["samples"])
        return max(windows) if windows else 0.0

    def run_on_rank(self, rank: int, fn: Callable[[], object]) -> object:
        """Execute ``fn`` on a specific rank's worker without recovery
        accounting (probe work of the wall-clock re-enactment)."""
        if not 0 <= rank < self.num_ranks:
            raise IndexError(f"rank {rank} out of range for "
                             f"{self.num_ranks} ranks")
        return self._post([rank], "run", fn)[rank]["value"]

    def run_on_owner(self, page: int, fn: Callable[[], object]) -> object:
        """Execute ``fn`` on the worker owning ``page`` (recovery work)."""
        owner = self.page_owner(page)
        reply = self._post([owner], "run", fn)[owner]
        self.stats.recoveries += 1
        self.stats.recovery_seconds += reply["seconds"]
        self.stats.recoveries_by_rank[owner] = \
            self.stats.recoveries_by_rank.get(owner, 0) + 1
        return reply["value"]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for st in self._states:
            st.inbox.put(None)
        for t in self._threads:
            t.join(timeout=self.timeout)

    def __enter__(self) -> "RankRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _worker(self, rank: int) -> None:
        st = self._states[rank]
        while True:
            msg = st.inbox.get()
            if msg is None:
                return
            op, seq, payload = msg
            try:
                result = self._dispatch(rank, op, payload)
                self._reply(seq, rank, result, None)
            except BaseException as exc:       # surfaced by _post
                self._reply(seq, rank, None, exc)

    def _reply(self, seq: int, rank: int, result, exc) -> None:
        with self._post_lock:
            reply_queue = self._pending.get(seq)
        if reply_queue is not None:    # dropped if the op already timed out
            reply_queue.put((rank, result, exc))

    def _dispatch(self, rank: int, op: str, payload):
        if op == "strip":
            st = self._states[rank]
            payload(rank, st.start, st.stop)
            return None
        if op == "spmv":
            return self._spmv_local(rank, *payload)
        if op == "dot":
            return self._dot_local(rank, *payload)
        if op == "halo":
            return self._halo_local(rank, payload)
        if op == "run":
            t0 = perf_counter()  # repro-lint: allow[wall-clock] measured op wall time, reported not fingerprinted
            value = payload()
            return {"value": value, "seconds": perf_counter() - t0}  # repro-lint: allow[wall-clock] measured op wall time, reported not fingerprinted
        raise ValueError(f"unknown rank op {op!r}")

    def _recv(self, src: int, dst: int):
        try:
            return self._chan[(src, dst)].get(timeout=self.timeout)
        except queue.Empty:
            raise RankRuntimeError(
                f"rank {dst} timed out waiting for a message from rank "
                f"{src} after {self.timeout}s") from None

    def _halo_local(self, rank: int, d: np.ndarray):
        """One rank's leg of the halo exchange of ``d``: send owned
        entries the neighbours reference, receive this rank's halo into
        ``d_buf``.  Shared by the load-bearing spmv and the probe-grade
        :meth:`halo_exchange` re-enactment (same values either way, so
        the probe is bitwise neutral)."""
        st = self._states[rank]
        samples: List[Tuple[float, float]] = []
        bytes_sent = 0
        t0 = perf_counter()  # repro-lint: allow[wall-clock] measured halo window, reported not fingerprinted
        # Post all sends first (non-blocking puts), then drain receives:
        # the MPI_Isend/Irecv shape, deadlock-free on unbounded queues.
        for dst, idx in st.send_plan.items():
            self._chan[(rank, dst)].put(d[idx])
            bytes_sent += 8 * idx.size
        for src, idx in st.recv_plan.items():
            w0 = perf_counter()  # repro-lint: allow[wall-clock] measured halo window, reported not fingerprinted
            values = self._recv(src, rank)
            samples.append((8.0 * idx.size, perf_counter() - w0))  # repro-lint: allow[wall-clock] measured halo window, reported not fingerprinted
            st.d_buf[idx] = values
        window = perf_counter() - t0  # repro-lint: allow[wall-clock] measured halo window, reported not fingerprinted
        # Own strip is local memory, copied outside the exchange window.
        st.d_buf[st.start:st.stop] = d[st.start:st.stop]
        return {"window": window, "bytes_sent": bytes_sent,
                "samples": samples}

    def _spmv_local(self, rank: int, d: np.ndarray, out: np.ndarray):
        st = self._states[rank]
        result = self._halo_local(rank, d)
        out[st.start:st.stop] = st.slab_matvec(st.d_buf)
        return result

    def _dot_local(self, rank: int, u: np.ndarray, v: np.ndarray,
                   skip_pages: frozenset):
        st = self._states[rank]
        parts = page_partials(u[st.start:st.stop], v[st.start:st.stop],
                              self.page_size)
        entries: List[Tuple[int, np.ndarray]] = [(rank, parts)]
        comm = 0.0
        bytes_sent = 0
        children = [c for c in (2 * rank + 1, 2 * rank + 2)
                    if c < self.num_ranks]
        parent = (rank - 1) // 2
        # Gather per-page partials up the binary rank tree.  The waits
        # measured here include subtree compute and barrier skew, so —
        # unlike the halo waits — they are *not* reported as calibration
        # samples: fitting latency from them would charge reduction
        # compute to the interconnect.
        for child in children:
            w0 = perf_counter()  # repro-lint: allow[wall-clock] measured allreduce comm time, reported not fingerprinted
            received = self._recv(child, rank)
            comm += perf_counter() - w0  # repro-lint: allow[wall-clock] measured allreduce comm time, reported not fingerprinted
            entries.extend(received)
        if rank != 0:
            payload_bytes = 8 * sum(p.size for _, p in entries)
            self._chan[(rank, parent)].put(entries)
            bytes_sent += payload_bytes
            w0 = perf_counter()  # repro-lint: allow[wall-clock] measured allreduce comm time, reported not fingerprinted
            value = self._recv(parent, rank)
            comm += perf_counter() - w0  # repro-lint: allow[wall-clock] measured allreduce comm time, reported not fingerprinted
        else:
            # Fixed page order: concatenating rank-contiguous partials in
            # rank order *is* the global page order, and the reduction is
            # the same one paged_dot applies — bitwise reproducible.
            entries.sort(key=lambda e: e[0])
            full = np.concatenate([p for _, p in entries])
            value = reduce_partials(full, skip_pages)
        # Broadcast the scalar back down the same tree.
        for child in children:
            self._chan[(rank, child)].put(value)
            bytes_sent += 8
        return {"value": value, "comm": comm, "bytes_sent": bytes_sent}


class RankKernelEngine(KernelEngine):
    """The :class:`~repro.runtime.kernels.KernelEngine` face of the
    rank runtime, pluggable into :class:`~repro.solvers.ResilientCG`."""

    name = "ranks"

    def __init__(self, blocked: PageBlockedMatrix, ranks: int,
                 timeout: float = 60.0):
        self.runtime = RankRuntime(blocked, ranks, timeout=timeout)
        self.ranks = self.runtime.num_ranks
        self.page_size = blocked.page_size
        self.n = blocked.n
        self._tmp = np.zeros(self.n, dtype=np.float64)

    # ------------------------------------------------------------------
    def dot(self, u: np.ndarray, v: np.ndarray,
            skip_pages: Set[int] = frozenset()) -> float:
        return self.runtime.dot(u, v, skip_pages)

    def spmv(self, d: np.ndarray, out: np.ndarray) -> None:
        self.runtime.spmv(d, out)

    def update_direction(self, d_cur: np.ndarray, z: np.ndarray,
                         beta: float, d_prev: np.ndarray) -> None:
        def body(rank: int, start: int, stop: int) -> None:
            d_cur[start:stop] = z[start:stop] + beta * d_prev[start:stop]
        self.runtime.strip_map(body)

    def axpy(self, y: np.ndarray, a: float, v: np.ndarray,
             skip_pages: Set[int] = frozenset()) -> None:
        psize = self.page_size
        n = self.n
        skip = frozenset(skip_pages)

        def body(rank: int, start: int, stop: int) -> None:
            if not skip:
                y[start:stop] += a * v[start:stop]
                return
            keep = np.ones(stop - start, dtype=bool)
            for page in skip:
                lo = max(page * psize, start)
                hi = min(min(page * psize + psize, n), stop)
                if lo < hi:
                    keep[lo - start:hi - start] = False
            ys = y[start:stop]
            vs = v[start:stop]
            ys[keep] += a * vs[keep]
        self.runtime.strip_map(body)

    def residual(self, x: np.ndarray, b: np.ndarray,
                 out: np.ndarray) -> None:
        # A real distributed residual: halo-exchange x, then each rank
        # forms its strip of b - A x locally.
        tmp = self._tmp
        self.runtime.spmv(x, tmp)

        def body(rank: int, start: int, stop: int) -> None:
            out[start:stop] = b[start:stop] - tmp[start:stop]
        self.runtime.strip_map(body)

    def run_on_owner(self, page: int, fn: Callable[[], object]) -> object:
        return self.runtime.run_on_owner(page, fn)

    def page_owner(self, page: int) -> int:
        return self.runtime.page_owner(page)

    def run_on_rank(self, rank: int, fn: Callable[[], object]) -> object:
        return self.runtime.run_on_rank(rank, fn)

    def halo_exchange(self, d: np.ndarray) -> float:
        return self.runtime.halo_exchange(d)

    # ------------------------------------------------------------------
    def comm_stats(self) -> RankCommStats:
        return self.runtime.stats

    def close(self) -> None:
        self.runtime.close()
