"""Exponential-MTBE page-fault injector."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import DEFAULT_SEED


@dataclass(frozen=True)
class Injection:
    """One scheduled DUE: at ``time``, page ``page`` of ``vector`` is lost."""

    time: float
    vector: str
    page: int


class ExponentialInjector:
    """Generates DUE schedules from an exponential inter-arrival process.

    Parameters
    ----------
    mtbe:
        Mean time between errors, in the same (simulated) time unit as the
        solver's cost model.  ``float('inf')`` disables injection.
    rng:
        NumPy random generator or integer seed.
    """

    def __init__(self, mtbe: float, rng=DEFAULT_SEED):
        if mtbe <= 0:
            raise ValueError(f"MTBE must be positive, got {mtbe}")
        self.mtbe = float(mtbe)
        self._rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng

    # ------------------------------------------------------------------
    @classmethod
    def from_normalized_rate(cls, rate: float, ideal_time: float,
                             rng=DEFAULT_SEED) -> "ExponentialInjector":
        """Build an injector from the paper's normalised error frequency.

        A normalised frequency ``n`` means ``n`` expected errors per ideal
        convergence time ``tau``, i.e. MTBE = tau / n (Section 5.4).
        """
        if rate < 0:
            raise ValueError(f"normalised rate must be non-negative, got {rate}")
        if ideal_time <= 0:
            raise ValueError(f"ideal time must be positive, got {ideal_time}")
        if rate == 0:
            return _NullInjector(rng)
        return cls(ideal_time / rate, rng=rng)

    # ------------------------------------------------------------------
    def sample_times(self, horizon: float) -> List[float]:
        """Error times in ``[0, horizon)`` drawn from the Poisson process."""
        if horizon <= 0:
            return []
        times: List[float] = []
        t = 0.0
        # Draw inter-arrival gaps until the horizon is passed.  The number
        # of draws is O(horizon / mtbe), bounded for sanity.
        max_events = max(16, int(8 * horizon / self.mtbe) + 16)
        for _ in range(max_events):
            t += float(self._rng.exponential(self.mtbe))
            if t >= horizon:
                break
            times.append(t)
        return times

    def schedule(self, horizon: float,
                 pages: Sequence[Tuple[str, int]]) -> List[Injection]:
        """Full DUE schedule over ``[0, horizon)`` targeting ``pages``.

        ``pages`` is the page universe of the memory manager: a list of
        (vector name, page index) pairs.  Each error picks one uniformly.
        """
        if not pages:
            return []
        times = self.sample_times(horizon)
        picks = self._rng.integers(0, len(pages), size=len(times))
        return [Injection(time=t, vector=pages[int(k)][0], page=pages[int(k)][1])
                for t, k in zip(times, picks)]

    def expected_errors(self, horizon: float) -> float:
        """Expected number of errors over ``horizon``."""
        return horizon / self.mtbe


class _NullInjector(ExponentialInjector):
    """Injector that never fires (normalised rate zero)."""

    def __init__(self, rng=DEFAULT_SEED):
        # Bypass the parent validation: represent "never" directly.
        self.mtbe = float("inf")
        self._rng = (np.random.default_rng(rng)
                     if not isinstance(rng, np.random.Generator) else rng)

    def sample_times(self, horizon: float) -> List[float]:
        return []

    def expected_errors(self, horizon: float) -> float:
        return 0.0


def null_injector(rng=DEFAULT_SEED) -> ExponentialInjector:
    """An injector that injects nothing (used for fault-free baselines)."""
    return _NullInjector(rng)
