"""Exponential-MTBE page-fault injector.

Seeding hygiene
---------------
No module-level RNG state is used anywhere: every injector owns exactly
one :class:`numpy.random.Generator`, built by :func:`derive_rng` from
whatever seed material the caller threads through — an integer, a
:class:`numpy.random.SeedSequence` (the campaign engine spawns one child
sequence per trial from the campaign seed, so parallel trials are
reproducible and statistically independent), or an existing Generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.config import DEFAULT_SEED

#: Anything :func:`derive_rng` can turn into a Generator.
SeedLike = Union[int, np.random.SeedSequence, np.random.Generator, None]


def derive_rng(seed: SeedLike = DEFAULT_SEED) -> np.random.Generator:
    """One Generator per consumer, from an int / SeedSequence / Generator.

    Passing a Generator threads it through unchanged (shared stream);
    anything else creates a fresh, independent stream.  ``None`` falls
    back to :data:`~repro.config.DEFAULT_SEED` so that *nothing* in this
    package ever touches NumPy's global RNG.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


@dataclass(frozen=True)
class Injection:
    """One scheduled DUE: at ``time``, page ``page`` of ``vector`` is lost."""

    time: float
    vector: str
    page: int


class ExponentialInjector:
    """Generates DUE schedules from an exponential inter-arrival process.

    Parameters
    ----------
    mtbe:
        Mean time between errors, in the same (simulated) time unit as the
        solver's cost model.  ``float('inf')`` disables injection.
    rng:
        Seed material: an integer, a :class:`numpy.random.SeedSequence`
        or an existing :class:`numpy.random.Generator` (see
        :func:`derive_rng`).
    """

    def __init__(self, mtbe: float, rng: SeedLike = DEFAULT_SEED):
        if mtbe <= 0:
            raise ValueError(f"MTBE must be positive, got {mtbe}")
        self.mtbe = float(mtbe)
        self._rng = derive_rng(rng)

    # ------------------------------------------------------------------
    @classmethod
    def from_normalized_rate(cls, rate: float, ideal_time: float,
                             rng: SeedLike = DEFAULT_SEED
                             ) -> "ExponentialInjector":
        """Build an injector from the paper's normalised error frequency.

        A normalised frequency ``n`` means ``n`` expected errors per ideal
        convergence time ``tau``, i.e. MTBE = tau / n (Section 5.4).
        """
        if rate < 0:
            raise ValueError(f"normalised rate must be non-negative, got {rate}")
        if ideal_time <= 0:
            raise ValueError(f"ideal time must be positive, got {ideal_time}")
        if rate == 0:
            return _NullInjector(rng)
        return cls(ideal_time / rate, rng=rng)

    # ------------------------------------------------------------------
    def sample_times(self, horizon: float) -> List[float]:
        """Error times in ``[0, horizon)`` drawn from the Poisson process."""
        if horizon <= 0:
            return []
        times: List[float] = []
        t = 0.0
        # Draw inter-arrival gaps until the horizon is passed.  The number
        # of draws is O(horizon / mtbe), bounded for sanity.
        max_events = max(16, int(8 * horizon / self.mtbe) + 16)
        for _ in range(max_events):
            t += float(self._rng.exponential(self.mtbe))
            if t >= horizon:
                break
            times.append(t)
        return times

    def schedule(self, horizon: float,
                 pages: Sequence[Tuple[str, int]]) -> List[Injection]:
        """Full DUE schedule over ``[0, horizon)`` targeting ``pages``.

        ``pages`` is the page universe of the memory manager: a list of
        (vector name, page index) pairs.  Each error picks one uniformly.
        """
        if not pages:
            return []
        times = self.sample_times(horizon)
        picks = self._rng.integers(0, len(pages), size=len(times))
        return [Injection(time=t, vector=pages[int(k)][0], page=pages[int(k)][1])
                for t, k in zip(times, picks, strict=True)]

    def expected_errors(self, horizon: float) -> float:
        """Expected number of errors over ``horizon``."""
        return horizon / self.mtbe


class _NullInjector(ExponentialInjector):
    """Injector that never fires (normalised rate zero)."""

    def __init__(self, rng: SeedLike = DEFAULT_SEED):
        # Bypass the parent validation: represent "never" directly.
        self.mtbe = float("inf")
        self._rng = derive_rng(rng)

    def sample_times(self, horizon: float) -> List[float]:
        return []

    def expected_errors(self, horizon: float) -> float:
        return 0.0


def null_injector(rng: SeedLike = DEFAULT_SEED) -> ExponentialInjector:
    """An injector that injects nothing (used for fault-free baselines)."""
    return _NullInjector(rng)
