"""Error-injection scenarios used by the paper's evaluation.

Two families are needed:

* the Figure 4 sweep: normalised error frequencies {1, 2, 5, 10, 20, 50}
  per matrix and method, each repeated with different seeds;
* the Figure 3 illustration: a single error injected into a page of the
  iterate ``x`` at a fixed fraction of the ideal solve time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.config import DEFAULT_SEED
from repro.faults.injector import (ExponentialInjector, Injection, SeedLike,
                                   null_injector)

#: The normalised error frequencies of Figure 4.
PAPER_ERROR_RATES: Tuple[float, ...] = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0)


@dataclass
class ErrorScenario:
    """A reproducible description of how faults are injected in one run.

    Exactly one of ``normalized_rate`` or ``fixed_injections`` drives the
    run: a Poisson process at the given normalised rate, or a hand-picked
    list of injections (used for the single-error convergence plot and
    for targeted tests).

    ``seed`` may be a plain integer or a
    :class:`numpy.random.SeedSequence`; the campaign engine spawns one
    child sequence per trial from the campaign seed and threads it here,
    so every trial owns an independent, reproducible Generator no matter
    which executor (serial or process pool) runs it.
    """

    name: str = "fault-free"
    normalized_rate: float = 0.0
    seed: SeedLike = DEFAULT_SEED
    fixed_injections: List[Injection] = field(default_factory=list)

    def reseeded(self, seed: SeedLike, name: Optional[str] = None
                 ) -> "ErrorScenario":
        """Copy of this scenario driven by different seed material."""
        return replace(self, seed=seed, name=name or self.name)

    def injector(self, ideal_time: float) -> ExponentialInjector:
        """Injector realising this scenario for a solve of ``ideal_time``."""
        if self.fixed_injections:
            return null_injector(self.seed)
        if self.normalized_rate <= 0:
            return null_injector(self.seed)
        return ExponentialInjector.from_normalized_rate(
            self.normalized_rate, ideal_time, rng=self.seed)

    def schedule(self, ideal_time: float, horizon: float,
                 pages: Sequence[Tuple[str, int]]) -> List[Injection]:
        """Concrete injection schedule for this scenario."""
        if self.fixed_injections:
            return sorted(self.fixed_injections, key=lambda inj: inj.time)
        return self.injector(ideal_time).schedule(horizon, pages)

    @property
    def is_fault_free(self) -> bool:
        return self.normalized_rate <= 0 and not self.fixed_injections


def fault_free_scenario() -> ErrorScenario:
    """The baseline scenario with no injected errors."""
    return ErrorScenario(name="fault-free", normalized_rate=0.0)


def normalized_rate_scenarios(rates: Sequence[float] = PAPER_ERROR_RATES,
                              repetitions: int = 1,
                              base_seed: int = DEFAULT_SEED) -> List[ErrorScenario]:
    """The Figure 4 scenario grid: each rate repeated with distinct seeds."""
    if repetitions <= 0:
        raise ValueError(f"repetitions must be positive, got {repetitions}")
    scenarios: List[ErrorScenario] = []
    for rate in rates:
        if rate <= 0:
            raise ValueError(f"normalised rates must be positive, got {rate}")
        for rep in range(repetitions):
            scenarios.append(ErrorScenario(
                name=f"rate{rate:g}-rep{rep}",
                normalized_rate=float(rate),
                seed=base_seed + 7919 * rep + int(1000 * rate)))
    return scenarios


def single_error_scenario(vector: str, page: int, time: float,
                          name: Optional[str] = None) -> ErrorScenario:
    """The Figure 3 scenario: one DUE in ``vector`` page ``page`` at ``time``."""
    if time < 0:
        raise ValueError(f"injection time must be non-negative, got {time}")
    return ErrorScenario(
        name=name or f"single-{vector}-p{page}",
        fixed_injections=[Injection(time=time, vector=vector, page=page)])


def multi_error_scenario(injections: Sequence[Injection],
                         name: str = "multi") -> ErrorScenario:
    """A scenario with an explicit list of injections (tests, ablations)."""
    return ErrorScenario(name=name, fixed_injections=list(injections))
