"""Fault (DUE) injection.

The paper injects errors "from a separate thread at times defined by an
exponential distribution parametrized by the Mean Time Between Errors
(MTBE)", normalised to the ideal convergence time of each matrix, with
pages chosen uniformly at random among the protected Krylov vectors
(Section 5.3).  This package reproduces that injector deterministically:
given a seed, an MTBE and the set of protected pages, it produces the
schedule of (time, vector, page) injections that the simulated run
replays.
"""

from repro.faults.injector import (ExponentialInjector, Injection, SeedLike,
                                   derive_rng, null_injector)
from repro.faults.scenarios import (ErrorScenario, multi_error_scenario,
                                    normalized_rate_scenarios,
                                    single_error_scenario)

__all__ = [
    "ExponentialInjector",
    "Injection",
    "SeedLike",
    "derive_rng",
    "null_injector",
    "ErrorScenario",
    "multi_error_scenario",
    "normalized_rate_scenarios",
    "single_error_scenario",
]
