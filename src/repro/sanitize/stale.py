"""Stale-read allowlist: sanctioned data races on declared resources.

The ROADMAP's asynchronous-iteration item will make *intentional* data
races a feature: ranks iterating on stale halo pages, bounded-staleness
fixed-point solvers (Avron et al.), convergence detection without an
allreduce (Zou & Magoules).  The sanitizer must tell those annotated,
bounded stale reads apart from unsynchronised bugs — this module is the
machine-checked hook that future work targets.

An allowance names a declared resource (exact, or a ``*`` suffix
pattern such as ``halo:*``) plus a staleness bound (how many versions a
reader may lag the writer) and a justification.  The detector treats a
candidate race whose resource is allowed as *sanctioned*: reported in
its own section with the declared bound, never as a failure.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class StaleAllowance:
    """One sanctioned-staleness declaration."""

    resource: str          # exact name or a "prefix*" pattern
    bound: int             # versions a reader may lag (>= 1)
    reason: str

    def matches(self, resource: str) -> bool:
        if self.resource.endswith("*"):
            return resource.startswith(self.resource[:-1])
        return resource == self.resource

    def describe(self) -> str:
        return (f"stale-read allowed on {self.resource!r} "
                f"(bound {self.bound}): {self.reason}")


class StaleReadAllowlist:
    """Registry of sanctioned stale-read resources (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._allowances: Dict[str, StaleAllowance] = {}

    def allow(self, resource: str, *, bound: int = 1,
              reason: str) -> StaleAllowance:
        """Declare that reads of ``resource`` may lag writes by up to
        ``bound`` versions.  The reason is mandatory, mirroring the lint
        pragma discipline: sanctioned races carry their justification."""
        if bound < 1:
            raise ValueError(f"staleness bound must be >= 1, got {bound}")
        if not reason or not reason.strip():
            raise ValueError("a stale-read allowance requires a reason")
        allowance = StaleAllowance(resource, int(bound), reason.strip())
        with self._lock:
            self._allowances[resource] = allowance
        return allowance

    def revoke(self, resource: str) -> None:
        with self._lock:
            self._allowances.pop(resource, None)

    def clear(self) -> None:
        with self._lock:
            self._allowances.clear()

    def lookup(self, resource: str) -> Optional[StaleAllowance]:
        """The allowance covering ``resource``, or ``None``.  Exact
        matches win over patterns; among patterns the longest prefix
        wins (most specific declaration)."""
        with self._lock:
            allowances = list(self._allowances.values())
        exact = [a for a in allowances if a.resource == resource]
        if exact:
            return exact[0]
        patterns = [a for a in allowances if a.matches(resource)]
        if not patterns:
            return None
        return max(patterns, key=lambda a: len(a.resource))

    def entries(self) -> List[StaleAllowance]:
        with self._lock:
            return sorted(self._allowances.values(),
                          key=lambda a: a.resource)


#: Process-global allowlist the detector consults (tests use private
#: instances; the solver-facing API registers here).
ALLOWLIST = StaleReadAllowlist()


def allow_stale(resource: str, *, bound: int = 1,
                reason: str) -> StaleAllowance:
    """Module-level convenience over the global allowlist."""
    return ALLOWLIST.allow(resource, bound=bound, reason=reason)
