"""Event model of the concurrency sanitizer.

Every instrumented synchronisation operation (lock acquire/release,
queue put/get, event set/wait, condition wait/notify) and every bridged
memory access (a task's declared ``reads``/``writes``, see
:func:`repro.sanitize.instrument.record_access`) appends one
:class:`Event` to the process-global :class:`EventLog`.  The log is the
single source the offline detector replays: its append order *is* the
observed interleaving, so the detector's happens-before construction
follows exactly what the run did.

Recording is deliberately cheap — a tuple-ish dataclass append under one
raw lock — because it sits inside every lock acquire of an instrumented
run.  Stacks are captured only for *access* events (the ones a race
report must explain); sync events carry just their location-free
identity.
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Synchronisation event kinds understood by the detector.
OP_ACQUIRE = "acquire"
OP_RELEASE = "release"
OP_PUT = "put"
OP_GET = "get"
OP_SET = "set"
OP_WAIT_EVENT = "wait-event"
OP_NOTIFY = "notify"
OP_ACCESS = "access"

SYNC_OPS = frozenset({OP_ACQUIRE, OP_RELEASE, OP_PUT, OP_GET, OP_SET,
                      OP_WAIT_EVENT, OP_NOTIFY})


@dataclass(frozen=True)
class Event:
    """One recorded operation of one thread.

    ``obj`` names the synchronisation object (for sync ops) or the
    declared resource (for accesses).  ``token`` pairs a queue ``get``
    with the exact ``put`` that produced its item (allocated by the
    queue wrapper, not inferred positionally, so concurrent producers
    can never be mispaired).  ``held`` is the lockset snapshot of the
    recording thread, and ``stack`` is captured for accesses only.
    """

    seq: int
    thread: str
    op: str
    obj: str
    write: bool = False
    token: Optional[int] = None
    held: Tuple[str, ...] = ()
    stack: Tuple[str, ...] = ()
    task: Optional[str] = None


class EventLog:
    """Thread-safe append-only log of sanitizer events."""

    def __init__(self, stack_depth: int = 6) -> None:
        self._lock = threading.Lock()
        self._events: List[Event] = []
        self._seq = 0
        self.stack_depth = int(stack_depth)

    def append(self, thread: str, op: str, obj: str, *,
               write: bool = False, token: Optional[int] = None,
               held: Tuple[str, ...] = (), with_stack: bool = False,
               task: Optional[str] = None) -> int:
        """Record one event; returns its sequence number (the token a
        queue put hands to the matching get)."""
        stack: Tuple[str, ...] = ()
        if with_stack:
            # Skip the two innermost frames (this method + the wrapper).
            frames = traceback.extract_stack(limit=self.stack_depth + 2)[:-2]
            stack = tuple(f"{f.filename}:{f.lineno} in {f.name}"
                          for f in frames)
        with self._lock:
            self._seq += 1
            event = Event(seq=self._seq, thread=thread, op=op, obj=obj,
                          write=write, token=token, held=held, stack=stack,
                          task=task)
            self._events.append(event)
            return self._seq

    def events(self) -> List[Event]:
        """Snapshot of all events in recorded (interleaving) order."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._seq = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def counts(self) -> Dict[str, int]:
        """Events per op kind (diagnostics / tests)."""
        out: Dict[str, int] = {}
        for event in self.events():
            out[event.op] = out.get(event.op, 0) + 1
        return out


@dataclass
class ThreadLockState:
    """Per-thread lockset bookkeeping (reentrant-aware)."""

    held: Dict[str, int] = field(default_factory=dict)

    def push(self, name: str) -> None:
        self.held[name] = self.held.get(name, 0) + 1

    def pop(self, name: str) -> None:
        count = self.held.get(name, 0)
        if count <= 1:
            self.held.pop(name, None)
        else:
            self.held[name] = count - 1

    def snapshot(self) -> Tuple[str, ...]:
        return tuple(sorted(self.held))
