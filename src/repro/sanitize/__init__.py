"""Concurrency sanitizer runtime: hybrid race detection + seeded
schedule exploration for the threaded backend, the rank runtime and the
campaign-service worker pool.

Three layers (the dynamic complement of ``repro.lint`` and
``verify_graph``):

* :mod:`repro.sanitize.instrument` — drop-in factories for
  ``threading.Lock``/``RLock``/``Condition``/``Event`` and
  ``queue.Queue``.  Off (``REPRO_TSAN`` unset) they return the raw
  stdlib primitives at zero steady-state cost; on, every operation is
  recorded into an event log, and task ``reads``/``writes`` annotations
  are bridged in as memory accesses.
* :mod:`repro.sanitize.detector` — vector-clock happens-before tracking
  with an Eraser-style lockset fallback over the recorded events; each
  surviving candidate race is reported with both thread stacks and the
  locks held.  The :mod:`repro.sanitize.stale` allowlist sanctions
  declared bounded-staleness reads (the async-iteration hook).
* :mod:`repro.sanitize.explore` — ``python -m repro.sanitize explore``:
  PCT-style seeded schedule perturbation; any interleaving that breaks
  bit-identity or trips the detector is replayable from its seed alone.
"""

from repro.sanitize.detector import (AccessRecord, RaceReport,
                                     SanitizerReport, analyze,
                                     analyze_events)
from repro.sanitize.events import Event, EventLog
from repro.sanitize.instrument import (LOG, SANITIZE_SEED_ENV, TSAN_ENV,
                                       enabled, held_locks, make_condition,
                                       make_event, make_lock, make_queue,
                                       make_rlock, record_access,
                                       record_task_accesses, reset,
                                       sanitizer_enabled,
                                       set_preemption_hook)
from repro.sanitize.stale import (ALLOWLIST, StaleAllowance,
                                  StaleReadAllowlist, allow_stale)

__all__ = [
    "ALLOWLIST",
    "AccessRecord",
    "Event",
    "EventLog",
    "LOG",
    "RaceReport",
    "SANITIZE_SEED_ENV",
    "SanitizerReport",
    "StaleAllowance",
    "StaleReadAllowlist",
    "TSAN_ENV",
    "allow_stale",
    "analyze",
    "analyze_events",
    "enabled",
    "held_locks",
    "make_condition",
    "make_event",
    "make_lock",
    "make_queue",
    "make_rlock",
    "record_access",
    "record_task_accesses",
    "reset",
    "sanitizer_enabled",
    "set_preemption_hook",
]
