"""The seeded-race canary: a bug the detector must always catch.

A sanitizer that silently stops seeing races is worse than none, so CI
runs this deliberately unsynchronised workload and fails unless the
detector flags it.  Two flavours:

* :func:`run_counter_canary` — the textbook bug: worker threads bump a
  shared counter with no lock.  Accesses are recorded against the
  declared resource ``canary:counter``; the threads synchronise only
  through their start/join (not instrumented on purpose), so every
  cross-thread pair is unordered *and* lockset-free -> a race.
* :func:`run_locked_control` — the same workload with a factory-made
  lock around the increment.  The detector must stay silent: the lock's
  release->acquire edges order every pair.  Running both proves the
  detector distinguishes, rather than flagging everything or nothing.
"""

from __future__ import annotations

import threading
from typing import List

from repro.sanitize import detector, instrument
from repro.sanitize.detector import SanitizerReport

CANARY_RESOURCE = "canary:counter"


class _Counter:
    """Deliberately racy shared state (read-modify-write, no lock)."""

    def __init__(self) -> None:
        self.value = 0


def run_counter_canary(threads: int = 4, increments: int = 25
                       ) -> SanitizerReport:
    """Run the unsynchronised counter; returns the detection report."""
    counter = _Counter()
    barrier = threading.Barrier(threads)

    def bump(worker: int) -> None:
        barrier.wait()        # maximise overlap; not a recorded sync op
        for _ in range(increments):
            instrument.record_access(CANARY_RESOURCE, write=True,
                                     task=f"canary-{worker}")
            counter.value += 1

    with instrument.enabled(True):
        instrument.reset()
        pool = [threading.Thread(target=bump, args=(i,),
                                 name=f"canary-worker-{i}")
                for i in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        report = detector.analyze()
        instrument.reset()
    return report


def run_locked_control(threads: int = 4, increments: int = 25
                       ) -> SanitizerReport:
    """Same workload, properly locked: the detector must stay silent."""
    counter = _Counter()
    barrier = threading.Barrier(threads)

    with instrument.enabled(True):
        instrument.reset()
        lock = instrument.make_lock("canary-lock")

        def bump(worker: int) -> None:
            barrier.wait()
            for _ in range(increments):
                with lock:
                    instrument.record_access(CANARY_RESOURCE, write=True,
                                             task=f"canary-{worker}")
                    counter.value += 1

        pool = [threading.Thread(target=bump, args=(i,),
                                 name=f"canary-worker-{i}")
                for i in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        report = detector.analyze()
        instrument.reset()
    return report


def canary_verdict(threads: int = 4, increments: int = 25) -> List[str]:
    """Human-readable verdict lines; empty means the canary FAILED."""
    racy = run_counter_canary(threads, increments)
    quiet = run_locked_control(threads, increments)
    lines: List[str] = []
    if racy.races:
        lines.append(f"canary: unsynchronised counter flagged "
                     f"({len(racy.races)} race(s)) — detector alive")
    if quiet.ok:
        lines.append("canary: locked control clean — detector "
                     "distinguishes locked from racy")
    return lines if (racy.races and quiet.ok) else []
