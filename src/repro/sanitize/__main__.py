"""CLI: ``python -m repro.sanitize {explore,canary}``.

``explore`` runs seeded schedule exploration of one runtime cell and
prints a deterministic JSON verdict (byte-identical for the same seed);
``canary`` runs the deliberately racy counter the detector must flag
(CI's guard against a silently no-op sanitizer).

Exit codes: 0 clean, 1 a schedule broke bit-identity / tripped the
detector / the canary went undetected, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from repro.sanitize.canary import canary_verdict
from repro.sanitize.explore import DEFAULT_PREEMPT_RATE, explore
from repro.sanitize.instrument import SANITIZE_SEED_ENV

DEFAULT_SEED = 20150715


def _default_seed() -> int:
    raw = os.environ.get(SANITIZE_SEED_ENV, "").strip()
    if not raw:
        return DEFAULT_SEED
    try:
        return int(raw)
    except ValueError:
        raise SystemExit(f"{SANITIZE_SEED_ENV} must be an integer, "
                         f"got {raw!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize",
        description="concurrency sanitizer: seeded schedule exploration "
                    "and detector canary")
    sub = parser.add_subparsers(dest="command", required=True)

    ex = sub.add_parser("explore", help="run seeded schedules of one "
                                        "runtime cell under the sanitizer")
    ex.add_argument("--seed", type=int, default=None,
                    help=f"root seed (default: ${SANITIZE_SEED_ENV} "
                         f"or {DEFAULT_SEED})")
    ex.add_argument("--schedules", type=int, default=10,
                    help="number of seeded schedules to run (default 10)")
    ex.add_argument("--scheduler", default="threaded",
                    choices=("list", "threaded"))
    ex.add_argument("--placement", default="local",
                    choices=("local", "ranks"))
    ex.add_argument("--clock", default="wall",
                    choices=("simulated", "wall"))
    ex.add_argument("--ranks", type=int, default=1)
    ex.add_argument("--points", type=int, default=16,
                    help="2-D Poisson grid points per side (default 16)")
    ex.add_argument("--page-size", type=int, default=32)
    ex.add_argument("--preempt-rate", type=float,
                    default=DEFAULT_PREEMPT_RATE,
                    help="fraction of instrumented ops that may preempt")
    ex.add_argument("--out", metavar="FILE", default=None,
                    help="also write the JSON verdict to FILE")
    ex.add_argument("--quiet", action="store_true",
                    help="suppress per-schedule progress lines")

    sub.add_parser("canary", help="run the seeded-race canary the "
                                  "detector must flag")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "canary":
        lines = canary_verdict()
        if not lines:
            print("canary FAILED: the detector missed a deliberately "
                  "unsynchronised counter (or flagged the locked "
                  "control) — the sanitizer is a no-op", file=sys.stderr)
            return 1
        for line in lines:
            print(line)
        return 0

    seed = args.seed if args.seed is not None else _default_seed()
    if args.schedules < 1:
        raise SystemExit("--schedules must be >= 1")

    def progress(record):
        if not args.quiet:
            status = "ok" if record["bit_identical"] and not record["races"] \
                else "FAIL"
            print(f"schedule {record['schedule']:3d}: {status} "
                  f"({record['iterations']} iters, "
                  f"{len(record['races'])} race(s))", file=sys.stderr)

    verdict = explore(seed, args.schedules, scheduler=args.scheduler,
                      placement=args.placement, clock=args.clock,
                      ranks=args.ranks, points=args.points,
                      page_size=args.page_size,
                      preempt_rate=args.preempt_rate, progress=progress)
    rendered = json.dumps(verdict, indent=2, sort_keys=True)
    print(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
    return 0 if verdict["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
