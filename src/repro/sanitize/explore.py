"""Seeded schedule exploration (PCT-style randomized preemption).

A data race only materialises under an interleaving that exercises it,
and the OS scheduler samples a vanishingly small corner of the
interleaving space.  The explorer widens the sample: it installs a
preemption hook at every instrumented synchronisation operation and,
driven entirely by a ``numpy.random.SeedSequence``, makes low-priority
threads yield the CPU at randomized points — the probabilistic
concurrency testing (PCT) recipe of randomized priorities plus a few
priority-change points, adapted to preemption points we control
(instrumented operations) rather than every instruction.

Everything random derives from the seed: per-thread priorities, the
yield decisions, the sleep jitter.  Perturbation decisions are keyed by
``(thread role, per-thread op counter)``, not by global order, so a
given seed injects the same delays into the same threads no matter how
the OS interleaves them — which is what makes a failing schedule
**replayable from its seed alone** (``explore --seed S`` twice produces
byte-identical verdicts).

Each explored schedule runs one resilient-CG solve in a chosen runtime
cell with the sanitizer on, then checks the two invariants that define
this repo: the solution must stay bit-identical to the unperturbed
reference cell, and the race detector must find nothing unsanctioned.
"""

from __future__ import annotations

import hashlib
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.manager import make_strategy
from repro.faults.injector import Injection
from repro.faults.scenarios import multi_error_scenario
from repro.matrices.stencil import poisson_2d_5pt, stencil_rhs
from repro.sanitize import detector, instrument
from repro.solvers.resilient_cg import ResilientCG, SolverConfig

#: Fraction of visited preemption points where a thread may yield.
DEFAULT_PREEMPT_RATE = 0.15
#: Longest injected delay, seconds (scaled down by thread priority).
DEFAULT_MAX_SLEEP = 0.002


class ScheduleExplorer:
    """The preemption hook: seeded, per-thread-deterministic delays."""

    def __init__(self, seed: np.random.SeedSequence,
                 preempt_rate: float = DEFAULT_PREEMPT_RATE,
                 max_sleep: float = DEFAULT_MAX_SLEEP) -> None:
        self.seed = seed
        self.preempt_rate = float(preempt_rate)
        self.max_sleep = float(max_sleep)
        self._rngs: Dict[str, np.random.Generator] = {}
        self._priorities: Dict[str, float] = {}
        self._lock = threading.Lock()
        self.preemptions = 0

    def _state_for(self, thread: str):
        with self._lock:
            rng = self._rngs.get(thread)
            if rng is None:
                # Key the stream by the thread's *role name* (stable
                # across runs: repro-exec-0, repro-rank-1, ...), never
                # by its OS identity.
                child = np.random.SeedSequence(
                    entropy=self.seed.entropy,
                    spawn_key=(*self.seed.spawn_key,
                               zlib.crc32(thread.encode("utf-8"))))
                rng = self._rngs[thread] = np.random.default_rng(child)  # repro-lint: allow[unseeded-rng] explorer streams perturb schedules, never iterates; keyed to the explore seed, not the trial tree
                self._priorities[thread] = float(rng.random())
            return rng, self._priorities[thread]

    def __call__(self, thread: str, op: str, obj: str) -> None:
        rng, priority = self._state_for(thread)
        if rng.random() >= self.preempt_rate:
            return
        # PCT flavour: the lower a thread's drawn priority, the longer
        # it yields, so high-priority threads overtake it here.
        delay = self.max_sleep * (1.0 - priority) * rng.random()
        with self._lock:
            self.preemptions += 1
        if delay > 0:
            time.sleep(delay)

    def install(self) -> None:
        instrument.set_preemption_hook(self)

    @staticmethod
    def uninstall() -> None:
        instrument.set_preemption_hook(None)


# ----------------------------------------------------------------------
# the explored workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExploreProblem:
    """The (small, fixed) solve every schedule runs."""

    points: int = 16
    page_size: int = 32
    tolerance: float = 1e-8

    def build(self):
        A = poisson_2d_5pt(self.points)
        b = stencil_rhs(A, kind="random", seed=7)
        return A, b


def _solve_cell(problem: ExploreProblem, scheduler: str, placement: str,
                clock: str, ranks: int):
    A, b = problem.build()
    num_pages = max(1, A.shape[0] // problem.page_size)
    scenario = multi_error_scenario(
        [Injection(time=1e-4, vector="x", page=num_pages // 2)],
        name="sanitize-explore")
    cfg = SolverConfig(page_size=problem.page_size,
                       tolerance=problem.tolerance,
                       record_history=False, pace=0.0,
                       scheduler=scheduler, placement=placement,
                       clock=clock, ranks=ranks)
    with ResilientCG(A, b, strategy=make_strategy("AFEIR"),
                     scenario=scenario, config=cfg) as solver:
        result = solver.solve()
    return result


def solution_token(result) -> str:
    """Content hash of everything bit-identity promises: the iterate
    vector, the iteration count and the simulated solve time."""
    digest = hashlib.sha256()
    digest.update(result.x.tobytes())
    digest.update(int(result.record.iterations).to_bytes(8, "little"))
    digest.update(np.float64(result.record.solve_time).tobytes())
    return digest.hexdigest()


def reference_token(problem: ExploreProblem) -> str:
    """The unperturbed reference cell's token (list/local/simulated)."""
    return solution_token(_solve_cell(problem, "list", "local",
                                      "simulated", 1))


def explore_schedule(problem: ExploreProblem, seed: int, schedule: int,
                     scheduler: str, placement: str, clock: str,
                     ranks: int, ref_token: str,
                     preempt_rate: float = DEFAULT_PREEMPT_RATE
                     ) -> Dict[str, object]:
    """Run one seeded schedule; returns its (deterministic) verdict.

    The verdict deliberately contains no wall-clock quantities and no
    raw event counts (condition-wait wakeups vary run to run); every
    field is a pure function of the seed and the solve.
    """
    child = np.random.SeedSequence(entropy=[int(seed), int(schedule)])
    explorer = ScheduleExplorer(child, preempt_rate=preempt_rate)
    with instrument.enabled(True):
        instrument.reset()
        explorer.install()
        try:
            result = _solve_cell(problem, scheduler, placement, clock,
                                 ranks)
        finally:
            explorer.uninstall()
        report = detector.analyze()
        instrument.reset()
    token = solution_token(result)
    return {
        "schedule": schedule,
        "seed": int(seed),
        "fingerprint": token,
        "bit_identical": token == ref_token,
        "iterations": int(result.record.iterations),
        "accesses": report.accesses,
        "races": [
            {"resource": r.resource, "access": r.access,
             "first": r.first.location, "second": r.second.location}
            for r in report.races],
        "sanctioned": len(report.sanctioned),
    }


def explore(seed: int, schedules: int, *, scheduler: str = "threaded",
            placement: str = "local", clock: str = "wall", ranks: int = 1,
            points: int = 16, page_size: int = 32,
            preempt_rate: float = DEFAULT_PREEMPT_RATE,
            progress: Optional[callable] = None) -> Dict[str, object]:
    """Run ``schedules`` seeded schedules of one runtime cell."""
    problem = ExploreProblem(points=points, page_size=page_size)
    ref = reference_token(problem)
    records: List[Dict[str, object]] = []
    for index in range(schedules):
        record = explore_schedule(problem, seed, index, scheduler,
                                  placement, clock, ranks, ref,
                                  preempt_rate=preempt_rate)
        records.append(record)
        if progress is not None:
            progress(record)
    broken = [r["schedule"] for r in records if not r["bit_identical"]]
    racy = [r["schedule"] for r in records if r["races"]]
    return {
        "kind": "sanitize-explore",
        "seed": int(seed),
        "cell": {"scheduler": scheduler, "placement": placement,
                 "clock": clock, "ranks": int(ranks)},
        "problem": {"points": points, "page_size": page_size,
                    "n": points * points},
        "reference_fingerprint": ref,
        "schedules": records,
        "bit_identity_broken": broken,
        "racy_schedules": racy,
        "ok": not broken and not racy,
    }
