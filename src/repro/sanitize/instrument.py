"""Sanitizer-aware drop-in factories for threading/queue primitives.

The threaded backend, the rank runtime and the campaign daemon construct
their locks, conditions, events and queues through these factories
instead of calling ``threading.Lock()`` / ``queue.Queue()`` directly
(the ``sanitizer-factory`` lint rule enforces it).  The contract:

* **sanitizer off** (``REPRO_TSAN`` unset, the default) the factory
  returns the *raw* stdlib primitive — not a wrapper with pass-through
  methods, the actual ``threading.Lock`` object — so steady-state cost
  is exactly zero: the only overhead is one extra function call at
  construction time;
* **sanitizer on** (``REPRO_TSAN=1``) the factory returns an
  instrumented wrapper that records every operation into the global
  :class:`~repro.sanitize.events.EventLog` and visits the schedule
  explorer's preemption hook, while delegating the real synchronisation
  to the underlying stdlib primitive (semantics are untouched — the
  sanitizer observes, it never synchronises differently).

Queue wrappers additionally tag each item with the ``put`` event's
sequence number so the detector pairs every ``get`` with the exact
``put`` that produced its item, even with concurrent producers.
"""

from __future__ import annotations

import itertools
import os
import queue
import threading
from typing import Callable, Optional, Tuple

from repro.sanitize.events import (EventLog, ThreadLockState, OP_ACCESS,
                                   OP_ACQUIRE, OP_GET, OP_NOTIFY, OP_PUT,
                                   OP_RELEASE, OP_SET, OP_WAIT_EVENT)

#: Enable switch (documented in the README's ``REPRO_*`` table).
TSAN_ENV = "REPRO_TSAN"
#: Seed for the schedule explorer (CLI ``--seed`` overrides).
SANITIZE_SEED_ENV = "REPRO_SANITIZE_SEED"

#: Programmatic override: tests and the explorer flip this instead of
#: mutating ``os.environ`` (None = follow the environment variable).
_FORCED: Optional[bool] = None

#: The process-global event log instrumented primitives record into.
LOG = EventLog()

#: Preemption hook the schedule explorer installs; called at every
#: instrumented operation when the sanitizer is on.
_PREEMPT_HOOK: Optional[Callable[[str, str, str], None]] = None

_LOCAL = threading.local()
_NAME_COUNTER = itertools.count(1)


def sanitizer_enabled() -> bool:
    """True when instrumentation is requested (env knob or override)."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(TSAN_ENV, "").strip().lower() not in (
        "", "0", "false", "no")


class enabled:
    """Context manager forcing the sanitizer on/off for a scope (tests,
    the explorer).  Nestable; restores the previous override on exit."""

    def __init__(self, on: bool = True) -> None:
        self.on = bool(on)
        self._previous: Optional[bool] = None

    def __enter__(self) -> "enabled":
        global _FORCED
        self._previous = _FORCED
        _FORCED = self.on
        return self

    def __exit__(self, *exc) -> None:
        global _FORCED
        _FORCED = self._previous


def set_preemption_hook(
        hook: Optional[Callable[[str, str, str], None]]) -> None:
    """Install (or clear, with ``None``) the explorer's preemption hook.

    The hook receives ``(thread_name, op, obj_name)`` before every
    instrumented operation records its event.
    """
    global _PREEMPT_HOOK
    _PREEMPT_HOOK = hook


def reset() -> None:
    """Clear the event log (between explorer schedules / tests)."""
    LOG.clear()


def _lock_state() -> ThreadLockState:
    state = getattr(_LOCAL, "locks", None)
    if state is None:
        state = _LOCAL.locks = ThreadLockState()
    return state


def _thread_name() -> str:
    return threading.current_thread().name


def _visit(op: str, obj: str) -> None:
    hook = _PREEMPT_HOOK
    if hook is not None:
        hook(_thread_name(), op, obj)


def _auto_name(kind: str, name: Optional[str]) -> str:
    if name:
        return name
    return f"{kind}#{next(_NAME_COUNTER)}"


# ----------------------------------------------------------------------
# access bridging (Task.reads / Task.writes -> detector accesses)
# ----------------------------------------------------------------------
def record_access(resource: str, *, write: bool,
                  task: Optional[str] = None) -> None:
    """Record one memory access on a declared resource.

    The threaded backend calls this for every resource a task declares,
    from the worker thread that really executed the task, so the
    detector sees the *dynamic* side of the same annotations
    ``verify_graph`` checks structurally.  No-op when the sanitizer is
    off.
    """
    if not sanitizer_enabled():
        return
    _visit(OP_ACCESS, resource)
    LOG.append(_thread_name(), OP_ACCESS, resource, write=write,
               held=_lock_state().snapshot(), with_stack=True, task=task)


def record_task_accesses(reads, writes, task: Optional[str] = None) -> None:
    """Bridge one task's declared resource sets into access events."""
    if not sanitizer_enabled():
        return
    for resource in sorted(reads):
        record_access(resource, write=False, task=task)
    for resource in sorted(writes):
        record_access(resource, write=True, task=task)


# ----------------------------------------------------------------------
# instrumented wrappers
# ----------------------------------------------------------------------
class TSanLock:
    """Instrumented ``threading.Lock`` (or ``RLock``) wrapper."""

    def __init__(self, name: str, reentrant: bool = False) -> None:
        self.name = name
        self.reentrant = reentrant
        self.raw = threading.RLock() if reentrant else threading.Lock()

    # -- lock protocol --------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        _visit(OP_ACQUIRE, self.name)
        got = self.raw.acquire(blocking, timeout)  # repro-lint: allow[lock-discipline] this IS the lock protocol; pairing is the caller's contract, mirrored from the raw primitive
        if got:
            _lock_state().push(self.name)
            LOG.append(_thread_name(), OP_ACQUIRE, self.name,
                       held=_lock_state().snapshot())
        return got

    def release(self) -> None:
        LOG.append(_thread_name(), OP_RELEASE, self.name,
                   held=_lock_state().snapshot())
        _lock_state().pop(self.name)
        self.raw.release()

    def locked(self) -> bool:
        return self.raw.locked()

    def __enter__(self) -> bool:
        return self.acquire()  # repro-lint: allow[lock-discipline] __enter__/__exit__ are the with-statement pairing itself

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "TSanRLock" if self.reentrant else "TSanLock"
        return f"<{kind} {self.name!r}>"


class TSanCondition:
    """Instrumented ``threading.Condition``.

    Built on the *raw* lock of a (possibly shared) :class:`TSanLock`, so
    several conditions over one lock still serialise for real; the
    wrapper records acquire/release/wait/notify under the lock's name,
    and models ``wait()`` as release -> (sleep) -> acquire, which is
    exactly the happens-before the stdlib semantics give.
    """

    def __init__(self, lock: Optional[TSanLock] = None,
                 name: Optional[str] = None) -> None:
        self.lock = lock if lock is not None else TSanLock(
            _auto_name("condition-lock", name), reentrant=True)
        self.name = name or self.lock.name
        self.raw = threading.Condition(self.lock.raw)

    # -- lock protocol (delegates to the instrumented lock) -------------
    def acquire(self, *args) -> bool:
        return self.lock.acquire(*args)  # repro-lint: allow[lock-discipline] condition lock protocol delegation; pairing is the caller's contract

    def release(self) -> None:
        self.lock.release()

    def __enter__(self) -> bool:
        return self.lock.acquire()  # repro-lint: allow[lock-discipline] __enter__/__exit__ are the with-statement pairing itself

    def __exit__(self, *exc) -> None:
        self.lock.release()

    # -- condition protocol --------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> bool:
        # wait() atomically releases the lock and re-acquires it before
        # returning; record both halves so the detector sees the same
        # happens-before edges the real primitive creates.
        _visit("wait", self.name)
        LOG.append(_thread_name(), OP_RELEASE, self.name,
                   held=_lock_state().snapshot())
        _lock_state().pop(self.name)
        try:
            return self.raw.wait(timeout)
        finally:
            _lock_state().push(self.name)
            LOG.append(_thread_name(), OP_ACQUIRE, self.name,
                       held=_lock_state().snapshot())

    def wait_for(self, predicate, timeout: Optional[float] = None):
        result = predicate()
        if result:
            return result
        endtime = None
        waittime = timeout
        while not result:
            if waittime is not None:
                if endtime is None:
                    import time
                    endtime = time.monotonic() + waittime  # repro-lint: allow[wall-clock] stdlib Condition.wait_for deadline semantics, never fingerprinted
                else:
                    import time
                    waittime = endtime - time.monotonic()  # repro-lint: allow[wall-clock] stdlib Condition.wait_for deadline semantics, never fingerprinted
                    if waittime <= 0:
                        break
            self.wait(waittime)
            result = predicate()
        return result

    def notify(self, n: int = 1) -> None:
        LOG.append(_thread_name(), OP_NOTIFY, self.name,
                   held=_lock_state().snapshot())
        self.raw.notify(n)

    def notify_all(self) -> None:
        LOG.append(_thread_name(), OP_NOTIFY, self.name,
                   held=_lock_state().snapshot())
        self.raw.notify_all()


class TSanEvent:
    """Instrumented ``threading.Event``: ``set`` publishes the setter's
    history to every thread whose ``wait`` observes it."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.raw = threading.Event()

    def set(self) -> None:
        _visit(OP_SET, self.name)
        LOG.append(_thread_name(), OP_SET, self.name,
                   held=_lock_state().snapshot())
        self.raw.set()

    def clear(self) -> None:
        self.raw.clear()

    def is_set(self) -> bool:
        return self.raw.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        _visit(OP_WAIT_EVENT, self.name)
        observed = self.raw.wait(timeout)
        if observed:
            LOG.append(_thread_name(), OP_WAIT_EVENT, self.name,
                       held=_lock_state().snapshot())
        return observed


class _Tagged:
    """Queue payload envelope carrying the producing put's token."""

    __slots__ = ("token", "item")

    def __init__(self, token: int, item) -> None:
        self.token = token
        self.item = item


class TSanQueue:
    """Instrumented ``queue.Queue``; put -> get is a happens-before edge
    paired exactly by token (robust to concurrent producers)."""

    def __init__(self, name: str, maxsize: int = 0) -> None:
        self.name = name
        self.raw = queue.Queue(maxsize)

    def put(self, item, block: bool = True,
            timeout: Optional[float] = None) -> None:
        _visit(OP_PUT, self.name)
        token = LOG.append(_thread_name(), OP_PUT, self.name,
                           held=_lock_state().snapshot())
        self.raw.put(_Tagged(token, item), block, timeout)

    def put_nowait(self, item) -> None:
        self.put(item, block=False)

    def get(self, block: bool = True, timeout: Optional[float] = None):
        _visit(OP_GET, self.name)
        tagged = self.raw.get(block, timeout)   # raises queue.Empty as-is
        LOG.append(_thread_name(), OP_GET, self.name, token=tagged.token,
                   held=_lock_state().snapshot())
        return tagged.item

    def get_nowait(self):
        return self.get(block=False)

    def qsize(self) -> int:
        return self.raw.qsize()

    def empty(self) -> bool:
        return self.raw.empty()

    def full(self) -> bool:
        return self.raw.full()

    def task_done(self) -> None:
        self.raw.task_done()

    def join(self) -> None:
        self.raw.join()


# ----------------------------------------------------------------------
# factories (the only construction path the lint rule accepts)
# ----------------------------------------------------------------------
def make_lock(name: Optional[str] = None):
    """A mutex: raw ``threading.Lock`` off, :class:`TSanLock` on."""
    if not sanitizer_enabled():
        return threading.Lock()
    return TSanLock(_auto_name("lock", name))


def make_rlock(name: Optional[str] = None):
    """A reentrant mutex: raw ``threading.RLock`` off, wrapper on."""
    if not sanitizer_enabled():
        return threading.RLock()
    return TSanLock(_auto_name("rlock", name), reentrant=True)


def make_condition(lock=None, name: Optional[str] = None):
    """A condition variable, optionally over an existing factory-made
    lock (matching ``threading.Condition(lock)``)."""
    if not sanitizer_enabled():
        raw = getattr(lock, "raw", lock)
        return threading.Condition(raw)
    if lock is None or not isinstance(lock, TSanLock):
        # Off-mode locks may leak in when the sanitizer was toggled
        # between constructions; fall back to a fresh instrumented lock.
        return TSanCondition(name=_auto_name("condition", name))
    return TSanCondition(lock, name=name or lock.name)


def make_event(name: Optional[str] = None):
    """A one-shot flag: raw ``threading.Event`` off, wrapper on."""
    if not sanitizer_enabled():
        return threading.Event()
    return TSanEvent(_auto_name("event", name))


def make_queue(name: Optional[str] = None, maxsize: int = 0):
    """A FIFO channel: raw ``queue.Queue`` off, wrapper on."""
    if not sanitizer_enabled():
        return queue.Queue(maxsize)
    return TSanQueue(_auto_name("queue", name), maxsize)


def held_locks() -> Tuple[str, ...]:
    """The calling thread's current instrumented lockset (tests)."""
    return _lock_state().snapshot()
