"""Hybrid data-race detection over recorded sanitizer events.

The detector replays an :class:`~repro.sanitize.events.EventLog` in
observed order and maintains, per thread, a **vector clock** advanced by
the synchronisation events the instrumented primitives recorded:

* lock release -> (next) acquire of the same lock,
* queue ``put`` -> the ``get`` that received that exact item (paired by
  token, not position),
* event ``set`` -> every ``wait`` that observed it,
* condition ``wait`` modelled as release + re-acquire of its lock.

Two accesses to the same declared resource race when they come from
different threads, at least one writes, and neither happens-before the
other.  Because happens-before tracking can miss edges established
through uninstrumented channels, an **Eraser-style lockset fallback**
runs second: a candidate pair whose lockset intersection is non-empty is
demoted to *lockset-protected* (consistently locked, so the missing
edge is an instrumentation gap, not a bug).  What survives both filters
is reported with both thread stacks and the locks each side held —
unless the resource carries a stale-read allowance
(:mod:`repro.sanitize.stale`), in which case the pair is *sanctioned*:
the annotated, bounded staleness the async-iteration work will rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sanitize.events import (Event, EventLog, OP_ACCESS, OP_ACQUIRE,
                                   OP_GET, OP_PUT, OP_RELEASE, OP_SET,
                                   OP_WAIT_EVENT)
from repro.sanitize.stale import ALLOWLIST, StaleAllowance, StaleReadAllowlist

VectorClock = Dict[str, int]


def _join(into: VectorClock, other: VectorClock) -> None:
    for thread, tick in other.items():
        if into.get(thread, 0) < tick:
            into[thread] = tick


@dataclass(frozen=True)
class AccessRecord:
    """One side of a candidate race."""

    thread: str
    write: bool
    resource: str
    seq: int
    epoch: int                     # the thread's own clock component
    held: Tuple[str, ...]
    stack: Tuple[str, ...]
    task: Optional[str] = None

    @property
    def location(self) -> str:
        return self.stack[-1] if self.stack else "<no stack>"

    def describe(self) -> str:
        kind = "write" if self.write else "read"
        who = f"{self.thread}" + (f" (task {self.task!r})" if self.task else "")
        lines = [f"{kind} by {who}, holding "
                 f"{list(self.held) if self.held else 'no locks'}:"]
        lines.extend(f"    {frame}" for frame in self.stack)
        if not self.stack:
            lines.append("    <no stack recorded>")
        return "\n".join(lines)


@dataclass(frozen=True)
class RaceReport:
    """One unordered conflicting access pair."""

    resource: str
    first: AccessRecord
    second: AccessRecord
    #: Non-None when a stale-read allowance sanctions this pair.
    allowance: Optional[StaleAllowance] = None

    @property
    def access(self) -> str:
        a = "write" if self.first.write else "read"
        b = "write" if self.second.write else "read"
        return f"{a}/{b}"

    @property
    def sanctioned(self) -> bool:
        return self.allowance is not None

    def signature(self) -> Tuple:
        """Order- and run-stable identity used for dedup and sorting."""
        sides = tuple(sorted(
            ((rec.location, rec.write, rec.task or "") for rec in
             (self.first, self.second))))
        return (self.resource, sides)

    def describe(self) -> str:
        head = (f"{self.access} race on {self.resource!r} between "
                f"{self.first.thread!r} and {self.second.thread!r}")
        if self.sanctioned:
            head += f"  [SANCTIONED: {self.allowance.describe()}]"
        return "\n".join([head,
                          "  " + self.first.describe().replace("\n", "\n  "),
                          "  " + self.second.describe().replace("\n", "\n  ")])


@dataclass
class SanitizerReport:
    """Digest of one detection pass."""

    races: List[RaceReport] = field(default_factory=list)
    sanctioned: List[RaceReport] = field(default_factory=list)
    lockset_protected: int = 0
    events: int = 0
    accesses: int = 0
    threads: int = 0

    @property
    def ok(self) -> bool:
        return not self.races

    def summary(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "races": len(self.races),
            "sanctioned": len(self.sanctioned),
            "lockset_protected": self.lockset_protected,
            "events": self.events,
            "accesses": self.accesses,
            "threads": self.threads,
        }

    def render(self) -> str:
        lines: List[str] = []
        for race in self.races:
            lines.append(race.describe())
        for race in self.sanctioned:
            lines.append(race.describe())
        lines.append(
            f"{len(self.races)} race(s), {len(self.sanctioned)} "
            f"sanctioned, {self.lockset_protected} lockset-protected "
            f"candidate(s); {self.accesses} access(es) over "
            f"{self.events} event(s) from {self.threads} thread(s)")
        return "\n".join(lines)


class _ResourceHistory:
    """Bounded access history: last write + last read per thread.

    Keeping one entry per (thread, kind) is the FastTrack-style
    compaction: a new access ordered after a thread's *latest* write is
    ordered after all its earlier ones too, so older entries can never
    flip a verdict from ordered to racy.
    """

    __slots__ = ("writes", "reads")

    def __init__(self) -> None:
        self.writes: Dict[str, AccessRecord] = {}
        self.reads: Dict[str, AccessRecord] = {}

    def others(self, thread: str, *, include_reads: bool
               ) -> List[AccessRecord]:
        prior = [rec for t, rec in self.writes.items() if t != thread]
        if include_reads:
            prior.extend(rec for t, rec in self.reads.items() if t != thread)
        return prior

    def remember(self, record: AccessRecord) -> None:
        table = self.writes if record.write else self.reads
        table[record.thread] = record


def analyze_events(events: List[Event],
                   allowlist: Optional[StaleReadAllowlist] = None
                   ) -> SanitizerReport:
    """Run the hybrid detector over one recorded interleaving."""
    allowlist = allowlist if allowlist is not None else ALLOWLIST
    clocks: Dict[str, VectorClock] = {}
    lock_clocks: Dict[str, VectorClock] = {}
    put_clocks: Dict[int, VectorClock] = {}
    event_clocks: Dict[str, VectorClock] = {}
    history: Dict[str, _ResourceHistory] = {}
    report = SanitizerReport(events=len(events))
    seen: set = set()

    for event in events:
        clock = clocks.setdefault(event.thread, {})
        clock[event.thread] = clock.get(event.thread, 0) + 1
        if event.op == OP_ACQUIRE:
            released = lock_clocks.get(event.obj)
            if released is not None:
                _join(clock, released)
        elif event.op == OP_RELEASE:
            _join(lock_clocks.setdefault(event.obj, {}), clock)
        elif event.op == OP_PUT:
            put_clocks[event.seq] = dict(clock)
        elif event.op == OP_GET:
            if event.token is not None:
                produced = put_clocks.pop(event.token, None)
                if produced is not None:
                    _join(clock, produced)
        elif event.op == OP_SET:
            _join(event_clocks.setdefault(event.obj, {}), clock)
        elif event.op == OP_WAIT_EVENT:
            observed = event_clocks.get(event.obj)
            if observed is not None:
                _join(clock, observed)
        elif event.op == OP_ACCESS:
            report.accesses += 1
            record = AccessRecord(thread=event.thread, write=event.write,
                                  resource=event.obj, seq=event.seq,
                                  epoch=clock[event.thread],
                                  held=event.held, stack=event.stack,
                                  task=event.task)
            hist = history.setdefault(event.obj, _ResourceHistory())
            # A write conflicts with prior reads and writes; a read only
            # with prior writes.
            for prior in hist.others(event.thread,
                                     include_reads=event.write):
                if clock.get(prior.thread, 0) >= prior.epoch:
                    continue                    # happens-before ordered
                common = set(prior.held) & set(record.held)
                if common:
                    report.lockset_protected += 1
                    continue                    # Eraser fallback: locked
                race = RaceReport(resource=event.obj, first=prior,
                                  second=record)
                if race.signature() in seen:
                    continue
                seen.add(race.signature())
                allowance = None
                if not (prior.write and record.write):
                    # Staleness sanctions lagging *reads*; two
                    # unsynchronised writes are never a staleness.
                    allowance = allowlist.lookup(event.obj)
                if allowance is not None:
                    report.sanctioned.append(
                        RaceReport(resource=event.obj, first=prior,
                                   second=record, allowance=allowance))
                else:
                    report.races.append(race)
            hist.remember(record)

    report.threads = len(clocks)
    report.races.sort(key=RaceReport.signature)
    report.sanctioned.sort(key=RaceReport.signature)
    return report


def analyze(log: Optional[EventLog] = None,
            allowlist: Optional[StaleReadAllowlist] = None
            ) -> SanitizerReport:
    """Analyze a log (default: the global one the wrappers record into)."""
    if log is None:
        from repro.sanitize.instrument import LOG
        log = LOG
    return analyze_events(log.events(), allowlist)
