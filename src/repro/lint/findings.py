"""Finding model shared by checkers, engine, and reporters."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple


@dataclass
class Finding:
    """One diagnostic emitted by a checker.

    ``path`` is the path as given on the command line (posix-style),
    ``line``/``col`` are 1-based line and 0-based column, matching the
    ``ast`` node they came from.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    suppressed: bool = False
    suppression_reason: Optional[str] = None
    related: Tuple[str, ...] = field(default_factory=tuple)

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def suppress(self, reason: str) -> "Finding":
        return replace(self, suppressed=True, suppression_reason=reason)

    def format_human(self) -> str:
        text = f"{self.path}:{self.line}:{self.col + 1}: [{self.code}] {self.message}"
        for extra in self.related:
            text += f"\n    note: {extra}"
        return text

    def to_json(self) -> dict:
        payload = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "suppressed": self.suppressed,
        }
        if self.suppression_reason is not None:
            payload["suppression_reason"] = self.suppression_reason
        if self.related:
            payload["related"] = list(self.related)
        return payload
