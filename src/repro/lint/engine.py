"""Lint engine: file discovery, parsing, checker dispatch, suppression."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.lint.base import Checker, FileContext
from repro.lint.checkers import ALL_CHECKERS
from repro.lint.findings import Finding
from repro.lint.imports import ImportMap
from repro.lint.pragmas import PragmaSheet

#: Directory names never descended into during discovery.
SKIP_DIRS = frozenset({".git", "__pycache__", ".ruff_cache", ".pytest_cache", "build", "dist"})


@dataclass
class LintResult:
    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: int = 0
    #: ``allow[...]`` grants that suppressed nothing this run (stale
    #: pragmas).  Tracked apart from ``findings`` so they do not affect
    #: ``ok`` — the CLI's ``--show-unused-pragmas`` opts into failing.
    unused_pragmas: List[Finding] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.active

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.files_checked += other.files_checked
        self.parse_errors += other.parse_errors
        self.unused_pragmas.extend(other.unused_pragmas)


def lint_source(
    source: str,
    path: str,
    checkers: Optional[Sequence[Checker]] = None,
) -> LintResult:
    """Lint one in-memory source buffer (the unit the tests drive)."""
    result = LintResult(files_checked=1)
    path = Path(path).as_posix()
    sheet = PragmaSheet.from_source(source, path)
    result.findings.extend(sheet.error_findings(path))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.parse_errors += 1
        result.findings.append(
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code="parse-error",
                message=f"file does not parse: {exc.msg}",
            )
        )
        result.findings.sort(key=Finding.sort_key)
        return result

    ctx = FileContext(path=path, source=source, tree=tree, imports=ImportMap.from_tree(tree))
    ran = checkers if checkers is not None else ALL_CHECKERS
    raw: List[Finding] = []
    for checker in ran:
        raw.extend(checker.run(ctx))
    for finding in raw:
        reason = sheet.reason_for(finding.line, finding.code)
        result.findings.append(finding if reason is None else finding.suppress(reason))
    result.unused_pragmas.extend(
        sheet.unused_findings(
            path,
            ran_codes=frozenset(c.code for c in ran),
            known_codes=frozenset(c.code for c in ALL_CHECKERS),
        )
    )
    result.findings.sort(key=Finding.sort_key)
    return result


def lint_file(path: Path, checkers: Optional[Sequence[Checker]] = None) -> LintResult:
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        result = LintResult(files_checked=1, parse_errors=1)
        result.findings.append(
            Finding(
                path=path.as_posix(),
                line=1,
                col=0,
                code="parse-error",
                message=f"cannot read file: {exc}",
            )
        )
        return result
    return lint_source(source, path.as_posix(), checkers)


def discover(paths: Iterable[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(
                p
                for p in path.rglob("*.py")
                if not any(part in SKIP_DIRS for part in p.parts)
            )
    return sorted(set(files), key=lambda p: p.as_posix())


def lint_paths(
    paths: Sequence[Path],
    checkers: Optional[Sequence[Checker]] = None,
) -> LintResult:
    result = LintResult()
    for path in discover(paths):
        result.extend(lint_file(path, checkers))
    result.findings.sort(key=Finding.sort_key)
    return result
