"""Checker base class and file context."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.findings import Finding
from repro.lint.imports import ImportMap

#: Path segments whose files are exercised by looser rules (tests may use
#: seeded ``default_rng`` directly, clocks in benchmarks are fine, ...).
RELAXED_SEGMENTS = ("tests", "benchmarks", "examples", "scripts")


@dataclass
class FileContext:
    """Everything a checker needs to know about one parsed file."""

    path: str  # as given on the command line, posix separators
    source: str
    tree: ast.AST
    imports: ImportMap
    _parents: Optional[Dict[int, ast.AST]] = field(default=None, repr=False)

    @property
    def is_relaxed(self) -> bool:
        parts = self.path.split("/")
        return any(seg in parts for seg in RELAXED_SEGMENTS)

    def module_is(self, *suffixes: str) -> bool:
        """True if this file is one of the given repo modules.

        Matches by path suffix so absolute paths, ``src/``-relative paths,
        and bare module paths all work: ``module_is("repro/campaign/store.py")``.
        """
        norm = self.path.lstrip("./")
        for suffix in suffixes:
            if norm == suffix or norm.endswith("/" + suffix):
                return True
        return False

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        if self._parents is None:
            self._parents = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[id(child)] = parent
        return self._parents.get(id(node))

    def finding(self, node: ast.AST, code: str, message: str, *, related: Tuple[str, ...] = ()) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
            related=tuple(related),
        )


class Checker:
    """One lint rule.  Subclasses set the class attributes and ``check``."""

    #: kebab-case rule code used in reports and pragmas
    code: str = ""
    #: one-line summary for ``--list-rules``
    title: str = ""
    #: multi-paragraph rationale for ``--explain CODE``
    rationale: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:  # pragma: no cover - interface
        raise NotImplementedError

    def run(self, ctx: FileContext) -> List[Finding]:
        if not self.applies_to(ctx):
            return []
        return list(self.check(ctx))
