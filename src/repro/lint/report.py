"""Human and JSON reporters."""

from __future__ import annotations

import json
from typing import List

from repro.lint.checkers import ALL_CHECKERS
from repro.lint.engine import LintResult


def render_human(result: LintResult, *, show_suppressed: bool = False,
                 show_unused_pragmas: bool = False) -> str:
    lines: List[str] = [f.format_human() for f in result.active]
    if show_suppressed:
        lines.extend(
            f"{f.format_human()}  (suppressed: {f.suppression_reason})"
            for f in result.suppressed
        )
    if show_unused_pragmas:
        lines.extend(f.format_human() for f in result.unused_pragmas)
    summary = (
        f"{len(result.active)} finding(s), {len(result.suppressed)} suppressed, "
        f"{result.files_checked} file(s) checked"
    )
    if result.parse_errors:
        summary += f", {result.parse_errors} parse error(s)"
    if show_unused_pragmas:
        summary += f", {len(result.unused_pragmas)} unused pragma(s)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "files_checked": result.files_checked,
        "parse_errors": result.parse_errors,
        "findings": [f.to_json() for f in result.active],
        "suppressed": [f.to_json() for f in result.suppressed],
        "unused_pragmas": [f.to_json() for f in result.unused_pragmas],
        "ok": result.ok,
    }
    return json.dumps(payload, sort_keys=True, indent=2)


def render_rule_list() -> str:
    width = max(len(c.code) for c in ALL_CHECKERS)
    return "\n".join(f"{c.code.ljust(width)}  {c.title}" for c in ALL_CHECKERS)


def render_explanation(code: str) -> str:
    for checker in ALL_CHECKERS:
        if checker.code == code:
            header = f"{checker.code} — {checker.title}"
            return f"{header}\n{'=' * len(header)}\n{checker.rationale}"
    known = ", ".join(c.code for c in ALL_CHECKERS)
    raise KeyError(f"unknown rule code {code!r}; known codes: {known}")
