"""Inline suppression pragmas.

Syntax (one comment, one or more codes, mandatory justification)::

    x = time.time()  # repro-lint: allow[wall-clock] gc cutoff default, overridable via now=

    # repro-lint: allow[unseeded-rng] deliberate global-state perturbation for the test
    np.random.seed(0)

A pragma on its own line suppresses matching findings on the next
non-pragma line; a trailing pragma suppresses findings on its own line.
A pragma without a justification (or that fails to parse past the
``repro-lint:`` marker) is itself reported as a ``pragma`` finding and
suppresses nothing — suppressions must carry their reason in the diff.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Iterator, List, Tuple

from repro.lint.findings import Finding

PRAGMA_MARKER = "repro-lint:"
_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*allow\[(?P<codes>[a-z][a-z0-9,\s-]*)\]\s*(?P<reason>.*)$"
)

# Findings with these codes cannot be pragma-suppressed: a broken pragma
# or an unparseable file must always surface.
UNSUPPRESSIBLE = frozenset({"pragma", "parse-error"})


class PragmaSheet:
    """All ``repro-lint`` pragmas of one file, indexed by effective line."""

    def __init__(self) -> None:
        # line -> code -> reason
        self._by_line: Dict[int, Dict[str, str]] = {}
        self._errors: List[Tuple[int, int, str]] = []

    @classmethod
    def from_source(cls, source: str, path: str) -> "PragmaSheet":
        sheet = cls()
        standalone: List[Tuple[int, Dict[str, str]]] = []
        for line, col, text, is_standalone in _iter_comments(source):
            if PRAGMA_MARKER not in text:
                continue
            match = _PRAGMA_RE.search(text)
            if match is None:
                sheet._errors.append(
                    (line, col, "malformed pragma; expected `# repro-lint: allow[code] reason`")
                )
                continue
            reason = match.group("reason").strip()
            if not reason:
                sheet._errors.append(
                    (line, col, "pragma without justification; add a reason after the bracket")
                )
                continue
            codes = {c.strip() for c in match.group("codes").split(",") if c.strip()}
            entry = {code: reason for code in codes}
            if is_standalone:
                standalone.append((line, entry))
            else:
                sheet._merge(line, entry)
        # A standalone pragma applies to the next line; stacked standalone
        # pragmas cascade so several can guard one statement.
        pragma_lines = {line for line, _ in standalone}
        for line, entry in standalone:
            target = line + 1
            while target in pragma_lines:
                target += 1
            sheet._merge(target, entry)
        return sheet

    def _merge(self, line: int, entry: Dict[str, str]) -> None:
        self._by_line.setdefault(line, {}).update(entry)

    def reason_for(self, line: int, code: str) -> str | None:
        if code in UNSUPPRESSIBLE:
            return None
        entry = self._by_line.get(line)
        if entry is None:
            return None
        return entry.get(code)

    def error_findings(self, path: str) -> List[Finding]:
        return [
            Finding(path=path, line=line, col=col, code="pragma", message=message)
            for line, col, message in self._errors
        ]


def _iter_comments(source: str) -> Iterator[Tuple[int, int, str, bool]]:
    """Yield ``(line, col, text, is_standalone)`` for each comment token."""
    lines = source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            line, col = tok.start
            prefix = lines[line - 1][:col] if line - 1 < len(lines) else ""
            yield line, col, tok.string, not prefix.strip()
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The engine reports unparseable files separately; fall back to a
        # line scan so pragmas in partially-broken files still register.
        for lineno, text in enumerate(lines, start=1):
            idx = text.find("#")
            if idx >= 0 and PRAGMA_MARKER in text[idx:]:
                yield lineno, idx, text[idx:], not text[:idx].strip()
