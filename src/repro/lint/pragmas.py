"""Inline suppression pragmas.

Syntax (one comment, one or more codes, mandatory justification)::

    x = time.time()  # repro-lint: allow[wall-clock] gc cutoff default, overridable via now=

    # repro-lint: allow[unseeded-rng] deliberate global-state perturbation for the test
    np.random.seed(0)

A pragma on its own line suppresses matching findings on the next
non-pragma line; a trailing pragma suppresses findings on its own line.
A pragma without a justification (or that fails to parse past the
``repro-lint:`` marker) is itself reported as a ``pragma`` finding and
suppresses nothing — suppressions must carry their reason in the diff.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Iterator, List, Tuple

from repro.lint.findings import Finding

PRAGMA_MARKER = "repro-lint:"
_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*allow\[(?P<codes>[a-z][a-z0-9,\s-]*)\]\s*(?P<reason>.*)$"
)

# Findings with these codes cannot be pragma-suppressed: a broken pragma
# or an unparseable file must always surface.
UNSUPPRESSIBLE = frozenset({"pragma", "parse-error", "unused-pragma"})


class _PragmaEntry:
    """One ``allow[code]`` grant: where it was written, where it applies,
    and whether any finding ever consumed it."""

    __slots__ = ("pragma_line", "col", "code", "reason", "used")

    def __init__(self, pragma_line: int, col: int, code: str, reason: str):
        self.pragma_line = pragma_line
        self.col = col
        self.code = code
        self.reason = reason
        self.used = False


class PragmaSheet:
    """All ``repro-lint`` pragmas of one file, indexed by effective line."""

    def __init__(self) -> None:
        # effective line -> code -> grant
        self._by_line: Dict[int, Dict[str, _PragmaEntry]] = {}
        self._errors: List[Tuple[int, int, str]] = []

    @classmethod
    def from_source(cls, source: str, path: str) -> "PragmaSheet":
        sheet = cls()
        standalone: List[Tuple[int, List[_PragmaEntry]]] = []
        for line, col, text, is_standalone in _iter_comments(source):
            if PRAGMA_MARKER not in text:
                continue
            match = _PRAGMA_RE.search(text)
            if match is None:
                sheet._errors.append(
                    (line, col, "malformed pragma; expected `# repro-lint: allow[code] reason`")
                )
                continue
            reason = match.group("reason").strip()
            if not reason:
                sheet._errors.append(
                    (line, col, "pragma without justification; add a reason after the bracket")
                )
                continue
            codes = {c.strip() for c in match.group("codes").split(",") if c.strip()}
            entries = [_PragmaEntry(line, col, code, reason) for code in sorted(codes)]
            if is_standalone:
                standalone.append((line, entries))
            else:
                sheet._merge(line, entries)
        # A standalone pragma applies to the next line; stacked standalone
        # pragmas cascade so several can guard one statement.
        pragma_lines = {line for line, _ in standalone}
        for line, entries in standalone:
            target = line + 1
            while target in pragma_lines:
                target += 1
            sheet._merge(target, entries)
        return sheet

    def _merge(self, line: int, entries: List[_PragmaEntry]) -> None:
        slot = self._by_line.setdefault(line, {})
        for entry in entries:
            slot[entry.code] = entry

    def reason_for(self, line: int, code: str) -> str | None:
        if code in UNSUPPRESSIBLE:
            return None
        entry = self._by_line.get(line, {}).get(code)
        if entry is None:
            return None
        entry.used = True
        return entry.reason

    def error_findings(self, path: str) -> List[Finding]:
        return [
            Finding(path=path, line=line, col=col, code="pragma", message=message)
            for line, col, message in self._errors
        ]

    def unused_findings(self, path: str, ran_codes: frozenset,
                        known_codes: frozenset) -> List[Finding]:
        """Pragmas that suppressed nothing this run, as findings.

        Only grants whose rule actually ran are judged (a `wall-clock`
        pragma is not stale just because the run was
        `--select lock-discipline`); grants naming a code no checker has
        ever had are always stale.
        """
        stale = [
            entry
            for slot in self._by_line.values()
            for entry in slot.values()
            if not entry.used
            and (entry.code in ran_codes or entry.code not in known_codes)
        ]
        stale.sort(key=lambda e: (e.pragma_line, e.col, e.code))
        return [
            Finding(
                path=path,
                line=entry.pragma_line,
                col=entry.col,
                code="unused-pragma",
                message=f"pragma `allow[{entry.code}]` suppresses nothing — the "
                "finding it guarded is gone; delete the pragma (reason was: "
                f"{entry.reason})",
            )
            for entry in stale
        ]


def _iter_comments(source: str) -> Iterator[Tuple[int, int, str, bool]]:
    """Yield ``(line, col, text, is_standalone)`` for each comment token."""
    lines = source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            line, col = tok.start
            prefix = lines[line - 1][:col] if line - 1 < len(lines) else ""
            yield line, col, tok.string, not prefix.strip()
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The engine reports unparseable files separately; fall back to a
        # line scan so pragmas in partially-broken files still register.
        for lineno, text in enumerate(lines, start=1):
            idx = text.find("#")
            if idx >= 0 and PRAGMA_MARKER in text[idx:]:
                yield lineno, idx, text[idx:], not text[:idx].strip()
