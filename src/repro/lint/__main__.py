"""CLI: ``python -m repro.lint src/ tests/``.

Exit codes: 0 clean, 1 unsuppressed findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.checkers import ALL_CHECKERS
from repro.lint.engine import lint_paths
from repro.lint.report import render_explanation, render_human, render_json, render_rule_list


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="determinism & concurrency static analysis for this repo",
    )
    parser.add_argument("paths", nargs="*", type=Path, help="files or directories to lint")
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        help="print the rationale for one rule code and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list rule codes and exit",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print pragma-suppressed findings (human format)",
    )
    parser.add_argument(
        "--show-unused-pragmas",
        action="store_true",
        help="list allow[...] pragmas that no longer suppress any finding "
        "and exit non-zero if any exist (CI keeps src/ free of them)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_list())
        return 0
    if args.explain:
        try:
            print(render_explanation(args.explain))
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        return 0
    if not args.paths:
        parser.error("no paths given (or use --explain/--list-rules)")

    checkers = ALL_CHECKERS
    if args.select:
        wanted = {code.strip() for code in args.select.split(",") if code.strip()}
        known = {c.code for c in ALL_CHECKERS}
        unknown = wanted - known
        if unknown:
            parser.error(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        checkers = [c for c in ALL_CHECKERS if c.code in wanted]

    missing: List[Path] = [p for p in args.paths if not p.exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(str(p) for p in missing)}")

    result = lint_paths(args.paths, checkers)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_human(result, show_suppressed=args.show_suppressed,
                           show_unused_pragmas=args.show_unused_pragmas))
    if not result.ok:
        return 1
    if args.show_unused_pragmas and result.unused_pragmas:
        return 1
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # downstream pager/head closed the pipe; not a lint failure
        raise SystemExit(0)
