"""``repro.lint``: determinism & concurrency static analysis.

The repo's central correctness invariant — byte-identical campaign
fingerprints and bit-identical solves across every
(scheduler x placement x clock) runtime cell — is enforced dynamically
by the equivalence suites.  This package enforces the *hazard patterns*
behind most violations statically, at lint time:

========================  ==============================================
code                      what it catches
========================  ==============================================
``wall-clock``            reading the wall clock outside the sanctioned
                          measurement modules (simulated-clock code must
                          never observe real time)
``unseeded-rng``          RNG streams not derived from the campaign's
                          ``SeedSequence`` tree via
                          :func:`repro.faults.injector.derive_rng`
``unordered-iter``        iteration whose order the runtime does not
                          guarantee (sets, unsorted directory listings)
                          inside fingerprint-critical modules
``paged-reduction``       raw NumPy reductions in solver/kernel modules
                          that bypass the page-ordered ``paged_dot`` path
``lock-discipline``       lock-order cycles (potential deadlock) and
                          bare ``.acquire()`` without ``with``/finally
========================  ==============================================

Findings are suppressible only via justified inline pragmas::

    t0 = time.perf_counter()  # repro-lint: allow[wall-clock] measured wall interval, not a clock decision

Run it with ``python -m repro.lint src/ tests/``; ``--explain CODE``
documents each rule, ``--format json`` emits machine-readable findings.

The dynamic counterpart for *executed* task graphs is
:func:`repro.runtime.graph.verify_graph` — a structural happens-before
check (set ``REPRO_VERIFY_GRAPHS=1`` to run it inside both execution
backends).
"""

from repro.lint.engine import FileContext, LintResult, lint_paths, lint_source
from repro.lint.findings import Finding
from repro.lint.pragmas import PragmaSheet
from repro.lint.checkers import ALL_CHECKERS, checker_for_code

__all__ = [
    "ALL_CHECKERS",
    "FileContext",
    "Finding",
    "LintResult",
    "PragmaSheet",
    "checker_for_code",
    "lint_paths",
    "lint_source",
]
