"""lock-discipline: lock-order cycles and bare ``.acquire()`` calls.

The lock-graph analysis is deliberately simple and static:

* lock objects are discovered from assignments whose value constructs a
  ``threading`` primitive (including dataclass
  ``field(default_factory=threading.Condition)``), keyed as
  ``ClassName.attr`` (or a bare name for module/function locals);
* per function, ``with`` statements record acquisition order — holding
  A while entering ``with B`` adds the edge A -> B;
* one level of interprocedural propagation: calling ``self.meth()`` (or a
  same-module function, or a method defined by exactly one class in the
  module) while holding A adds edges from A to every lock the callee may
  acquire (computed to a fixpoint);
* a cycle in the resulting digraph is a potential deadlock and is
  reported once per cycle with the contributing edges.
"""

from __future__ import annotations

import ast
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.base import Checker, FileContext
from repro.lint.findings import Finding

LOCK_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        # sanitizer-aware factories (repro.sanitize) — the threaded
        # modules construct locks through these (the sanitizer-factory
        # rule enforces it), and the lock-graph must keep seeing them.
        "repro.sanitize.make_lock",
        "repro.sanitize.make_rlock",
        "repro.sanitize.make_condition",
        "repro.sanitize.instrument.make_lock",
        "repro.sanitize.instrument.make_rlock",
        "repro.sanitize.instrument.make_condition",
    }
)

#: Modules holding the repo's thread coordination; only these get the
#: lock-graph pass (bare-acquire is checked everywhere).
LOCK_GRAPH_MODULES = (
    "repro/runtime/async_exec.py",
    "repro/distributed/ranks.py",
    "repro/service/server.py",
)


@dataclass(frozen=True)
class LockEdge:
    held: str
    acquired: str
    line: int
    col: int
    function: str


class _FunctionInfo:
    def __init__(self, qualname: str) -> None:
        self.qualname = qualname
        self.direct_acquires: Set[str] = set()
        self.edges: List[LockEdge] = []
        # (held locks at the call site, callee key, line)
        self.calls: List[Tuple[Tuple[str, ...], str, int]] = []


class LockChecker(Checker):
    code = "lock-discipline"
    title = "no lock-order cycles; no bare .acquire() outside with/try-finally"
    rationale = """\
The threaded backend, the rank runtime, and the campaign daemon each
coordinate with several locks.  Two static hazards:

  * lock-order cycles — if one code path acquires A then B and another
    acquires B then A, the two can deadlock; the checker extracts each
    function's `with` acquisition order (following same-module calls),
    builds the lock graph over runtime/async_exec.py,
    distributed/ranks.py, and service/server.py, and flags every cycle;
  * bare `.acquire()` — an acquire not paired with release in a
    `with` statement or an immediately-following try/finally leaks the
    lock on any exception, hanging every other thread.  (Checked in all
    files, not just the lock-graph modules.)

Fix cycles by choosing one global order (document it next to the lock
definitions); fix bare acquires with `with lock:` or try/finally.  A
justified exception (e.g. handoff protocols where release happens on
another thread) takes a pragma:

    self._baton.acquire()  # repro-lint: allow[lock-discipline] released by the worker that takes the baton"""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        yield from self._check_bare_acquire(ctx)
        if ctx.module_is(*LOCK_GRAPH_MODULES):
            yield from self._check_lock_graph(ctx)

    # ------------------------------------------------------------------
    # bare .acquire()
    # ------------------------------------------------------------------

    def _check_bare_acquire(self, ctx: FileContext) -> Iterable[Finding]:
        for call in ast.walk(ctx.tree):
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "acquire"
            ):
                continue
            receiver = _expr_text(call.func.value)
            if not self._acquire_is_guarded(ctx, call, receiver):
                yield ctx.finding(
                    call,
                    self.code,
                    f"bare `{receiver}.acquire()` outside `with`/try-finally; an "
                    "exception between acquire and release leaks the lock — use "
                    "`with` or pair with try/finally release",
                )

    @staticmethod
    def _acquire_is_guarded(ctx: FileContext, call: ast.Call, receiver: str) -> bool:
        def releases(try_node: ast.Try) -> bool:
            for fin in try_node.finalbody:
                for node in ast.walk(fin):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "release"
                        and _expr_text(node.func.value) == receiver
                    ):
                        return True
            return False

        # nearest enclosing statement of the acquire call
        stmt: Optional[ast.AST] = call
        while stmt is not None and not isinstance(stmt, ast.stmt):
            stmt = ctx.parent(stmt)
        # guarded if any enclosing try (within the same function) releases
        # the same receiver in its finally block
        node = stmt
        while node is not None and not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
        ):
            if isinstance(node, ast.Try) and releases(node):
                return True
            node = ctx.parent(node)
        # guarded if the statement right after the acquire is such a try
        parent = ctx.parent(stmt) if stmt is not None else None
        if parent is not None:
            for _, value in ast.iter_fields(parent):
                if isinstance(value, list) and stmt in value:
                    idx = value.index(stmt)
                    if (
                        idx + 1 < len(value)
                        and isinstance(value[idx + 1], ast.Try)
                        and releases(value[idx + 1])
                    ):
                        return True
        return False

    # ------------------------------------------------------------------
    # lock graph
    # ------------------------------------------------------------------

    def _check_lock_graph(self, ctx: FileContext) -> Iterable[Finding]:
        decl_class: Dict[str, Set[str]] = defaultdict(set)  # attr -> classes declaring it
        self._discover_locks(ctx, decl_class)

        functions: Dict[str, _FunctionInfo] = {}
        methods_by_name: Dict[str, Set[str]] = defaultdict(set)  # meth -> {Class.meth}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qual = f"{node.name}.{item.name}"
                        info = _FunctionInfo(qual)
                        self._analyse_function(item, node.name, decl_class, info)
                        functions[qual] = info
                        methods_by_name[item.name].add(qual)
        for node in getattr(ctx.tree, "body", []):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = _FunctionInfo(node.name)
                self._analyse_function(node, None, decl_class, info)
                functions[node.name] = info

        # fixpoint: the set of locks each function may (transitively) acquire
        acquires: Dict[str, Set[str]] = {
            name: set(info.direct_acquires) for name, info in functions.items()
        }
        changed = True
        while changed:
            changed = False
            for name, info in functions.items():
                for _, callee_name, _ in info.calls:
                    for callee in _resolve_callees(callee_name, name, functions, methods_by_name):
                        before = len(acquires[name])
                        acquires[name] |= acquires[callee]
                        if len(acquires[name]) != before:
                            changed = True

        edges: Dict[Tuple[str, str], LockEdge] = {}
        for info in functions.values():
            for edge in info.edges:
                edges.setdefault((edge.held, edge.acquired), edge)
            for held, callee_name, line in info.calls:
                if not held:
                    continue
                for callee in _resolve_callees(callee_name, info.qualname, functions, methods_by_name):
                    for acquired in acquires[callee]:
                        for h in held:
                            if h == acquired:
                                continue
                            edges.setdefault(
                                (h, acquired),
                                LockEdge(h, acquired, line, 0, info.qualname),
                            )

        for cycle in _find_cycles({k for k in edges}):
            cycle_edges = [
                edges[(cycle[i], cycle[(i + 1) % len(cycle)])] for i in range(len(cycle))
            ]
            first = min(cycle_edges, key=lambda e: e.line)
            order = " -> ".join(cycle + (cycle[0],))
            yield Finding(
                path=ctx.path,
                line=first.line,
                col=first.col,
                code=self.code,
                message=f"lock-order cycle {order}; two threads taking these locks in "
                "different orders can deadlock — pick one global order",
                related=tuple(
                    f"{e.held} -> {e.acquired} in {e.function} (line {e.line})"
                    for e in cycle_edges
                ),
            )

    def _discover_locks(self, ctx: FileContext, decl_class: Dict[str, Set[str]]) -> None:
        def handle_assign(target: ast.expr, value: ast.expr, cls: Optional[str]) -> None:
            if not _constructs_lock(value, ctx):
                return
            if isinstance(target, ast.Attribute):
                decl_class[target.attr].add(cls or "<module>")
            elif isinstance(target, ast.Name):
                decl_class[target.id].add(cls or "<module>")

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                cls: Optional[str] = node.name
                scope: Iterable[ast.AST] = ast.walk(node)
            else:
                continue
            for sub in scope:
                if isinstance(sub, ast.Assign):
                    for tgt in sub.targets:
                        handle_assign(tgt, sub.value, cls)
                elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                    handle_assign(sub.target, sub.value, cls)
        # module/function-level locks outside any class
        class_spans = [n for n in ast.walk(ctx.tree) if isinstance(n, ast.ClassDef)]

        def in_class(node: ast.AST) -> bool:
            return any(
                hasattr(c, "lineno")
                and c.lineno <= getattr(node, "lineno", 0) <= (c.end_lineno or c.lineno)
                for c in class_spans
            )

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and not in_class(node):
                for tgt in node.targets:
                    handle_assign(tgt, node.value, None)
            elif isinstance(node, ast.AnnAssign) and node.value is not None and not in_class(node):
                handle_assign(node.target, node.value, None)

    def _analyse_function(
        self,
        func: ast.AST,
        cls: Optional[str],
        decl_class: Dict[str, Set[str]],
        info: _FunctionInfo,
    ) -> None:
        def identify(expr: ast.expr) -> Optional[str]:
            if isinstance(expr, ast.Attribute):
                attr = expr.attr
                owners = decl_class.get(attr)
                if not owners:
                    return None
                if (
                    isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and cls in owners
                ):
                    return f"{cls}.{attr}"
                if len(owners) == 1:
                    return f"{next(iter(owners))}.{attr}"
                return attr  # ambiguous receiver: merge conservatively
            if isinstance(expr, ast.Name) and decl_class.get(expr.id):
                return f"<local>.{expr.id}"
            return None

        def walk(node: ast.AST, held: Tuple[str, ...]) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    lock_id = identify(item.context_expr)
                    if lock_id is not None:
                        info.direct_acquires.add(lock_id)
                        for h in held:
                            if h != lock_id:
                                info.edges.append(
                                    LockEdge(
                                        h,
                                        lock_id,
                                        item.context_expr.lineno,
                                        item.context_expr.col_offset,
                                        info.qualname,
                                    )
                                )
                        held = held + (lock_id,)
                for child in node.body:
                    walk(child, held)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
                # nested defs run later, with no locks held at def site
                for child in node.body:
                    walk(child, ())
                return
            if isinstance(node, ast.Call):
                callee = _call_key(node)
                if callee is not None:
                    info.calls.append((held, callee, node.lineno))
            for child in ast.iter_child_nodes(node):
                walk(child, held)

        for stmt in func.body:
            walk(stmt, ())


def _constructs_lock(value: ast.expr, ctx: FileContext) -> bool:
    for node in ast.walk(value):
        if isinstance(node, ast.Call):
            qualified = ctx.imports.resolve_call(node)
            if qualified in LOCK_FACTORIES:
                return True
            # dataclasses.field(default_factory=threading.Condition)
            for kw in node.keywords:
                if kw.arg == "default_factory" and ctx.imports.resolve(kw.value) in LOCK_FACTORIES:
                    return True
    return False


def _call_key(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        if isinstance(node.func.value, ast.Name) and node.func.value.id == "self":
            return f"self.{node.func.attr}"
        return f".{node.func.attr}"
    return None


def _resolve_callees(
    callee_key: str,
    caller_qualname: str,
    functions: Dict[str, _FunctionInfo],
    methods_by_name: Dict[str, Set[str]],
) -> List[str]:
    if callee_key.startswith("self."):
        meth = callee_key[5:]
        cls = caller_qualname.split(".")[0] if "." in caller_qualname else None
        if cls is not None and f"{cls}.{meth}" in functions:
            return [f"{cls}.{meth}"]
        return []
    if callee_key.startswith("."):
        meth = callee_key[1:]
        owners = methods_by_name.get(meth, set())
        # only follow unambiguous cross-class method calls
        if len(owners) == 1:
            return list(owners)
        return []
    if callee_key in functions:
        return [callee_key]
    return []


def _find_cycles(edges: Set[Tuple[str, str]]) -> List[Tuple[str, ...]]:
    """Return elementary cycles as node tuples (rotation-normalised)."""
    graph: Dict[str, List[str]] = defaultdict(list)
    for a, b in sorted(edges):
        graph[a].append(b)
    cycles: Set[Tuple[str, ...]] = set()

    def dfs(start: str, node: str, path: List[str], on_path: Set[str]) -> None:
        for nxt in graph.get(node, ()):  # sorted at insertion
            if nxt == start:
                rotation = min(range(len(path)), key=lambda i: path[i])
                cycles.add(tuple(path[rotation:] + path[:rotation]))
            elif nxt not in on_path and nxt > start:
                # enumerate each cycle once from its smallest node
                path.append(nxt)
                on_path.add(nxt)
                dfs(start, nxt, path, on_path)
                on_path.discard(nxt)
                path.pop()

    for node in sorted(graph):
        dfs(node, node, [node], {node})
    return sorted(cycles)


def _expr_text(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on valid trees
        return "<expr>"
