"""unordered-iter: order-unstable iteration in fingerprint-critical modules."""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.base import Checker, FileContext
from repro.lint.findings import Finding

#: Modules whose iteration order feeds content tokens, store keys, or
#: aggregated fingerprints.  Everywhere else, iteration order is a local
#: concern and the rule stays quiet.
FINGERPRINT_MODULES = (
    "repro/campaign/results.py",
    "repro/campaign/store.py",
    "repro/campaign/spec.py",
    "repro/service/protocol.py",
)

#: Callables returning filesystem listings in OS-dependent order.
FS_LISTING_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)
#: pathlib methods with the same problem (matched by attribute name since
#: the receiver's type is not statically known).
FS_LISTING_METHODS = frozenset({"glob", "rglob", "iterdir"})


def _iteration_sites(tree: ast.AST) -> Iterator[ast.AST]:
    """Expressions whose iteration order is observed."""
    for node in ast.walk(tree):
        if isinstance(node, ast.For):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitAnd, ast.BitOr, ast.Sub)):
        # set algebra: `a | b`, `a & b`, `a - b` over sets is the common case
        # in these modules; only flag when one side is syntactically a set.
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class OrderingChecker(Checker):
    code = "unordered-iter"
    title = "no order-unstable iteration in fingerprint-critical modules"
    rationale = """\
Campaign fingerprints hash an ordered stream of content tokens, and the
content-addressed store derives keys from serialized specs.  In the
modules that build those streams (campaign/results.py, campaign/store.py,
campaign/spec.py, service/protocol.py) any iteration whose order the
runtime does not guarantee can silently reorder tokens:

  * iterating a set or set-expression (hash-order, salted per process);
  * iterating os.listdir / glob / Path.glob / iterdir results
    (filesystem-order, differs across OSes and even runs);
  * iterating `d.keys()` without sorted() — explicit `.keys()` at an
    iteration site signals the author cares about key order, so make
    that order deterministic;
  * json.dumps without sort_keys=True (insertion-order keys).

Fix by sorting at the iteration site (`sorted(...)`) or serializing with
`sort_keys=True`.  Plain dict iteration is allowed (insertion order is
defined); the rule flags the patterns with no *guaranteed* stable order.
If order provably cannot reach a fingerprint, say why:

    for p in tmp.glob("*.part"):  # repro-lint: allow[unordered-iter] files are deleted, never hashed"""

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module_is(*FINGERPRINT_MODULES)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for site in _iteration_sites(ctx.tree):
            if _is_set_expr(site):
                yield ctx.finding(
                    site,
                    self.code,
                    "iterating a set in a fingerprint-critical module; hash order is "
                    "salted per process — wrap in `sorted(...)`",
                )
            elif (
                isinstance(site, ast.Call)
                and isinstance(site.func, ast.Attribute)
                and site.func.attr == "keys"
                and not site.args
                and not site.keywords
            ):
                yield ctx.finding(
                    site,
                    self.code,
                    "iterating `.keys()` unsorted in a fingerprint-critical module; "
                    "use `sorted(d)` to pin the key order",
                )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.imports.resolve_call(node)
            if qualified == "json.dumps":
                if not any(
                    kw.arg == "sort_keys"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in node.keywords
                ):
                    yield ctx.finding(
                        node,
                        self.code,
                        "`json.dumps` without `sort_keys=True` in a fingerprint-critical "
                        "module; key order would leak insertion order into hashed bytes",
                    )
                continue
            is_listing = qualified in FS_LISTING_CALLS or (
                qualified is None
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in FS_LISTING_METHODS
            )
            if is_listing and not self._directly_sorted(ctx, node):
                name = qualified or node.func.attr + "(...)"
                yield ctx.finding(
                    node,
                    self.code,
                    f"unsorted filesystem listing `{name}` in a fingerprint-critical "
                    "module; directory order is OS-dependent — wrap in `sorted(...)`",
                )

    @staticmethod
    def _directly_sorted(ctx: FileContext, node: ast.Call) -> bool:
        parent = ctx.parent(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id == "sorted"
        )
