"""sanitizer-factory: threaded modules must construct synchronisation
primitives through ``repro.sanitize``.

The concurrency sanitizer can only observe what flows through its
instrumented wrappers.  A raw ``threading.Lock()`` in the threaded
backend, the rank runtime or the campaign daemon is invisible to the
race detector and to the schedule explorer's preemption points, so a
``REPRO_TSAN=1`` run would silently report partial coverage.  This rule
keeps coverage total by flagging direct construction of stdlib
primitives in those modules.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.base import Checker, FileContext
from repro.lint.findings import Finding

#: stdlib constructor -> the sanitizer-aware factory that replaces it.
FACTORY_FOR = {
    "threading.Lock": "repro.sanitize.make_lock",
    "threading.RLock": "repro.sanitize.make_rlock",
    "threading.Condition": "repro.sanitize.make_condition",
    "threading.Event": "repro.sanitize.make_event",
    "threading.Semaphore": "repro.sanitize.make_lock",
    "threading.BoundedSemaphore": "repro.sanitize.make_lock",
    "queue.Queue": "repro.sanitize.make_queue",
    "queue.LifoQueue": "repro.sanitize.make_queue",
    "queue.PriorityQueue": "repro.sanitize.make_queue",
}

#: Modules whose thread coordination the sanitizer must see in full —
#: the same set the lock-graph pass covers.
THREADED_MODULES = (
    "repro/runtime/async_exec.py",
    "repro/distributed/ranks.py",
    "repro/service/server.py",
)


class SanitizeFactoryChecker(Checker):
    code = "sanitizer-factory"
    title = "threaded modules construct locks/queues via repro.sanitize factories"
    rationale = """\
The race detector (`REPRO_TSAN=1`) and the schedule explorer
(`python -m repro.sanitize explore`) only see synchronisation that goes
through the instrumented factories — `make_lock`, `make_rlock`,
`make_condition`, `make_event`, `make_queue`.  A primitive built
directly from `threading`/`queue` in one of the threaded modules
(runtime/async_exec.py, distributed/ranks.py, service/server.py)
creates a blind spot: the lock still synchronises at runtime, but the
detector never learns the happens-before edges it creates, so real
orderings get misreported as races (or real races stay hidden behind
phantom ones).  With the sanitizer off the factories return the raw
stdlib objects, so there is no cost to routing through them.

Fix by swapping the constructor for its factory (same call shape;
`field(default_factory=threading.Event)` becomes
`field(default_factory=make_event)`).  Primitives that deliberately
bypass instrumentation — e.g. the event log's own internal lock, which
must not record into itself — live outside these modules; if one truly
belongs here, say why:

    self._baton = threading.Lock()  # repro-lint: allow[sanitizer-factory] bootstrap lock guarding the sanitizer's own state"""

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module_is(*THREADED_MODULES)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.imports.resolve_call(node)
            if qualified in FACTORY_FOR:
                yield ctx.finding(
                    node,
                    self.code,
                    f"raw `{qualified}()` in a threaded module is invisible to "
                    f"the sanitizer — construct it via "
                    f"`{FACTORY_FOR[qualified]}` (returns the raw primitive "
                    "when REPRO_TSAN is off)",
                )
                continue
            # dataclasses.field(default_factory=threading.Event)
            for kw in node.keywords:
                if kw.arg != "default_factory":
                    continue
                factory = ctx.imports.resolve(kw.value)
                if factory in FACTORY_FOR:
                    yield ctx.finding(
                        kw.value,
                        self.code,
                        f"raw `default_factory={factory}` in a threaded "
                        f"module is invisible to the sanitizer — use "
                        f"`{FACTORY_FOR[factory]}`",
                    )
