"""unseeded-rng: all randomness must flow from the SeedSequence tree."""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.base import Checker, FileContext
from repro.lint.findings import Finding

#: Legacy numpy global-state API: both the implicit global RandomState
#: draws and the global seed/set_state mutators.
LEGACY_NP_RANDOM = frozenset(
    {
        "seed",
        "get_state",
        "set_state",
        "rand",
        "randn",
        "randint",
        "random_integers",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "bytes",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "standard_normal",
        "uniform",
        "exponential",
        "poisson",
        "binomial",
        "beta",
        "gamma",
        "lognormal",
        "laplace",
    }
)

#: The one module allowed to call ``np.random.default_rng`` directly: it
#: defines ``derive_rng``, the sanctioned construction point.
RNG_FACTORY_MODULES = ("repro/faults/injector.py",)


def _is_none_or_missing(call: ast.Call) -> bool:
    if call.keywords:
        return False
    if not call.args:
        return True
    return len(call.args) == 1 and isinstance(call.args[0], ast.Constant) and call.args[0].value is None


class RngChecker(Checker):
    code = "unseeded-rng"
    title = "RNG streams must derive from SeedSequence via faults.injector.derive_rng"
    rationale = """\
Campaign reproducibility rests on a single SeedSequence tree: the
campaign seed spawns per-trial sequences, which spawn per-component
streams.  Three patterns break that chain:

  * np.random.default_rng() with no argument — entropy from the OS, a
    different stream every run;
  * legacy global-state calls (np.random.seed / .normal / .shuffle ...)
    — one hidden global stream, order-dependent across threads and
    call sites;
  * the stdlib `random` module — another hidden global stream.

Library code under src/repro must construct generators through
repro.faults.injector.derive_rng(seed), which accepts ints, SeedSequence,
or an existing Generator and is the only sanctioned default_rng call
site.  Tests may call np.random.default_rng(seed) directly when seeded.
Deliberate global-state perturbation in a test fixture needs a pragma:

    # repro-lint: allow[unseeded-rng] deliberately perturb global state to prove independence
    np.random.seed(0)"""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        yield from self._check_random_module(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.imports.resolve_call(node)
            if qualified is None:
                continue
            if qualified == "numpy.random.default_rng":
                if _is_none_or_missing(node):
                    yield ctx.finding(
                        node,
                        self.code,
                        "unseeded `np.random.default_rng()` draws OS entropy; derive the "
                        "stream from the campaign SeedSequence via "
                        "`repro.faults.injector.derive_rng`",
                    )
                elif not ctx.is_relaxed and not ctx.module_is(*RNG_FACTORY_MODULES):
                    yield ctx.finding(
                        node,
                        self.code,
                        "direct `np.random.default_rng(seed)` in library code; route "
                        "through `repro.faults.injector.derive_rng` so all streams share "
                        "one construction point",
                    )
            elif qualified == "numpy.random.RandomState":
                yield ctx.finding(
                    node,
                    self.code,
                    "legacy `np.random.RandomState`; use "
                    "`repro.faults.injector.derive_rng` (PCG64 Generator) instead",
                )
            else:
                parts = qualified.split(".")
                if (
                    len(parts) == 3
                    and parts[0] == "numpy"
                    and parts[1] == "random"
                    and parts[2] in LEGACY_NP_RANDOM
                ):
                    yield ctx.finding(
                        node,
                        self.code,
                        f"legacy global-state `np.random.{parts[2]}()` call; global RNG "
                        "state is order-dependent across threads — derive an explicit "
                        "Generator via `repro.faults.injector.derive_rng`",
                    )

    def _check_random_module(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield ctx.finding(
                            node,
                            self.code,
                            "stdlib `random` module uses hidden global state; derive a "
                            "numpy Generator via `repro.faults.injector.derive_rng`",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    yield ctx.finding(
                        node,
                        self.code,
                        "stdlib `random` module uses hidden global state; derive a "
                        "numpy Generator via `repro.faults.injector.derive_rng`",
                    )
