"""paged-reduction: raw NumPy reductions bypass the page-ordered path."""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.base import Checker, FileContext
from repro.lint.findings import Finding

#: Solver / kernel modules where every dot product and sum over solver
#: vectors must be page-ordered to keep N-rank solves bit-identical.
PAGED_MODULES = (
    "repro/solvers/resilient_cg.py",
    "repro/runtime/kernels.py",
    "repro/distributed/ranks.py",
)

RAW_REDUCTIONS = frozenset(
    {
        "numpy.dot",
        "numpy.vdot",
        "numpy.inner",
        "numpy.sum",
        "numpy.nansum",
        "numpy.einsum",
        "numpy.add.reduce",
        "numpy.matmul",
    }
)

#: ndarray method spellings of the same reductions.
RAW_REDUCTION_METHODS = frozenset({"dot", "sum"})


class ReductionChecker(Checker):
    code = "paged-reduction"
    title = "solver/kernel reductions must use the page-ordered paged_dot path"
    rationale = """\
Floating-point addition is not associative: `np.dot(u, v)` over a whole
vector and a per-page partial sum of the same vector differ in the last
ulps, and *which* order runs depends on how many ranks own the vector.
The repo's bit-identical N-rank guarantee therefore requires every
reduction over solver vectors in the solver/kernel modules
(solvers/resilient_cg.py, runtime/kernels.py, distributed/ranks.py) to
go through repro.runtime.kernels.paged_dot / page_partials /
reduce_partials, which fix one page order and one combination tree.

Flagged: np.dot / np.sum / np.inner / np.vdot / np.einsum / np.matmul /
np.add.reduce and the `.dot()` / `.sum()` ndarray methods.  The paged
primitives themselves are implemented *with* np.add.reduce — those
definition sites carry pragmas, e.g.:

    return float(np.add.reduce(partials))  # repro-lint: allow[paged-reduction] this is the page-order primitive"""

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module_is(*PAGED_MODULES)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.imports.resolve_call(node)
            if qualified in RAW_REDUCTIONS:
                yield ctx.finding(
                    node,
                    self.code,
                    f"raw reduction `{qualified}` in a paged-reduction module; use "
                    "`paged_dot`/`page_partials`/`reduce_partials` so the combination "
                    "order is rank-count independent",
                )
            elif (
                qualified is None
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in RAW_REDUCTION_METHODS
                and len(node.args) <= 1
                and not node.keywords
            ):
                # <=1 positional arg is the ndarray spelling (u.dot(v),
                # a.sum()); the sanctioned engine.dot(u, v, skip_pages)
                # takes more and is not flagged.
                yield ctx.finding(
                    node,
                    self.code,
                    f"ndarray `.{node.func.attr}()` reduction in a paged-reduction "
                    "module; use the paged_dot path so the combination order is "
                    "rank-count independent",
                )

        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.MatMult)
                and isinstance(node.left, ast.Subscript)
                and isinstance(node.right, ast.Subscript)
            ):
                # slice @ slice is the per-page probe-dot pattern; plain
                # `A @ x` matvecs keep a fixed per-row order and are fine.
                yield ctx.finding(
                    node,
                    self.code,
                    "`slice @ slice` dot in a paged-reduction module; per-page probe "
                    "dots must use paged_dot or justify why a single-page dot's "
                    "order is already fixed",
                )
