"""wall-clock: real-time reads are forbidden outside sanctioned modules."""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.base import Checker, FileContext
from repro.lint.findings import Finding

FORBIDDEN_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Modules whose whole purpose is wall-clock interaction (the network
#: daemon and its client: socket timeouts, poll loops, request deadlines).
#: Measurement paths elsewhere (campaign wall_time, threaded-backend
#: latency probes) instead carry per-site ``allow[wall-clock]`` pragmas so
#: each real-time read is individually justified in the source.
ALLOWLIST_MODULES = (
    "repro/service/server.py",
    "repro/service/client.py",
    "repro/service/__main__.py",
)


class WallClockChecker(Checker):
    code = "wall-clock"
    title = "no wall-clock reads outside sanctioned wall-clock modules"
    rationale = """\
Solver iterates, campaign fingerprints, and stored results must be
byte-identical across the (scheduler x placement x clock) runtime matrix.
Any code that reads the real clock — time.time(), perf_counter(),
datetime.now() — can leak wall time into decisions or persisted payloads,
breaking that invariant in ways the equivalence suites only catch after
the fact.  Deterministic code must take time from the simulated clock
(`repro.runtime`) or accept a `now=` parameter.

Exempt by module allowlist: repro/service/server.py and client.py (the
network daemon is inherently wall-clock: socket timeouts, poll loops).
Measurement-only sites (trial wall_time, thread latency probes) must be
annotated per call site:

    t0 = perf_counter()  # repro-lint: allow[wall-clock] measured wall interval, reported not fingerprinted

Tests, benchmarks, and examples are exempt wholesale."""

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.is_relaxed:
            return False
        return not ctx.module_is(*ALLOWLIST_MODULES)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.imports.resolve_call(node)
            if qualified in FORBIDDEN_CALLS:
                yield ctx.finding(
                    node,
                    self.code,
                    f"wall-clock read `{qualified}()` outside the wall-clock module "
                    "allowlist; use the simulated clock, accept `now=`, or justify "
                    "with `# repro-lint: allow[wall-clock] <reason>`",
                )
