"""Checker registry."""

from __future__ import annotations

from typing import List, Optional

from repro.lint.base import Checker
from repro.lint.checkers.locks import LockChecker
from repro.lint.checkers.ordering import OrderingChecker
from repro.lint.checkers.reductions import ReductionChecker
from repro.lint.checkers.rng import RngChecker
from repro.lint.checkers.sanitize import SanitizeFactoryChecker
from repro.lint.checkers.wall_clock import WallClockChecker

ALL_CHECKERS: List[Checker] = [
    WallClockChecker(),
    RngChecker(),
    OrderingChecker(),
    ReductionChecker(),
    LockChecker(),
    SanitizeFactoryChecker(),
]


def checker_for_code(code: str) -> Optional[Checker]:
    for checker in ALL_CHECKERS:
        if checker.code == code:
            return checker
    return None


__all__ = [
    "ALL_CHECKERS",
    "LockChecker",
    "OrderingChecker",
    "ReductionChecker",
    "RngChecker",
    "SanitizeFactoryChecker",
    "WallClockChecker",
    "checker_for_code",
]
