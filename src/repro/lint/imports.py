"""Import-alias resolution for qualified-name matching.

Checkers match fully-qualified dotted names (``numpy.random.default_rng``,
``time.perf_counter``) regardless of how the module was imported::

    import numpy as np              ->  np.random.default_rng
    from time import perf_counter   ->  perf_counter()
    from numpy import random as rnd ->  rnd.seed()
"""

from __future__ import annotations

import ast
from typing import Dict, Optional


class ImportMap:
    """Maps local names to the qualified names they were imported as."""

    def __init__(self) -> None:
        self._aliases: Dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    qualified = alias.name if alias.asname else alias.name.split(".")[0]
                    imports._aliases[local] = qualified
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative import: module-local, never stdlib/numpy
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imports._aliases[local] = f"{node.module}.{alias.name}"
        return imports

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to a qualified dotted name."""
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self._aliases.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        return self.resolve(call.func)

    def imports_module(self, module: str) -> bool:
        return any(
            qualified == module or qualified.startswith(module + ".")
            for qualified in self._aliases.values()
        )
