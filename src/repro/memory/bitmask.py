"""Per-page status bitmasks.

Section 3.3.2 of the paper maintains "an atomic bitmask (e.g. an int)
per block of failure granularity, thus per memory page", where each data
vector and task output owns one bit.  Tasks check whether their inputs
were corrupted or skipped; if so, the task is skipped and its own output
bit is set, which is how skipped work propagates toward the scalar
(reduction) tasks.

In this reproduction there is no true concurrency (the runtime is a
deterministic discrete-event simulator), so a plain integer array is an
exact functional stand-in for the atomic int.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np


class Bitmask:
    """Tracks one bit per (label, page).

    Labels are arbitrary strings naming a vector or a task output, e.g.
    ``"q"`` or ``"dot:dq"``.  Bits are allocated lazily, in registration
    order, so the mask can describe any solver without prior knowledge
    of its data structures.
    """

    def __init__(self, num_pages: int, labels: Iterable[str] = ()):
        if num_pages <= 0:
            raise ValueError(f"num_pages must be positive, got {num_pages}")
        self.num_pages = int(num_pages)
        self._bits: Dict[str, int] = {}
        self._mask = np.zeros(self.num_pages, dtype=np.int64)
        for label in labels:
            self.register(label)

    # ------------------------------------------------------------------
    def register(self, label: str) -> int:
        """Allocate (or look up) the bit index for ``label``."""
        if label not in self._bits:
            bit = len(self._bits)
            if bit >= 63:
                raise ValueError("Bitmask supports at most 63 labels")
            self._bits[label] = bit
        return self._bits[label]

    @property
    def labels(self) -> List[str]:
        """Registered labels, in bit order."""
        return sorted(self._bits, key=self._bits.get)

    def _bit(self, label: str) -> int:
        if label not in self._bits:
            raise KeyError(f"label {label!r} not registered "
                           f"(known: {sorted(self._bits)})")
        return self._bits[label]

    # ------------------------------------------------------------------
    def mark(self, label: str, page: int) -> None:
        """Set the bit for ``label`` on ``page`` (data lost / task skipped)."""
        self._check_page(page)
        self._mask[page] |= np.int64(1 << self._bit(label))

    def clear(self, label: str, page: int) -> None:
        """Clear the bit for ``label`` on ``page`` (data recovered)."""
        self._check_page(page)
        self._mask[page] &= np.int64(~(1 << self._bit(label)))

    def clear_all(self, label: str) -> None:
        """Clear ``label``'s bit on every page."""
        self._mask &= np.int64(~(1 << self._bit(label)))

    def is_marked(self, label: str, page: int) -> bool:
        """True if ``label`` is flagged on ``page``."""
        self._check_page(page)
        return bool(self._mask[page] & np.int64(1 << self._bit(label)))

    def any_marked(self, label: str) -> bool:
        """True if ``label`` is flagged on any page."""
        return bool(np.any(self._mask & np.int64(1 << self._bit(label))))

    def marked_pages(self, label: str) -> List[int]:
        """Pages on which ``label`` is flagged."""
        bit = np.int64(1 << self._bit(label))
        return [int(p) for p in np.nonzero(self._mask & bit)[0]]

    def pages_with_any(self, labels: Iterable[str]) -> List[int]:
        """Pages on which at least one of ``labels`` is flagged."""
        combined = np.int64(0)
        for label in labels:
            combined |= np.int64(1 << self._bit(label))
        return [int(p) for p in np.nonzero(self._mask & combined)[0]]

    def snapshot(self) -> List[Tuple[str, int]]:
        """All (label, page) pairs currently flagged, for reporting."""
        out: List[Tuple[str, int]] = []
        for label in self.labels:
            for page in self.marked_pages(label):
                out.append((label, page))
        return out

    def reset(self) -> None:
        """Clear every bit on every page."""
        self._mask[:] = 0

    # ------------------------------------------------------------------
    def _check_page(self, page: int) -> None:
        if not 0 <= page < self.num_pages:
            raise IndexError(
                f"page {page} out of range [0, {self.num_pages})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flagged = sum(1 for v in self._mask if v)
        return (f"Bitmask(pages={self.num_pages}, labels={len(self._bits)}, "
                f"flagged_pages={flagged})")
