"""Memory manager: the OS/runtime layer of the paper's error model.

Responsibilities reproduced from Sections 2.1 and 5.3 of the paper:

* hold the registry of protected (dynamic) vectors,
* *poison* a page when the fault injector fires (the DUE itself — data is
  gone, but nothing is signalled yet),
* *detect* the fault when a poisoned page is accessed: retire the page,
  re-map a blank page at the same "address" (zero the contents), record a
  :class:`~repro.memory.events.PageFaultEvent`, and mark the page as lost
  so a recovery method can repair it,
* expose per-vector poison/lost state to the solver kernels so they can
  skip contributions (Section 3.3.2).

Constant data (matrix, right-hand side, preconditioner) is assumed to be
reloadable from a reliable backing store, exactly as the paper assumes,
so it is never registered here.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.memory.events import FaultLog, PageFaultEvent, PageState
from repro.memory.pages import PagedVector


class MemoryManager:
    """Registry and fault bookkeeping for protected paged vectors."""

    def __init__(self) -> None:
        self._vectors: Dict[str, PagedVector] = {}
        self._state: Dict[str, List[PageState]] = {}
        self._pending: Dict[Tuple[str, int], PageFaultEvent] = {}
        self.log = FaultLog()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, vector: PagedVector) -> PagedVector:
        """Register a protected vector (must have a unique, non-empty name)."""
        if not vector.name:
            raise ValueError("protected vectors must be named")
        if vector.name in self._vectors:
            raise ValueError(f"vector {vector.name!r} already registered")
        self._vectors[vector.name] = vector
        self._state[vector.name] = [PageState.VALID] * vector.num_pages
        return vector

    def unregister(self, name: str) -> None:
        """Remove a vector from protection (e.g. temporary buffers)."""
        self._vectors.pop(name, None)
        self._state.pop(name, None)
        self._pending = {k: v for k, v in self._pending.items() if k[0] != name}

    def vector(self, name: str) -> PagedVector:
        """Look up a registered vector by name."""
        try:
            return self._vectors[name]
        except KeyError:
            raise KeyError(f"no protected vector named {name!r} "
                           f"(known: {sorted(self._vectors)})") from None

    @property
    def vector_names(self) -> List[str]:
        """Names of all registered vectors, in registration order."""
        return list(self._vectors)

    def total_pages(self) -> int:
        """Total number of protected pages across all vectors."""
        return sum(v.num_pages for v in self._vectors.values())

    def page_universe(self) -> List[Tuple[str, int]]:
        """Every (vector, page) pair that a DUE could hit."""
        out: List[Tuple[str, int]] = []
        for name, vec in self._vectors.items():
            out.extend((name, p) for p in range(vec.num_pages))
        return out

    # ------------------------------------------------------------------
    # fault lifecycle
    # ------------------------------------------------------------------
    def poison(self, name: str, page: int, time: float = 0.0,
               iteration: Optional[int] = None) -> PageFaultEvent:
        """Inject a DUE: the page's contents are lost as of ``time``.

        Nothing is signalled to the application until the page is
        accessed (see :meth:`touch`), matching memory-scrubbing
        behaviour described in Section 3.1.
        """
        vec = self.vector(name)
        if not 0 <= page < vec.num_pages:
            raise IndexError(f"page {page} out of range for vector {name!r} "
                             f"({vec.num_pages} pages)")
        event = PageFaultEvent(vector=name, page=page, inject_time=time,
                               iteration=iteration)
        self._state[name][page] = PageState.POISONED
        self._pending[(name, page)] = event
        return event

    def touch(self, name: str, page: int, time: float) -> Optional[PageFaultEvent]:
        """Access a page; if it is poisoned, the DUE is detected now.

        Detection retires the page: a blank page is re-mapped in its
        place (contents zeroed) and the page transitions to ``LOST``.
        Returns the detection event, or ``None`` if the page was fine.
        """
        state = self.state(name, page)
        if state is PageState.POISONED:
            vec = self._vectors[name]
            vec.zero_page(page)
            event = self._pending.pop((name, page)).detected(time)
            self._state[name][page] = PageState.LOST
            self.log.record(event)
            return event
        return None

    def mark_recovered(self, name: str, page: int) -> None:
        """A recovery method has restored this page's contents."""
        if self.state(name, page) is PageState.POISONED:
            # Recovering a still-poisoned page implies it was discovered
            # through the recovery scan itself: retire it first.
            self._vectors[name].zero_page(page)
            event = self._pending.pop((name, page))
            self.log.record(event)
        self._state[name][page] = PageState.VALID

    def overwrite(self, name: str, page: int) -> None:
        """The solver fully overwrote the page; any latent poison is cured.

        This mirrors the OS hope that a poisoned page "will be freed or
        overwritten completely" before being read (Section 3.1).
        """
        self._pending.pop((name, page), None)
        self._state[name][page] = PageState.VALID

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def state(self, name: str, page: int) -> PageState:
        """Current lifecycle state of a page."""
        vec = self.vector(name)
        if not 0 <= page < vec.num_pages:
            raise IndexError(f"page {page} out of range for vector {name!r}")
        return self._state[name][page]

    def is_available(self, name: str, page: int) -> bool:
        """True if the page currently holds valid data."""
        return self.state(name, page) is PageState.VALID

    def lost_pages(self, name: Optional[str] = None) -> List[Tuple[str, int]]:
        """(vector, page) pairs in POISONED or LOST state."""
        names: Iterable[str] = [name] if name is not None else self._vectors
        out: List[Tuple[str, int]] = []
        for vname in names:
            states = self._state[vname]
            out.extend((vname, p) for p, s in enumerate(states)
                       if s is not PageState.VALID)
        return out

    def has_faults(self) -> bool:
        """True if any protected page is currently poisoned or lost."""
        return any(s is not PageState.VALID
                   for states in self._state.values() for s in states)

    def fault_count(self) -> int:
        """Total detected faults so far."""
        return self.log.count()

    def reset_faults(self) -> None:
        """Forget all fault state (contents are left as-is)."""
        for name in self._state:
            self._state[name] = [PageState.VALID] * self._vectors[name].num_pages
        self._pending.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MemoryManager(vectors={len(self._vectors)}, "
                f"pages={self.total_pages()}, faults={self.fault_count()})")
