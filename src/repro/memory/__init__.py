"""Software-paged memory substrate.

The paper relies on hardware/OS machinery (ECC + machine-check exceptions
+ SIGBUS + ``mmap``) to (a) report that a 4 KiB page was lost and
(b) hand the application a fresh blank page at the same virtual address.
This package reproduces that *contract* in pure Python:

* :class:`~repro.memory.pages.PagedVector` partitions a ``float64``
  vector into pages of 512 values.
* :class:`~repro.memory.bitmask.Bitmask` tracks per-page status flags,
  mirroring the atomic bitmask protocol of Section 3.3.2.
* :class:`~repro.memory.manager.MemoryManager` registers vectors,
  poisons pages (the injected DUE), retires and re-maps them (blank
  replacement page) and records fault events.
"""

from repro.memory.bitmask import Bitmask
from repro.memory.events import PageFaultEvent, PageState
from repro.memory.manager import MemoryManager
from repro.memory.pages import PagedVector, page_count, page_of_index, page_slice

__all__ = [
    "Bitmask",
    "MemoryManager",
    "PageFaultEvent",
    "PageState",
    "PagedVector",
    "page_count",
    "page_of_index",
    "page_slice",
]
