"""Fault-event records produced by the memory manager.

These mirror the information the OS hands an application through a
SIGBUS signal after a DUE: which virtual address range (here: which
vector and page) was lost, and when.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class PageState(enum.Enum):
    """Lifecycle of a memory page under the DUE model."""

    #: Page holds valid data.
    VALID = "valid"
    #: A DUE was injected; contents are gone but the loss has not yet been
    #: discovered by an access (the page is "poisoned", Section 3.1).
    POISONED = "poisoned"
    #: The loss was discovered; the page was retired and re-mapped blank,
    #: and is waiting for a recovery method to repair its contents.
    LOST = "lost"


@dataclass(frozen=True)
class PageFaultEvent:
    """One detected-and-uncorrected error on one page of one vector.

    Attributes
    ----------
    vector:
        Name of the :class:`~repro.memory.pages.PagedVector` affected.
    page:
        Page index within that vector.
    inject_time:
        Simulated time at which the DUE occurred (page poisoned).
    detect_time:
        Simulated time at which the poisoned page was first accessed and
        the fault signalled to the application; ``None`` while latent.
    iteration:
        Solver iteration during which the fault was injected, if known.
    """

    vector: str
    page: int
    inject_time: float
    detect_time: Optional[float] = None
    iteration: Optional[int] = None

    def detected(self, time: float) -> "PageFaultEvent":
        """Return a copy stamped with its detection time."""
        return PageFaultEvent(vector=self.vector, page=self.page,
                              inject_time=self.inject_time,
                              detect_time=time, iteration=self.iteration)


@dataclass
class FaultLog:
    """Accumulates every fault event seen during a solve."""

    events: list = field(default_factory=list)

    def record(self, event: PageFaultEvent) -> None:
        self.events.append(event)

    def count(self) -> int:
        return len(self.events)

    def by_vector(self) -> dict:
        """Histogram of fault counts per vector name."""
        out: dict = {}
        for ev in self.events:
            out[ev.vector] = out.get(ev.vector, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.events)
