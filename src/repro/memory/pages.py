"""Page-blocked vectors.

Every dynamic solver vector is viewed as a sequence of memory pages of
:data:`repro.config.PAGE_DOUBLES` double-precision values.  The paper's
recovery relations (Table 1) operate on exactly these blocks, so the
block decomposition used by the solver kernels, the fault injector and
the recovery code must agree; this module is that single source of truth.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.config import PAGE_DOUBLES


def page_count(n: int, page_size: int = PAGE_DOUBLES) -> int:
    """Number of pages needed to hold ``n`` values (last page may be short)."""
    if n < 0:
        raise ValueError(f"vector length must be non-negative, got {n}")
    if page_size <= 0:
        raise ValueError(f"page size must be positive, got {page_size}")
    return -(-n // page_size)


def page_slice(page: int, n: int, page_size: int = PAGE_DOUBLES) -> slice:
    """Slice of the global index range covered by ``page``."""
    npages = page_count(n, page_size)
    if not 0 <= page < max(npages, 1):
        raise IndexError(f"page {page} out of range for {npages} pages")
    start = page * page_size
    stop = min(start + page_size, n)
    return slice(start, stop)


def page_of_index(index: int, page_size: int = PAGE_DOUBLES) -> int:
    """Page number containing global index ``index``."""
    if index < 0:
        raise IndexError(f"negative index {index}")
    return index // page_size


class PagedVector:
    """A dense ``float64`` vector partitioned into memory pages.

    The underlying storage is a contiguous NumPy array; pages are views
    into it, so page-wise kernels remain vectorised and copy-free
    (see the project coding guides on views versus copies).

    Parameters
    ----------
    data:
        Either an integer length (the vector is zero-initialised) or an
        array-like of values copied into the vector.
    name:
        Human-readable identifier used in fault reports.
    page_size:
        Values per page; defaults to the 4 KiB page of the paper.
    """

    __slots__ = ("name", "page_size", "_data", "_npages")

    def __init__(self, data, name: str = "", page_size: int = PAGE_DOUBLES):
        if page_size <= 0:
            raise ValueError(f"page size must be positive, got {page_size}")
        if isinstance(data, (int, np.integer)):
            self._data = np.zeros(int(data), dtype=np.float64)
        else:
            self._data = np.array(data, dtype=np.float64, copy=True).ravel()
        self.name = name
        self.page_size = int(page_size)
        self._npages = page_count(len(self._data), self.page_size)

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    @property
    def size(self) -> int:
        """Number of values stored."""
        return len(self._data)

    @property
    def num_pages(self) -> int:
        """Number of memory pages backing the vector."""
        return self._npages

    @property
    def array(self) -> np.ndarray:
        """The full underlying array (a view, not a copy)."""
        return self._data

    def copy(self, name: Optional[str] = None) -> "PagedVector":
        """Deep copy, optionally renamed."""
        return PagedVector(self._data, name=name if name is not None else self.name,
                           page_size=self.page_size)

    # ------------------------------------------------------------------
    # page access
    # ------------------------------------------------------------------
    def page_slice(self, page: int) -> slice:
        """Index slice covered by ``page``."""
        return page_slice(page, len(self._data), self.page_size)

    def page(self, page: int) -> np.ndarray:
        """View of the values in ``page``."""
        return self._data[self.page_slice(page)]

    def set_page(self, page: int, values) -> None:
        """Overwrite the contents of ``page``."""
        sl = self.page_slice(page)
        values = np.asarray(values, dtype=np.float64).ravel()
        expected = sl.stop - sl.start
        if values.size != expected:
            raise ValueError(
                f"page {page} of {self.name!r} holds {expected} values, "
                f"got {values.size}")
        self._data[sl] = values

    def zero_page(self, page: int) -> None:
        """Blank a page, as the OS does when re-mapping a retired page."""
        self._data[self.page_slice(page)] = 0.0

    def pages(self) -> Iterator[np.ndarray]:
        """Iterate over page views in order."""
        for p in range(self._npages):
            yield self.page(p)

    def page_indices(self, page: int) -> np.ndarray:
        """Global indices covered by ``page`` (for sparse row selection)."""
        sl = self.page_slice(page)
        return np.arange(sl.start, sl.stop)

    # ------------------------------------------------------------------
    # whole-vector operations used by solvers
    # ------------------------------------------------------------------
    def fill_from(self, other) -> None:
        """Copy values from another vector/array of the same length."""
        src = other.array if isinstance(other, PagedVector) else np.asarray(other)
        if src.size != self._data.size:
            raise ValueError(
                f"length mismatch: {self._data.size} vs {src.size}")
        np.copyto(self._data, src)

    def norm(self) -> float:
        """Euclidean norm of the full vector."""
        return float(np.linalg.norm(self._data))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PagedVector(name={self.name!r}, n={self.size}, "
                f"pages={self.num_pages}, page_size={self.page_size})")
