"""The campaign engine: expand a spec, execute trials, aggregate results.

The execution model keeps workers cheap and results deterministic:

* each worker process rebuilds its problem from the :class:`MatrixSpec`
  (matrices are never pickled across the pool) and memoises both the
  built matrix and the fault-free *ideal* baseline per
  ``(matrix, knobs)`` key, so a process touching 50 trials of the same
  cell pays for one build and one baseline solve;
* the ideal baseline is fully deterministic, so every process computes
  the exact same ``ideal_time`` and trials agree bit-for-bit no matter
  where they ran;
* per-trial randomness comes exclusively from the trial's content-keyed
  :class:`numpy.random.SeedSequence` (see ``campaign.spec``), threaded
  through :class:`~repro.faults.scenarios.ErrorScenario` into the
  injector's private Generator.

With a :class:`~repro.campaign.store.CampaignStore`, the per-process
memoisation gains a persistent second level: built matrices, baselines
and completed trials are looked up by content address before any work
happens, already-completed trials are *never dispatched at all*, and
workers persist each finished trial immediately — which is what makes
campaigns incremental, resumable after an interruption, and shardable
across machines (see ``campaign.store``).

``run_campaign`` streams results as the executor completes them into a
:class:`CampaignResult` whose aggregation is order-independent.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.campaign.executors import CampaignExecutor, SerialExecutor
from repro.campaign.results import CampaignResult, TrialResult
from repro.campaign.spec import (CampaignSpec, MatrixSpec, SolverKnobs,
                                 TrialSpec, content_hash, shard_trials)
from repro.campaign.store import CampaignStore, open_store

# ----------------------------------------------------------------------
# per-process memoisation (survives across trials within one worker)
# ----------------------------------------------------------------------
_PROBLEM_CACHE: Dict[MatrixSpec, tuple] = {}
_IDEAL_CACHE: Dict[Tuple[MatrixSpec, SolverKnobs], float] = {}


def _solver_config(knobs: SolverKnobs):
    from repro.solvers.resilient_cg import SolverConfig
    return SolverConfig(tolerance=knobs.tolerance,
                        max_iterations=knobs.max_iterations,
                        num_workers=knobs.num_workers,
                        page_size=knobs.page_size,
                        cost_model=knobs.cost_model,
                        work_scale=knobs.work_scale,
                        record_history=knobs.record_history,
                        backend=knobs.backend,
                        pace=knobs.pace,
                        ranks=knobs.ranks,
                        scheduler=knobs.scheduler,
                        placement=knobs.placement,
                        clock=knobs.clock)


def _problem(matrix: MatrixSpec,
             store: Optional[CampaignStore] = None) -> tuple:
    if matrix in _PROBLEM_CACHE:
        return _PROBLEM_CACHE[matrix]
    problem = None
    key = None
    if store is not None:
        key = content_hash(matrix.content_token())
        problem = store.get_matrix(key)
    if problem is None:
        problem = matrix.build()
        if store is not None:
            store.put_matrix(key, *problem)
    _PROBLEM_CACHE[matrix] = problem
    return problem


def _make_solver(matrix: MatrixSpec, knobs: SolverKnobs,
                 method: Optional[str], scenario,
                 store: Optional[CampaignStore] = None):
    from repro.core.manager import make_strategy
    from repro.precond.block_jacobi import BlockJacobiPreconditioner
    from repro.solvers.resilient_cg import ResilientCG
    A, b = _problem(matrix, store=store)
    strategy = None
    if method is not None:
        strategy = make_strategy(method, cost_model=knobs.cost_model,
                                 checkpoint_interval=knobs.checkpoint_interval)
    preconditioner = None
    if knobs.preconditioned:
        preconditioner = BlockJacobiPreconditioner(A,
                                                   page_size=knobs.page_size)
    return ResilientCG(A, b, strategy=strategy,
                       preconditioner=preconditioner, scenario=scenario,
                       config=_solver_config(knobs),
                       matrix_name=matrix.label)


def baseline_key(matrix: MatrixSpec, knobs: SolverKnobs) -> str:
    """Content address of the fault-free baseline of ``(matrix, knobs)``."""
    return content_hash(f"baseline/v1|{matrix.content_token()}|"
                        f"{knobs.content_token()}")


def _ideal_time(matrix: MatrixSpec, knobs: SolverKnobs,
                store: Optional[CampaignStore] = None) -> float:
    """Fault-free baseline solve time (memoised per process, then in the
    store).  The baseline is fully deterministic, so a stored value is
    bit-identical to a recomputed one (``float.hex`` round-trip)."""
    key = (matrix, knobs)
    if key in _IDEAL_CACHE:
        return _IDEAL_CACHE[key]
    skey = None
    if store is not None:
        skey = baseline_key(matrix, knobs)
        cached = store.get_baseline(skey)
        if cached is not None:
            _IDEAL_CACHE[key] = cached
            return cached
    solver = _make_solver(matrix, knobs, None, None, store=store)
    try:
        result = solver.solve()
    finally:
        solver.close()
    if not result.record.converged:
        raise RuntimeError(
            f"ideal baseline did not converge on {matrix.label} "
            f"within {knobs.max_iterations} iterations; the campaign "
            f"overheads would be meaningless")
    ideal = result.record.solve_time
    _IDEAL_CACHE[key] = ideal
    if store is not None:
        store.put_baseline(skey, ideal)
    return ideal


def run_trial(trial: TrialSpec,
              store: Optional[CampaignStore] = None) -> TrialResult:
    """Execute one campaign trial (module-level: picklable for pools)."""
    started = time.perf_counter()  # repro-lint: allow[wall-clock] trial wall_time metric, reported not fingerprinted
    ideal_time = _ideal_time(trial.matrix, trial.knobs, store=store)
    solver = _make_solver(trial.matrix, trial.knobs, trial.method,
                          trial.make_scenario(), store=store)
    try:
        result = solver.solve(ideal_time=ideal_time)
    finally:
        # The threaded backend owns real worker threads; release them so
        # a 10^4-trial campaign does not accumulate thread pools.
        solver.close()
    record = result.record
    return TrialResult(
        index=trial.index, matrix=trial.matrix.label, method=trial.method,
        rate=trial.rate, repetition=trial.repetition,
        converged=record.converged, iterations=record.iterations,
        solve_time=record.solve_time, ideal_time=ideal_time,
        final_residual=record.final_residual,
        faults_injected=record.faults_injected,
        faults_detected=record.faults_detected,
        restarts=record.restarts, rollbacks=record.rollbacks,
        pages_recovered=result.stats.pages_recovered,
        pages_unrecoverable=result.stats.pages_unrecoverable,
        wall_time=time.perf_counter() - started)  # repro-lint: allow[wall-clock] trial wall_time metric, reported not fingerprinted


class StoreTrialRunner:
    """Picklable trial runner that persists every completed trial.

    Carries only the store *root* across the pool; each worker process
    opens (and caches) its own :class:`CampaignStore` handle on first
    use.  Persisting from inside the worker — not the parent — is what
    makes interrupted campaigns resumable: a chunked campaign killed
    mid-stream has every finished trial on disk even though the parent
    never saw the chunk complete.
    """

    def __init__(self, root):
        self.root = str(root)

    def __call__(self, trial: TrialSpec) -> TrialResult:
        store = open_store(self.root)
        result = run_trial(trial, store=store)
        store.put_trial(trial.store_key(), result)
        return result


def clear_caches() -> None:
    """Drop the per-process memoisation (tests, memory pressure)."""
    _PROBLEM_CACHE.clear()
    _IDEAL_CACHE.clear()


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
def run_campaign(spec: CampaignSpec,
                 executor: Optional[CampaignExecutor] = None,
                 progress: Optional[Callable[[TrialResult, int, int],
                                             None]] = None,
                 store: Optional[CampaignStore] = None,
                 shard: Optional[Tuple[int, int]] = None,
                 trip: Optional[Callable[[int], None]] = None
                 ) -> CampaignResult:
    """Expand ``spec`` and execute every trial through ``executor``.

    ``progress`` (if given) is called after each completed trial with
    ``(trial_result, completed_count, total_count)`` — trials may
    complete out of order under the pool executors.

    ``store`` (a :class:`~repro.campaign.store.CampaignStore`) enables
    the content-addressed cache: trials whose content address is already
    stored are loaded instead of dispatched, and every executed trial is
    persisted by its worker the moment it finishes.  A warm re-run of an
    unchanged campaign therefore executes zero trials and reproduces the
    cold fingerprint byte-for-byte.

    ``shard=(i, N)`` restricts execution to the i-th round-robin shard
    of the expanded trial list; the partial result can be merged with
    the other shards via :meth:`CampaignResult.merge` into an aggregate
    byte-identical to an unsharded run.

    ``trip`` (if given) is called with the number of *executed* (not
    cached) trials after each one completes; raising
    :class:`~repro.campaign.executors.CampaignInterrupted` from it
    simulates an interruption mid-campaign (tests exercise resume with
    it via :class:`~repro.campaign.executors.TripAfter`).
    """
    executor = executor or SerialExecutor()
    trials = spec.expand()
    total = len(trials)
    if shard is not None:
        trials = shard_trials(trials, *shard)
    result = CampaignResult(name=spec.name, executor=executor.describe(),
                            spec_key=spec.store_key(), total_trials=total,
                            shard=shard)

    pending = trials
    campaign_key = spec.store_key()
    if store is not None:
        pending = []
        for trial in trials:
            cached = store.get_trial(trial.store_key())
            if cached is not None:
                result.add(cached)
                result.cache_hits += 1
            else:
                pending.append(trial)
        store.journal_append(campaign_key, {
            "event": "start", "key": campaign_key,
            "spec": spec.describe(), "total": total,
            "shard": list(shard) if shard else None,
            "cached": result.cache_hits, "pending": len(pending)})

    runner = run_trial if store is None else StoreTrialRunner(store.root)
    started = time.perf_counter()  # repro-lint: allow[wall-clock] campaign wall_time metric, reported not fingerprinted
    completed = result.cache_hits
    executed = 0
    for trial_result in executor.run(runner, pending):
        completed += 1
        executed += 1
        result.add(trial_result)
        if store is not None:
            store.journal_append(campaign_key, {
                "event": "trial", "key": campaign_key,
                "index": trial_result.index})
        if progress is not None:
            progress(trial_result, completed, len(trials))
        if trip is not None:
            trip(executed)
    result.wall_time = time.perf_counter() - started  # repro-lint: allow[wall-clock] campaign wall_time metric, reported not fingerprinted
    result.executed = executed
    if completed != len(trials):
        raise RuntimeError(f"executor {executor.describe()} returned "
                           f"{executed} results for {len(pending)} "
                           f"pending trials ({len(trials)} in the shard)")
    if store is not None:
        store.journal_append(campaign_key, {
            "event": "done", "key": campaign_key, "executed": executed,
            "cached": result.cache_hits,
            "fingerprint": result.fingerprint()})
    return result


def run_trials(trials: Sequence[TrialSpec],
               executor: Optional[CampaignExecutor] = None,
               store: Optional[CampaignStore] = None) -> CampaignResult:
    """Execute an explicit trial list (used by the experiment drivers)."""
    executor = executor or SerialExecutor()
    result = CampaignResult(executor=executor.describe())
    runner = run_trial if store is None else StoreTrialRunner(store.root)
    started = time.perf_counter()  # repro-lint: allow[wall-clock] campaign wall_time metric, reported not fingerprinted
    if store is not None:
        pending = []
        for trial in trials:
            cached = store.get_trial(trial.store_key())
            if cached is not None:
                result.add(cached)
                result.cache_hits += 1
            else:
                pending.append(trial)
        trials = pending
    result.extend(executor.run(runner, list(trials)))
    result.executed = len(trials)
    result.wall_time = time.perf_counter() - started  # repro-lint: allow[wall-clock] campaign wall_time metric, reported not fingerprinted
    return result
