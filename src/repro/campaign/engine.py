"""The campaign engine: expand a spec, execute trials, aggregate results.

The execution model keeps workers cheap and results deterministic:

* each worker process rebuilds its problem from the :class:`MatrixSpec`
  (matrices are never pickled across the pool) and memoises both the
  built matrix and the fault-free *ideal* baseline per
  ``(matrix, knobs)`` key, so a process touching 50 trials of the same
  cell pays for one build and one baseline solve;
* the ideal baseline is fully deterministic, so every process computes
  the exact same ``ideal_time`` and trials agree bit-for-bit no matter
  where they ran;
* per-trial randomness comes exclusively from the trial's spawned
  :class:`numpy.random.SeedSequence` (see ``campaign.spec``), threaded
  through :class:`~repro.faults.scenarios.ErrorScenario` into the
  injector's private Generator.

``run_campaign`` streams results as the executor completes them into a
:class:`CampaignResult` whose aggregation is order-independent.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.campaign.executors import CampaignExecutor, SerialExecutor
from repro.campaign.results import CampaignResult, TrialResult
from repro.campaign.spec import CampaignSpec, MatrixSpec, SolverKnobs, TrialSpec

# ----------------------------------------------------------------------
# per-process memoisation (survives across trials within one worker)
# ----------------------------------------------------------------------
_PROBLEM_CACHE: Dict[MatrixSpec, tuple] = {}
_IDEAL_CACHE: Dict[Tuple[MatrixSpec, SolverKnobs], float] = {}


def _solver_config(knobs: SolverKnobs):
    from repro.solvers.resilient_cg import SolverConfig
    return SolverConfig(tolerance=knobs.tolerance,
                        max_iterations=knobs.max_iterations,
                        num_workers=knobs.num_workers,
                        page_size=knobs.page_size,
                        cost_model=knobs.cost_model,
                        work_scale=knobs.work_scale,
                        record_history=knobs.record_history,
                        backend=knobs.backend,
                        pace=knobs.pace,
                        ranks=knobs.ranks)


def _problem(matrix: MatrixSpec) -> tuple:
    if matrix not in _PROBLEM_CACHE:
        _PROBLEM_CACHE[matrix] = matrix.build()
    return _PROBLEM_CACHE[matrix]


def _make_solver(matrix: MatrixSpec, knobs: SolverKnobs,
                 method: Optional[str], scenario):
    from repro.core.manager import make_strategy
    from repro.precond.block_jacobi import BlockJacobiPreconditioner
    from repro.solvers.resilient_cg import ResilientCG
    A, b = _problem(matrix)
    strategy = None
    if method is not None:
        strategy = make_strategy(method, cost_model=knobs.cost_model,
                                 checkpoint_interval=knobs.checkpoint_interval)
    preconditioner = None
    if knobs.preconditioned:
        preconditioner = BlockJacobiPreconditioner(A,
                                                   page_size=knobs.page_size)
    return ResilientCG(A, b, strategy=strategy,
                       preconditioner=preconditioner, scenario=scenario,
                       config=_solver_config(knobs),
                       matrix_name=matrix.label)


def _ideal_time(matrix: MatrixSpec, knobs: SolverKnobs) -> float:
    """Fault-free baseline solve time (memoised per process)."""
    key = (matrix, knobs)
    if key not in _IDEAL_CACHE:
        solver = _make_solver(matrix, knobs, None, None)
        try:
            result = solver.solve()
        finally:
            solver.close()
        if not result.record.converged:
            raise RuntimeError(
                f"ideal baseline did not converge on {matrix.label} "
                f"within {knobs.max_iterations} iterations; the campaign "
                f"overheads would be meaningless")
        _IDEAL_CACHE[key] = result.record.solve_time
    return _IDEAL_CACHE[key]


def run_trial(trial: TrialSpec) -> TrialResult:
    """Execute one campaign trial (module-level: picklable for pools)."""
    started = time.perf_counter()
    ideal_time = _ideal_time(trial.matrix, trial.knobs)
    solver = _make_solver(trial.matrix, trial.knobs, trial.method,
                          trial.make_scenario())
    try:
        result = solver.solve(ideal_time=ideal_time)
    finally:
        # The threaded backend owns real worker threads; release them so
        # a 10^4-trial campaign does not accumulate thread pools.
        solver.close()
    record = result.record
    return TrialResult(
        index=trial.index, matrix=trial.matrix.label, method=trial.method,
        rate=trial.rate, repetition=trial.repetition,
        converged=record.converged, iterations=record.iterations,
        solve_time=record.solve_time, ideal_time=ideal_time,
        final_residual=record.final_residual,
        faults_injected=record.faults_injected,
        faults_detected=record.faults_detected,
        restarts=record.restarts, rollbacks=record.rollbacks,
        pages_recovered=result.stats.pages_recovered,
        pages_unrecoverable=result.stats.pages_unrecoverable,
        wall_time=time.perf_counter() - started)


def clear_caches() -> None:
    """Drop the per-process memoisation (tests, memory pressure)."""
    _PROBLEM_CACHE.clear()
    _IDEAL_CACHE.clear()


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
def run_campaign(spec: CampaignSpec,
                 executor: Optional[CampaignExecutor] = None,
                 progress: Optional[Callable[[TrialResult, int, int],
                                             None]] = None
                 ) -> CampaignResult:
    """Expand ``spec`` and execute every trial through ``executor``.

    ``progress`` (if given) is called after each completed trial with
    ``(trial_result, completed_count, total_count)`` — trials may
    complete out of order under the pool executors.
    """
    executor = executor or SerialExecutor()
    trials = spec.expand()
    result = CampaignResult(name=spec.name, executor=executor.describe())
    started = time.perf_counter()
    completed = 0
    for trial_result in executor.run(run_trial, trials):
        completed += 1
        result.add(trial_result)
        if progress is not None:
            progress(trial_result, completed, len(trials))
    result.wall_time = time.perf_counter() - started
    if completed != len(trials):
        raise RuntimeError(f"executor {executor.describe()} returned "
                           f"{completed} results for {len(trials)} trials")
    return result


def run_trials(trials: Sequence[TrialSpec],
               executor: Optional[CampaignExecutor] = None) -> CampaignResult:
    """Execute an explicit trial list (used by the experiment drivers)."""
    executor = executor or SerialExecutor()
    result = CampaignResult(executor=executor.describe())
    started = time.perf_counter()
    result.extend(executor.run(run_trial, list(trials)))
    result.wall_time = time.perf_counter() - started
    return result
