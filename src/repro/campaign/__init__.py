"""Parallel fault-injection campaign engine.

The paper's headline claim — exact forward recovery absorbs DUEs with
negligible overhead — is a statistical one, established over thousands
of injected-fault solver runs (Figs. 4-5).  This package makes that
workload first-class:

* :class:`CampaignSpec` declares the grid (matrix family x method x
  error rate x repetitions) plus solver knobs and a campaign seed;
* :func:`run_campaign` expands it into independent, picklable trials
  and executes them through a pluggable executor — serial,
  process-pool, or chunked batches — streaming slim per-trial records
  into a :class:`CampaignResult`;
* aggregation is deterministic: identical statistics (bit-for-bit)
  regardless of executor and completion order, because every trial owns
  a :class:`numpy.random.SeedSequence` spawned from the campaign seed.

Quick start::

    from repro.campaign import (CampaignSpec, MatrixSpec, SolverKnobs,
                                make_executor, run_campaign)

    spec = CampaignSpec(matrices=[MatrixSpec.parse("laplacian2d:45")],
                        methods=("FEIR", "AFEIR"), rates=(1.0, 10.0),
                        repetitions=25, seed=2015,
                        knobs=SolverKnobs(tolerance=1e-8))
    result = run_campaign(spec, executor=make_executor("process"))
    print(result.format())
"""

from repro.campaign.engine import run_campaign, run_trial, run_trials
from repro.campaign.executors import (EXECUTOR_NAMES, CampaignExecutor,
                                      CampaignInterrupted, ChunkedExecutor,
                                      ProcessPoolExecutor, SerialExecutor,
                                      TripAfter, make_executor)
from repro.campaign.results import (DIVERGED_SLOWDOWN, CampaignResult,
                                    CellStats, TrialResult)
from repro.campaign.spec import (MATRIX_FAMILIES, CampaignSpec, MatrixSpec,
                                 SolverKnobs, TrialSpec, content_hash,
                                 parse_shard, shard_trials)
from repro.campaign.store import (DEFAULT_STORE_PATH, STORE_ENV,
                                  STORE_SCHEMA_VERSION, CampaignStore,
                                  StoreSchemaError, VerifyReport,
                                  default_store_root, open_store)

__all__ = [
    "CampaignExecutor",
    "CampaignInterrupted",
    "CampaignResult",
    "CampaignSpec",
    "CampaignStore",
    "CellStats",
    "ChunkedExecutor",
    "DEFAULT_STORE_PATH",
    "DIVERGED_SLOWDOWN",
    "EXECUTOR_NAMES",
    "MATRIX_FAMILIES",
    "MatrixSpec",
    "ProcessPoolExecutor",
    "STORE_ENV",
    "STORE_SCHEMA_VERSION",
    "SerialExecutor",
    "SolverKnobs",
    "StoreSchemaError",
    "TrialResult",
    "TrialSpec",
    "TripAfter",
    "VerifyReport",
    "content_hash",
    "default_store_root",
    "make_executor",
    "open_store",
    "parse_shard",
    "run_campaign",
    "run_trial",
    "run_trials",
    "shard_trials",
]
