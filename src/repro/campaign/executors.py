"""Pluggable trial executors: serial, process pool, chunked batches.

All executors implement the same contract: ``run(fn, items)`` yields
``fn(item)`` results *as they complete* (any order); the engine reorders
by trial index before aggregating, so every executor produces identical
campaign statistics.  Three are provided:

* :class:`SerialExecutor` — in-process loop; zero overhead, the
  reference for the equivalence tests.
* :class:`ProcessPoolExecutor` — one task per trial on a
  ``concurrent.futures`` process pool; best when trials are slow
  relative to pickling.
* :class:`ChunkedExecutor` — batches of trials per pool task; amortises
  process round-trips when trials are short and numerous.
"""

from __future__ import annotations

import concurrent.futures
from typing import Callable, Iterator, List, Optional, Sequence, TypeVar

from repro.config import resolve_worker_count

T = TypeVar("T")
R = TypeVar("R")

#: Registry of executor names understood by :func:`make_executor`.
EXECUTOR_NAMES = ("serial", "process", "chunked")


class CampaignInterrupted(RuntimeError):
    """A campaign was aborted mid-run (trip hook, operator interrupt).

    Carries the number of trials executed before the abort.  Workers
    persist trials to the campaign store as each one finishes, so
    everything executed before the interruption survives it — a re-run
    with the same store resumes from the last persisted trial.
    """

    def __init__(self, executed: int):
        super().__init__(f"campaign interrupted after {executed} "
                         f"executed trial(s)")
        self.executed = executed


class TripAfter:
    """Trip hook aborting a campaign after ``limit`` executed trials.

    Pass as ``run_campaign(..., trip=TripAfter(k))`` to simulate a
    mid-campaign crash deterministically: the engine calls the hook
    after every *executed* (non-cached) trial, and the hook raises
    :class:`CampaignInterrupted` once the limit is reached.  The
    interruption/resume tests use this to assert that a killed-and-
    resumed campaign reproduces an uninterrupted run's fingerprint.
    """

    def __init__(self, limit: int):
        if limit <= 0:
            raise ValueError(f"trip limit must be positive, got {limit}")
        self.limit = limit

    def __call__(self, executed: int) -> None:
        if executed >= self.limit:
            raise CampaignInterrupted(executed)


def default_worker_count() -> int:
    """Worker count for the pool executors: all cores, at least one,
    capped by the ``REPRO_MAX_WORKERS`` environment override."""
    return resolve_worker_count()


class CampaignExecutor:
    """Base class: maps a function over items, yielding unordered results."""

    name = "base"

    def run(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[R]:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class SerialExecutor(CampaignExecutor):
    """Run every trial in-process, in submission order."""

    name = "serial"

    def run(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[R]:
        for item in items:
            yield fn(item)


class ProcessPoolExecutor(CampaignExecutor):
    """One pool task per trial (``concurrent.futures`` process pool).

    Worker counts are validated (explicit non-positive requests raise)
    and capped by the ``REPRO_MAX_WORKERS`` environment override; at run
    time the pool never exceeds the number of items, so short campaigns
    do not oversubscribe CI runners.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = resolve_worker_count(max_workers)

    def describe(self) -> str:
        return f"{self.name}({self.max_workers} workers)"

    def run(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[R]:
        if not items:
            return
        workers = max(1, min(self.max_workers, len(items)))
        if workers == 1 or len(items) == 1:
            # A one-worker pool only adds IPC; keep semantics, skip cost.
            yield from SerialExecutor().run(fn, items)
            return
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers) as pool:
            futures = [pool.submit(fn, item) for item in items]
            yield from _drain(futures)


def _drain(futures) -> Iterator:
    """Yield future results as completed; on any error cancel what has
    not started yet so a failing trial surfaces immediately instead of
    after the rest of the campaign."""
    try:
        for future in concurrent.futures.as_completed(futures):
            yield future.result()
    except BaseException:
        for pending in futures:
            pending.cancel()
        raise


def _run_chunk(fn: Callable[[T], R], chunk: List[T]) -> List[R]:
    """Module-level so chunk tasks stay picklable."""
    return [fn(item) for item in chunk]


class ChunkedExecutor(CampaignExecutor):
    """Process pool fed with fixed-size batches of trials per task."""

    name = "chunked"

    def __init__(self, max_workers: Optional[int] = None,
                 chunk_size: Optional[int] = None):
        self.max_workers = resolve_worker_count(max_workers)
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk size must be positive, got {chunk_size}")
        self.chunk_size = chunk_size

    def describe(self) -> str:
        return (f"{self.name}({self.max_workers} workers, "
                f"chunk={self.chunk_size or 'auto'})")

    def _chunks(self, items: Sequence[T]) -> List[List[T]]:
        size = self.chunk_size
        if size is None:
            # ~4 chunks per worker balances load without per-trial IPC.
            size = max(1, len(items) // (4 * self.max_workers) or 1)
        return [list(items[i:i + size]) for i in range(0, len(items), size)]

    def run(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[R]:
        if not items:
            return
        chunks = self._chunks(items)
        workers = max(1, min(self.max_workers, len(chunks)))
        if workers == 1 or len(chunks) == 1:
            yield from SerialExecutor().run(fn, items)
            return
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers) as pool:
            futures = [pool.submit(_run_chunk, fn, chunk) for chunk in chunks]
            for batch in _drain(futures):
                yield from batch


def make_executor(name: str, max_workers: Optional[int] = None,
                  chunk_size: Optional[int] = None) -> CampaignExecutor:
    """Build an executor from its registry name."""
    key = name.strip().lower()
    if key == "serial":
        return SerialExecutor()
    if key in ("process", "pool", "process-pool"):
        return ProcessPoolExecutor(max_workers=max_workers)
    if key in ("chunked", "chunk", "batch"):
        return ChunkedExecutor(max_workers=max_workers, chunk_size=chunk_size)
    raise ValueError(f"unknown executor {name!r}; "
                     f"known executors: {', '.join(EXECUTOR_NAMES)}")
