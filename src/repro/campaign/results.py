"""Campaign results: per-trial records and deterministic aggregation.

Workers return slim, picklable :class:`TrialResult` records (no traces,
no residual histories) so that a 10^4-trial campaign streams through a
process pool without serialising solver state.  :class:`CampaignResult`
collects them — in whatever order the executor completes them — and
aggregates *in trial-index order*, so the aggregated statistics of a
campaign are byte-identical between the serial and the parallel
executors under the same campaign seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.analysis.stats import harmonic_mean_overhead, mean_and_std

#: Slowdown (percent) assigned to trials that failed to converge, the
#: same top-of-axis convention Figure 4 uses.
DIVERGED_SLOWDOWN = 2000.0


@dataclass(frozen=True)
class TrialResult:
    """Slim outcome of one campaign trial (safe to ship across processes)."""

    index: int
    matrix: str
    method: str
    rate: float
    repetition: int
    converged: bool
    iterations: int
    solve_time: float
    ideal_time: float
    final_residual: float
    faults_injected: int = 0
    faults_detected: int = 0
    restarts: int = 0
    rollbacks: int = 0
    pages_recovered: int = 0
    pages_unrecoverable: int = 0
    #: Wall-clock seconds the worker spent on this trial (diagnostics
    #: only; excluded from aggregation so results stay deterministic).
    wall_time: float = 0.0

    @property
    def overhead_percent(self) -> float:
        """Slowdown versus the fault-free ideal run, in percent."""
        if self.ideal_time <= 0:
            raise ValueError("ideal time must be positive")
        return 100.0 * (self.solve_time - self.ideal_time) / self.ideal_time

    @property
    def scored_slowdown(self) -> float:
        """Overhead used for aggregation; diverged trials are capped."""
        return self.overhead_percent if self.converged else DIVERGED_SLOWDOWN

    @property
    def record(self):
        """Adapter to the :class:`ConvergenceRecord` interface bits the
        experiment drivers read (duck-typed, history-free)."""
        return self


@dataclass
class CellStats:
    """Aggregate of one (matrix, method, rate) campaign cell."""

    matrix: str
    method: str
    rate: float
    trials: int
    diverged: int
    mean_slowdown: float
    std_slowdown: float
    harmonic_slowdown: float
    mean_iterations: float
    faults_injected: int
    faults_detected: int


@dataclass
class CampaignResult:
    """All trial results of one campaign plus deterministic aggregates."""

    name: str = "campaign"
    trials: List[TrialResult] = field(default_factory=list)
    #: Wall-clock duration of the whole campaign (seconds); informational.
    wall_time: float = 0.0
    executor: str = "serial"

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def add(self, result: TrialResult) -> None:
        self.trials.append(result)
        self._invalidate()

    def extend(self, results: Iterable[TrialResult]) -> None:
        self.trials.extend(results)
        self._invalidate()

    def _invalidate(self) -> None:
        self.__dict__.pop("_cells_cache", None)

    def sorted_trials(self) -> List[TrialResult]:
        """Trials in expansion (trial-index) order, however they arrived."""
        return sorted(self.trials, key=lambda t: t.index)

    def __len__(self) -> int:
        return len(self.trials)

    # ------------------------------------------------------------------
    # aggregation (deterministic: trial-index order everywhere)
    # ------------------------------------------------------------------
    def cells(self) -> Dict[Tuple[str, str, float], CellStats]:
        """Per (matrix, method, rate) aggregates."""
        cached = self.__dict__.get("_cells_cache")
        if cached is not None:
            return cached
        grouped: Dict[Tuple[str, str, float], List[TrialResult]] = {}
        for trial in self.sorted_trials():
            key = (trial.matrix, trial.method, trial.rate)
            grouped.setdefault(key, []).append(trial)
        cells: Dict[Tuple[str, str, float], CellStats] = {}
        for key, members in grouped.items():
            slowdowns = [t.scored_slowdown for t in members]
            mean, std = mean_and_std(slowdowns)
            cells[key] = CellStats(
                matrix=key[0], method=key[1], rate=key[2],
                trials=len(members),
                diverged=sum(1 for t in members if not t.converged),
                mean_slowdown=mean, std_slowdown=std,
                harmonic_slowdown=harmonic_mean_overhead(
                    np.maximum(slowdowns, 0.0)),
                mean_iterations=float(np.mean([t.iterations
                                               for t in members])),
                faults_injected=sum(t.faults_injected for t in members),
                faults_detected=sum(t.faults_detected for t in members))
        self.__dict__["_cells_cache"] = cells
        return cells

    def summary(self) -> Dict[Tuple[str, float], float]:
        """Per (method, rate) harmonic-mean slowdown across matrices —
        the paper's "CG mean" aggregation of Figure 4."""
        collected: Dict[Tuple[str, float], List[float]] = {}
        for trial in self.sorted_trials():
            collected.setdefault((trial.method, trial.rate), []).append(
                trial.scored_slowdown)
        return {key: harmonic_mean_overhead(np.maximum(values, 0.0))
                for key, values in collected.items()}

    def cell(self, matrix: str, method: str, rate: float) -> CellStats:
        try:
            return self.cells()[(matrix, method, rate)]
        except KeyError:
            raise KeyError(f"no campaign cell ({matrix!r}, {method!r}, "
                           f"{rate:g})") from None

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary_rows(self) -> List[List[object]]:
        """Rows (method, then one column per rate) for ``format_table``."""
        summary = self.summary()
        rates = sorted({rate for (_, rate) in summary})
        methods = sorted({method for (method, _) in summary})
        rows: List[List[object]] = []
        for method in methods:
            row: List[object] = [method]
            for rate in rates:
                row.append(summary.get((method, rate), float("nan")))
            rows.append(row)
        return rows

    def fingerprint(self) -> str:
        """Stable hash over the aggregated statistics.

        Two campaigns with the same spec and seed must produce the same
        fingerprint no matter which executor ran them — the equivalence
        tests and the CI smoke job assert exactly this.
        """
        import hashlib
        payload: List[str] = []
        for key in sorted(self.cells()):
            c = self.cells()[key]
            payload.append(
                f"{c.matrix}|{c.method}|{c.rate!r}|{c.trials}|{c.diverged}|"
                f"{c.mean_slowdown!r}|{c.std_slowdown!r}|"
                f"{c.harmonic_slowdown!r}|{c.mean_iterations!r}|"
                f"{c.faults_injected}|{c.faults_detected}")
        digest = hashlib.sha256("\n".join(payload).encode("utf-8"))
        return digest.hexdigest()

    def format(self, title: Optional[str] = None) -> str:
        """Human-readable summary table."""
        from repro.analysis.report import format_table
        summary = self.summary()
        rates = sorted({rate for (_, rate) in summary})
        headers = ["method"] + [f"rate {rate:g}" for rate in rates]
        return format_table(
            headers, self.summary_rows(),
            title=title or (f"Campaign {self.name!r}: harmonic-mean "
                            f"slowdown % ({len(self.trials)} trials, "
                            f"{self.executor} executor)"))
