"""Campaign results: per-trial records and deterministic aggregation.

Workers return slim, picklable :class:`TrialResult` records (no traces,
no residual histories) so that a 10^4-trial campaign streams through a
process pool without serialising solver state.  :class:`CampaignResult`
collects them — in whatever order the executor completes them — and
aggregates *in trial-index order*, so the aggregated statistics of a
campaign are byte-identical between the serial and the parallel
executors under the same campaign seed.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.stats import harmonic_mean_overhead, mean_and_std

#: Slowdown (percent) assigned to trials that failed to converge, the
#: same top-of-axis convention Figure 4 uses.
DIVERGED_SLOWDOWN = 2000.0


@dataclass(frozen=True)
class TrialResult:
    """Slim outcome of one campaign trial (safe to ship across processes)."""

    index: int
    matrix: str
    method: str
    rate: float
    repetition: int
    converged: bool
    iterations: int
    solve_time: float
    ideal_time: float
    final_residual: float
    faults_injected: int = 0
    faults_detected: int = 0
    restarts: int = 0
    rollbacks: int = 0
    pages_recovered: int = 0
    pages_unrecoverable: int = 0
    #: Wall-clock seconds the worker spent on this trial (diagnostics
    #: only; excluded from aggregation so results stay deterministic).
    wall_time: float = 0.0

    @property
    def overhead_percent(self) -> float:
        """Slowdown versus the fault-free ideal run, in percent."""
        if self.ideal_time <= 0:
            raise ValueError("ideal time must be positive")
        return 100.0 * (self.solve_time - self.ideal_time) / self.ideal_time

    @property
    def scored_slowdown(self) -> float:
        """Overhead used for aggregation; diverged trials are capped."""
        return self.overhead_percent if self.converged else DIVERGED_SLOWDOWN

    @property
    def record(self):
        """Adapter to the :class:`ConvergenceRecord` interface bits the
        experiment drivers read (duck-typed, history-free)."""
        return self


@dataclass
class CellStats:
    """Aggregate of one (matrix, method, rate) campaign cell."""

    matrix: str
    method: str
    rate: float
    trials: int
    diverged: int
    mean_slowdown: float
    std_slowdown: float
    harmonic_slowdown: float
    mean_iterations: float
    faults_injected: int
    faults_detected: int


@dataclass
class CampaignResult:
    """All trial results of one campaign plus deterministic aggregates."""

    name: str = "campaign"
    trials: List[TrialResult] = field(default_factory=list)
    #: Wall-clock duration of the whole campaign (seconds); informational.
    wall_time: float = 0.0
    executor: str = "serial"
    #: Content address of the producing :class:`CampaignSpec`; lets
    #: ``merge`` refuse to combine partials from different campaigns.
    spec_key: Optional[str] = None
    #: Trial count of the *full* campaign grid (a shard run records the
    #: whole grid's size here, so merges can verify completeness).
    total_trials: Optional[int] = None
    #: ``(index, count)`` when this result covers one shard only.
    shard: Optional[Tuple[int, int]] = None
    #: Trials served from the content-addressed store / actually
    #: executed this run.  Diagnostics only — never part of the
    #: fingerprint, which must not see where a trial's bytes came from.
    cache_hits: int = 0
    executed: int = 0

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def add(self, result: TrialResult) -> None:
        self.trials.append(result)
        self._invalidate()

    def extend(self, results: Iterable[TrialResult]) -> None:
        self.trials.extend(results)
        self._invalidate()

    def _invalidate(self) -> None:
        self.__dict__.pop("_cells_cache", None)

    def sorted_trials(self) -> List[TrialResult]:
        """Trials in expansion (trial-index) order, however they arrived."""
        return sorted(self.trials, key=lambda t: t.index)

    def __len__(self) -> int:
        return len(self.trials)

    # ------------------------------------------------------------------
    # aggregation (deterministic: trial-index order everywhere)
    # ------------------------------------------------------------------
    def cells(self) -> Dict[Tuple[str, str, float], CellStats]:
        """Per (matrix, method, rate) aggregates."""
        cached = self.__dict__.get("_cells_cache")
        if cached is not None:
            return cached
        grouped: Dict[Tuple[str, str, float], List[TrialResult]] = {}
        for trial in self.sorted_trials():
            key = (trial.matrix, trial.method, trial.rate)
            grouped.setdefault(key, []).append(trial)
        cells: Dict[Tuple[str, str, float], CellStats] = {}
        for key, members in grouped.items():
            slowdowns = [t.scored_slowdown for t in members]
            mean, std = mean_and_std(slowdowns)
            cells[key] = CellStats(
                matrix=key[0], method=key[1], rate=key[2],
                trials=len(members),
                diverged=sum(1 for t in members if not t.converged),
                mean_slowdown=mean, std_slowdown=std,
                harmonic_slowdown=harmonic_mean_overhead(
                    np.maximum(slowdowns, 0.0)),
                mean_iterations=float(np.mean([t.iterations
                                               for t in members])),
                faults_injected=sum(t.faults_injected for t in members),
                faults_detected=sum(t.faults_detected for t in members))
        self.__dict__["_cells_cache"] = cells
        return cells

    def summary(self) -> Dict[Tuple[str, float], float]:
        """Per (method, rate) harmonic-mean slowdown across matrices —
        the paper's "CG mean" aggregation of Figure 4."""
        collected: Dict[Tuple[str, float], List[float]] = {}
        for trial in self.sorted_trials():
            collected.setdefault((trial.method, trial.rate), []).append(
                trial.scored_slowdown)
        return {key: harmonic_mean_overhead(np.maximum(values, 0.0))
                for key, values in collected.items()}

    def cell(self, matrix: str, method: str, rate: float) -> CellStats:
        try:
            return self.cells()[(matrix, method, rate)]
        except KeyError:
            raise KeyError(f"no campaign cell ({matrix!r}, {method!r}, "
                           f"{rate:g})") from None

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary_rows(self) -> List[List[object]]:
        """Rows (method, then one column per rate) for ``format_table``."""
        summary = self.summary()
        rates = sorted({rate for (_, rate) in summary})
        methods = sorted({method for (method, _) in summary})
        rows: List[List[object]] = []
        for method in methods:
            row: List[object] = [method]
            for rate in rates:
                row.append(summary.get((method, rate), float("nan")))
            rows.append(row)
        return rows

    def fingerprint(self) -> str:
        """Stable hash over the aggregated statistics.

        Two campaigns with the same spec and seed must produce the same
        fingerprint no matter which executor ran them — the equivalence
        tests and the CI smoke job assert exactly this.
        """
        import hashlib
        payload: List[str] = []
        for key in sorted(self.cells()):
            c = self.cells()[key]
            payload.append(
                f"{c.matrix}|{c.method}|{c.rate!r}|{c.trials}|{c.diverged}|"
                f"{c.mean_slowdown!r}|{c.std_slowdown!r}|"
                f"{c.harmonic_slowdown!r}|{c.mean_iterations!r}|"
                f"{c.faults_injected}|{c.faults_detected}")
        digest = hashlib.sha256("\n".join(payload).encode("utf-8"))
        return digest.hexdigest()

    def format(self, title: Optional[str] = None) -> str:
        """Human-readable summary table."""
        from repro.analysis.report import format_table
        summary = self.summary()
        rates = sorted({rate for (_, rate) in summary})
        headers = ["method"] + [f"rate {rate:g}" for rate in rates]
        return format_table(
            headers, self.summary_rows(),
            title=title or (f"Campaign {self.name!r}: harmonic-mean "
                            f"slowdown % ({len(self.trials)} trials, "
                            f"{self.executor} executor)"))

    # ------------------------------------------------------------------
    # serialization (shard emit / merge)
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """JSON-safe payload carrying every trial bit-exactly.

        Python's ``json`` emits floats via ``repr`` (shortest exact
        round-trip), so a load of a dump reproduces the identical
        fingerprint — the property the shard/merge protocol rests on.
        """
        from repro.campaign.store import STORE_SCHEMA_VERSION
        return {
            "schema": STORE_SCHEMA_VERSION,
            "kind": "campaign-result",
            "name": self.name,
            "executor": self.executor,
            "wall_time": self.wall_time,
            "spec_key": self.spec_key,
            "total_trials": self.total_trials,
            "shard": list(self.shard) if self.shard else None,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "trials": [asdict(t) for t in self.sorted_trials()],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object],
                     source: str = "payload") -> "CampaignResult":
        from repro.campaign.store import STORE_SCHEMA_VERSION, StoreSchemaError
        if not isinstance(payload, dict) or \
                payload.get("kind") != "campaign-result":
            raise ValueError(f"{source} is not a serialized campaign "
                             f"result")
        found = payload.get("schema")
        if found != STORE_SCHEMA_VERSION:
            raise StoreSchemaError(
                f"{source} was written by result schema v{found}, but "
                f"this version of repro reads v{STORE_SCHEMA_VERSION}; "
                f"re-run the shard that produced it")
        shard = payload.get("shard")
        result = cls(name=payload["name"], executor=payload["executor"],
                     wall_time=float(payload.get("wall_time", 0.0)),
                     spec_key=payload.get("spec_key"),
                     total_trials=payload.get("total_trials"),
                     shard=tuple(shard) if shard else None,
                     cache_hits=int(payload.get("cache_hits", 0)),
                     executed=int(payload.get("executed", 0)))
        result.extend(TrialResult(**t) for t in payload["trials"])
        return result

    def save(self, path) -> None:
        """Write this (possibly partial) result to ``path`` as JSON."""
        Path(path).write_text(json.dumps(self.to_payload(), sort_keys=True)
                              + "\n")

    @classmethod
    def load(cls, path) -> "CampaignResult":
        try:
            payload = json.loads(Path(path).read_text())
        except ValueError as exc:
            raise ValueError(f"{path} is not valid JSON: {exc}") from None
        return cls.from_payload(payload, source=str(path))

    # ------------------------------------------------------------------
    # shard merge
    # ------------------------------------------------------------------
    @classmethod
    def merge(cls, parts: Sequence["CampaignResult"],
              require_complete: bool = True) -> "CampaignResult":
        """Combine shard partials into one aggregate result.

        Deterministic fingerprints make the merge order-independent:
        aggregation sorts by trial index, so any permutation of the same
        shard set merges to an aggregate byte-identical to the
        single-process run.  Validates that all parts come from the same
        campaign (``spec_key``), that no trial index appears twice, and
        (``require_complete``) that the union covers the full grid.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("nothing to merge: no partial results given")
        spec_keys = {p.spec_key for p in parts if p.spec_key is not None}
        if len(spec_keys) > 1:
            raise ValueError(
                f"refusing to merge partial results from "
                f"{len(spec_keys)} different campaigns (distinct spec "
                f"keys: {', '.join(sorted(k[:12] for k in spec_keys))}...)")
        merged = cls(name=parts[0].name,
                     executor=f"merge({len(parts)} partials)",
                     spec_key=parts[0].spec_key,
                     total_trials=parts[0].total_trials,
                     cache_hits=sum(p.cache_hits for p in parts),
                     executed=sum(p.executed for p in parts),
                     wall_time=max(p.wall_time for p in parts))
        seen: Dict[int, str] = {}
        for part in parts:
            for trial in part.trials:
                if trial.index in seen:
                    raise ValueError(
                        f"trial index {trial.index} appears in more than "
                        f"one partial result (shards must be disjoint — "
                        f"did the same shard get merged twice?)")
                seen[trial.index] = part.executor
            merged.extend(part.trials)
        totals = {p.total_trials for p in parts if p.total_trials}
        if len(totals) > 1:
            raise ValueError(f"partial results disagree on the campaign "
                             f"size: {sorted(totals)}")
        if require_complete and totals:
            expected = totals.pop()
            if len(merged.trials) != expected:
                missing = expected - len(merged.trials)
                raise ValueError(
                    f"merge is incomplete: {len(merged.trials)} of "
                    f"{expected} trials present ({missing} missing — "
                    f"pass every shard, or require_complete=False for a "
                    f"partial aggregate)")
        return merged
