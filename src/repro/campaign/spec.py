"""Declarative description of a fault-injection campaign.

A campaign is the paper's evaluation unit: a grid of

    matrix family x solver method x recovery strategy x fault scenario
    x error-rate x repetition

whose cells are *independent* solver trials (Figs. 4-5 are thousands of
them).  :class:`CampaignSpec` describes the grid declaratively;
:meth:`CampaignSpec.expand` turns it into a flat list of picklable
:class:`TrialSpec` objects, each carrying everything a worker process
needs to rebuild its problem and run its solve — including a private
:class:`numpy.random.SeedSequence` spawned from the campaign seed, so
results do not depend on which executor (serial, process pool, chunked)
runs the trials or in which order they complete.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config import (DEFAULT_MAX_ITERATIONS, DEFAULT_SEED,
                          DEFAULT_TOLERANCE, DEFAULT_WORKERS)
from repro.faults.scenarios import ErrorScenario
from repro.runtime.backend import BACKEND_NAMES
from repro.runtime.cost_model import DEFAULT_COST_MODEL, CostModel
from repro.runtime.runtime import resolve_runtime_spec

def _operator_to_scipy(A):
    """SciPy CSR view of a SparseOperator (``sparse=False`` on a family
    that builds SciPy-free by default)."""
    import scipy.sparse as sp
    return sp.csr_matrix((A.data, A.indices, A.indptr), shape=A.shape)


#: Matrix families the campaign engine can build by name.  ``suite:*``
#: entries come from :data:`repro.matrices.suite.PAPER_MATRICES`;
#: ``laplacian1d``/``laplacian2d`` are built SciPy-free directly as
#: :class:`~repro.matrices.sparse.SparseOperator` CSR;
#: ``poisson2d``/``poisson3d27`` use the stencil generators.
MATRIX_FAMILIES = ("suite", "laplacian1d", "laplacian2d", "poisson2d",
                   "poisson3d27")


# ----------------------------------------------------------------------
# content keys
# ----------------------------------------------------------------------
# Every spec object exposes a ``content_token()`` — a canonical string
# over exactly the fields that determine a trial's numerical outcome —
# and hashing that token gives the content address under which
# :class:`repro.campaign.store.CampaignStore` caches artifacts.  Tokens
# use ``repr`` for floats (shortest exact round-trip), so two specs have
# equal tokens iff they are numerically the same spec.

def content_hash(token: str) -> str:
    """SHA-256 content address of a canonical spec token."""
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


def _scenario_token(scenario: Optional[ErrorScenario]) -> str:
    """Canonical token of a scenario override (``name`` is cosmetic and
    the seed is threaded per trial, so neither participates)."""
    if scenario is None:
        return "none"
    fixed = ";".join(f"{inj.time!r}@{inj.vector}[{inj.page}]"
                     for inj in scenario.fixed_injections)
    return f"rate={float(scenario.normalized_rate)!r}/fixed=[{fixed}]"


def _seed_token(seed: np.random.SeedSequence) -> str:
    entropy = seed.entropy
    if isinstance(entropy, (list, tuple)):
        entropy = ",".join(str(int(e)) for e in entropy)
    return f"{entropy}/{tuple(seed.spawn_key)}"


@dataclass(frozen=True)
class MatrixSpec:
    """One matrix family instance, rebuildable inside any worker process.

    ``family='suite'`` interprets ``name`` as a
    :data:`~repro.matrices.suite.PAPER_MATRICES` key; the parametric
    families use ``params`` (e.g. ``{'nx': 45, 'ny': 45}``).  With
    ``sparse=True`` the matrix is materialised as a SciPy-free
    :class:`~repro.matrices.sparse.SparseOperator`, the fast path that
    makes n >= 10^4 trials affordable.
    """

    family: str = "suite"
    name: str = ""
    params: Tuple[Tuple[str, int], ...] = ()
    sparse: bool = False
    rhs_seed: int = DEFAULT_SEED

    def __post_init__(self):
        if self.family not in MATRIX_FAMILIES:
            raise ValueError(f"unknown matrix family {self.family!r}; "
                             f"known families: {', '.join(MATRIX_FAMILIES)}")

    @property
    def label(self) -> str:
        if self.family == "suite":
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.family}({inner})"

    def content_token(self) -> str:
        """Canonical token over everything :meth:`build` depends on."""
        params = ",".join(f"{k}={v}" for k, v in self.params)
        return (f"matrix/{self.family}/{self.name}/[{params}]/"
                f"sparse={int(self.sparse)}/rhs_seed={self.rhs_seed}")

    @classmethod
    def suite(cls, name: str, sparse: bool = False,
              rhs_seed: int = DEFAULT_SEED) -> "MatrixSpec":
        return cls(family="suite", name=name, sparse=sparse,
                   rhs_seed=rhs_seed)

    @classmethod
    def parametric(cls, family: str, sparse: bool = True,
                   rhs_seed: int = DEFAULT_SEED, **params: int) -> "MatrixSpec":
        return cls(family=family, name="",
                   params=tuple(sorted(params.items())), sparse=sparse,
                   rhs_seed=rhs_seed)

    @classmethod
    def parse(cls, text: str, sparse: bool = True) -> "MatrixSpec":
        """Parse CLI shorthand: ``qa8fm``, ``laplacian2d:45`` or
        ``laplacian2d:45x52``."""
        if ":" not in text:
            from repro.matrices.suite import PAPER_MATRICES
            if text not in PAPER_MATRICES:
                raise ValueError(
                    f"unknown suite matrix {text!r}; available: "
                    f"{', '.join(sorted(PAPER_MATRICES))} (or a parametric "
                    f"family like laplacian2d:45)")
            return cls.suite(text, sparse=sparse)
        family, _, args = text.partition(":")
        try:
            dims = [int(d) for d in args.lower().split("x") if d]
        except ValueError:
            raise ValueError(f"matrix spec {text!r}: dimensions after ':' "
                             f"must be integers (e.g. laplacian2d:45 or "
                             f"laplacian2d:64x32)") from None
        if not dims:
            raise ValueError(f"matrix spec {text!r} has no dimensions")
        if family == "laplacian1d":
            return cls.parametric("laplacian1d", sparse=sparse, n=dims[0])
        if family in ("laplacian2d", "poisson2d"):
            nx = dims[0]
            ny = dims[1] if len(dims) > 1 else dims[0]
            return cls.parametric(family, sparse=sparse, nx=nx, ny=ny)
        if family == "poisson3d27":
            return cls.parametric("poisson3d27", sparse=sparse, nx=dims[0])
        raise ValueError(f"unknown matrix family {family!r}")

    def build(self):
        """Materialise ``(A, b)`` for this spec (runs inside workers)."""
        from repro.matrices.sparse import (SparseOperator,
                                           laplacian_1d_operator,
                                           laplacian_2d_operator)
        from repro.matrices.stencil import stencil_rhs
        params = dict(self.params)
        if self.family == "suite":
            from repro.matrices.suite import PAPER_MATRICES
            A = PAPER_MATRICES[self.name].build()
            if self.sparse:
                A = SparseOperator.from_scipy(A)
        elif self.family == "laplacian1d":
            A = laplacian_1d_operator(params["n"], shift=1e-3)
            if not self.sparse:
                A = _operator_to_scipy(A)
        elif self.family == "laplacian2d":
            A = laplacian_2d_operator(params["nx"], params.get("ny"))
            if not self.sparse:
                A = _operator_to_scipy(A)
        elif self.family == "poisson2d":
            from repro.matrices.stencil import poisson_2d_5pt
            A = poisson_2d_5pt(params["nx"], params.get("ny"))
            if self.sparse:
                A = SparseOperator.from_scipy(A)
        elif self.family == "poisson3d27":
            from repro.matrices.stencil import poisson_3d_27pt
            A = poisson_3d_27pt(params["nx"])
            if self.sparse:
                A = SparseOperator.from_scipy(A)
        else:  # pragma: no cover - guarded by __post_init__
            raise ValueError(f"unknown matrix family {self.family!r}")
        b = stencil_rhs(A, kind="random", seed=self.rhs_seed)
        return A, b


@dataclass(frozen=True)
class SolverKnobs:
    """Solver configuration shared by every trial of a campaign."""

    tolerance: float = DEFAULT_TOLERANCE
    max_iterations: int = DEFAULT_MAX_ITERATIONS
    num_workers: int = DEFAULT_WORKERS
    page_size: int = 128
    work_scale: float = 200.0
    preconditioned: bool = False
    checkpoint_interval: Optional[int] = None
    record_history: bool = False
    cost_model: CostModel = DEFAULT_COST_MODEL
    #: Deprecated alias for the (scheduler, clock) runtime axes:
    #: ``"simulated"`` -> (list, simulated), ``"threaded"`` ->
    #: (threaded, wall).  The simulated timeline (and hence every
    #: aggregate and the campaign fingerprint) is bit-identical in every
    #: runtime cell.
    backend: str = "simulated"
    #: Wall-clock pacing of the threaded scheduler (see ``SolverConfig``).
    pace: float = 1.0
    #: Rank-parallel kernel execution inside each trial
    #: (``SolverConfig.ranks``); the reproducible reductions keep every
    #: aggregate and the campaign fingerprint bit-identical to 1 rank.
    ranks: int = 1
    #: Explicit runtime axes (``SolverConfig.scheduler`` / ``placement``
    #: / ``clock``); ``None`` defers to the ``backend``/``ranks`` aliases.
    scheduler: Optional[str] = None
    placement: Optional[str] = None
    clock: Optional[str] = None

    def __post_init__(self):
        if self.backend not in BACKEND_NAMES:
            raise ValueError(f"unknown execution backend {self.backend!r}; "
                             f"known backends: {', '.join(BACKEND_NAMES)}")
        self.runtime_spec()  # validates the axis composition loudly

    def runtime_spec(self):
        """The resolved (scheduler x placement x clock) cell of every trial."""
        return resolve_runtime_spec(backend=self.backend,
                                    scheduler=self.scheduler,
                                    placement=self.placement,
                                    clock=self.clock, ranks=self.ranks)

    def content_token(self) -> str:
        """Canonical token over every knob.

        Conservative by design: knobs that are *proven* not to change
        results (the runtime cell — the bit-identical invariant) still
        participate, so the store can never paper over a broken
        invariant by serving a trial cached under another cell.  The
        runtime portion is emitted through the resolved spec's legacy
        backend alias, so every previously expressible cell keeps its
        store address byte-for-byte; only the genuinely new cell
        (``placement='ranks'`` with ``ranks=1``) gains an extra
        ``placement=`` token.
        """
        cost = ",".join(
            f"{f.name}={getattr(self.cost_model, f.name)!r}"
            for f in dataclasses.fields(self.cost_model))
        spec = self.runtime_spec()
        placement_token = ("placement=ranks/"
                           if (spec.placement == "ranks" and spec.ranks == 1)
                           else "")
        return (f"knobs/tol={self.tolerance!r}/maxit={self.max_iterations}/"
                f"workers={self.num_workers}/page={self.page_size}/"
                f"scale={self.work_scale!r}/"
                f"precond={int(self.preconditioned)}/"
                f"ckpt={self.checkpoint_interval}/"
                f"history={int(self.record_history)}/"
                f"backend={spec.backend_alias()}/pace={self.pace!r}/"
                f"{placement_token}"
                f"ranks={spec.ranks}/cost[{cost}]")


@dataclass(frozen=True)
class TrialSpec:
    """One independent solver run of the campaign grid (picklable)."""

    index: int
    matrix: MatrixSpec
    method: str
    rate: float
    repetition: int
    seed: np.random.SeedSequence
    knobs: SolverKnobs = SolverKnobs()
    #: Overrides the rate-based Poisson scenario when set (targeted
    #: injection grids; the per-trial seed is threaded in regardless).
    scenario: Optional[ErrorScenario] = None

    def cell_token(self) -> str:
        """Canonical token of the trial's campaign cell (no seed/knobs)."""
        return (f"{self.matrix.content_token()}|method={self.method}|"
                f"rate={float(self.rate)!r}|"
                f"scenario={_scenario_token(self.scenario)}")

    def content_token(self) -> str:
        """Canonical token over everything that determines this trial's
        :class:`~repro.campaign.results.TrialResult` — the cell, the
        repetition, the seed material and every solver knob.  The trial
        ``index`` is deliberately absent: it is an enumeration position,
        not an input to the numerics, so a trial keeps its content
        address when the surrounding grid grows."""
        return (f"trial/v1|{self.cell_token()}|rep={self.repetition}|"
                f"seed={_seed_token(self.seed)}|{self.knobs.content_token()}")

    def store_key(self) -> str:
        """Content address of this trial's result in the campaign store."""
        return content_hash(self.content_token())

    def make_scenario(self) -> ErrorScenario:
        """The concrete, per-trial-seeded scenario this trial runs."""
        if self.scenario is not None:
            return self.scenario.reseeded(self.seed)
        if self.rate <= 0:
            return ErrorScenario(name="fault-free", normalized_rate=0.0,
                                 seed=self.seed)
        return ErrorScenario(
            name=f"{self.matrix.label}-rate{self.rate:g}-rep{self.repetition}",
            normalized_rate=float(self.rate), seed=self.seed)


@dataclass
class CampaignSpec:
    """The declarative campaign grid.

    ``expand()`` enumerates matrices (outer) x rates x methods x
    repetitions (inner) in a deterministic order and spawns one
    independent child :class:`~numpy.random.SeedSequence` per trial from
    ``seed``.
    """

    matrices: Sequence[Union[MatrixSpec, str]] = ()
    methods: Sequence[str] = ("FEIR",)
    rates: Sequence[float] = (1.0,)
    repetitions: int = 1
    seed: int = DEFAULT_SEED
    knobs: SolverKnobs = field(default_factory=SolverKnobs)
    scenario: Optional[ErrorScenario] = None
    name: str = "campaign"

    def __post_init__(self):
        if self.repetitions <= 0:
            raise ValueError(f"repetitions must be positive, "
                             f"got {self.repetitions}")
        self.matrices = tuple(
            m if isinstance(m, MatrixSpec) else MatrixSpec.parse(m)
            for m in self.matrices)
        if not self.matrices:
            raise ValueError("a campaign needs at least one matrix")
        if not self.methods:
            raise ValueError("a campaign needs at least one method")

    @property
    def num_trials(self) -> int:
        return (len(self.matrices) * len(self.methods) * len(self.rates)
                * self.repetitions)

    def trial_seed(self, matrix: MatrixSpec, method: str, rate: float,
                   repetition: int) -> np.random.SeedSequence:
        """The per-trial seed material, keyed on cell *content*.

        The entropy is ``[campaign seed, sha256(cell token + repetition)
        words]`` rather than a spawn-by-flat-index child, so a trial's
        seed — and therefore its result and its store key — depends only
        on the campaign seed and what the trial *is*, never on where it
        sits in the expansion.  Adding a rate or a matrix to a sweep
        leaves every pre-existing trial's seed untouched, which is what
        makes warm-store campaigns incremental under grid growth.
        """
        token = (f"{matrix.content_token()}|method={method}|"
                 f"rate={float(rate)!r}|"
                 f"scenario={_scenario_token(self.scenario)}|"
                 f"rep={repetition}")
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        words = [int.from_bytes(digest[i:i + 4], "big")
                 for i in range(0, 16, 4)]
        return np.random.SeedSequence([self.seed, *words])

    def expand(self) -> List[TrialSpec]:
        """The flat, deterministic trial list with content-keyed seeds."""
        trials: List[TrialSpec] = []
        index = 0
        for matrix in self.matrices:
            for rate in self.rates:
                for method in self.methods:
                    for rep in range(self.repetitions):
                        trials.append(TrialSpec(
                            index=index, matrix=matrix, method=method,
                            rate=float(rate), repetition=rep,
                            seed=self.trial_seed(matrix, method, rate, rep),
                            knobs=self.knobs, scenario=self.scenario))
                        index += 1
        return trials

    def content_token(self) -> str:
        """Canonical token of the whole campaign grid (``name`` is
        cosmetic and absent, so renaming a campaign keeps its identity)."""
        mats = ";".join(m.content_token() for m in self.matrices)
        rates = ",".join(repr(float(r)) for r in self.rates)
        return (f"campaign/v1|seed={self.seed}|matrices=[{mats}]|"
                f"methods=[{','.join(self.methods)}]|rates=[{rates}]|"
                f"reps={self.repetitions}|"
                f"scenario={_scenario_token(self.scenario)}|"
                f"{self.knobs.content_token()}")

    def store_key(self) -> str:
        """Content address identifying this campaign (journal, shards)."""
        return content_hash(self.content_token())

    def describe(self) -> Dict[str, object]:
        """A JSON-friendly summary (logging, CLI)."""
        return {
            "name": self.name,
            "matrices": [m.label for m in self.matrices],
            "methods": list(self.methods),
            "rates": [float(r) for r in self.rates],
            "repetitions": self.repetitions,
            "seed": self.seed,
            "trials": self.num_trials,
        }


# ----------------------------------------------------------------------
# sharding
# ----------------------------------------------------------------------
def parse_shard(text: str) -> Tuple[int, int]:
    """Parse the CLI ``--shard i/N`` syntax into ``(index, count)``."""
    part, sep, total = text.partition("/")
    if not sep:
        raise ValueError(f"shard spec {text!r} must look like i/N "
                         f"(e.g. 0/4)")
    try:
        index, count = int(part), int(total)
    except ValueError:
        raise ValueError(f"shard spec {text!r}: both halves of i/N must "
                         f"be integers") from None
    if count <= 0:
        raise ValueError(f"shard count must be positive, got {count}")
    if not 0 <= index < count:
        raise ValueError(f"shard index {index} out of range for "
                         f"{count} shards (valid: 0..{count - 1})")
    return index, count


def shard_trials(trials: Sequence[TrialSpec], index: int,
                 count: int) -> List[TrialSpec]:
    """Shard ``index`` of ``count`` of an expanded trial list.

    Round-robin over the trial index, so every shard sees a balanced
    mix of cells (contiguous strips would give one shard all the
    expensive high-rate trials).  The selection depends only on the
    expansion order, which is deterministic, so N shard runs partition
    the campaign exactly; merging their partial results reproduces the
    unsharded fingerprint byte-for-byte.
    """
    index, count = int(index), int(count)
    if count <= 0:
        raise ValueError(f"shard count must be positive, got {count}")
    if not 0 <= index < count:
        raise ValueError(f"shard index {index} out of range for "
                         f"{count} shards")
    return [t for t in trials if t.index % count == index]
