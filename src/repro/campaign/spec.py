"""Declarative description of a fault-injection campaign.

A campaign is the paper's evaluation unit: a grid of

    matrix family x solver method x recovery strategy x fault scenario
    x error-rate x repetition

whose cells are *independent* solver trials (Figs. 4-5 are thousands of
them).  :class:`CampaignSpec` describes the grid declaratively;
:meth:`CampaignSpec.expand` turns it into a flat list of picklable
:class:`TrialSpec` objects, each carrying everything a worker process
needs to rebuild its problem and run its solve — including a private
:class:`numpy.random.SeedSequence` spawned from the campaign seed, so
results do not depend on which executor (serial, process pool, chunked)
runs the trials or in which order they complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config import (DEFAULT_MAX_ITERATIONS, DEFAULT_SEED,
                          DEFAULT_TOLERANCE, DEFAULT_WORKERS)
from repro.faults.scenarios import ErrorScenario
from repro.runtime.backend import BACKEND_NAMES
from repro.runtime.cost_model import DEFAULT_COST_MODEL, CostModel

def _operator_to_scipy(A):
    """SciPy CSR view of a SparseOperator (``sparse=False`` on a family
    that builds SciPy-free by default)."""
    import scipy.sparse as sp
    return sp.csr_matrix((A.data, A.indices, A.indptr), shape=A.shape)


#: Matrix families the campaign engine can build by name.  ``suite:*``
#: entries come from :data:`repro.matrices.suite.PAPER_MATRICES`;
#: ``laplacian1d``/``laplacian2d`` are built SciPy-free directly as
#: :class:`~repro.matrices.sparse.SparseOperator` CSR;
#: ``poisson2d``/``poisson3d27`` use the stencil generators.
MATRIX_FAMILIES = ("suite", "laplacian1d", "laplacian2d", "poisson2d",
                   "poisson3d27")


@dataclass(frozen=True)
class MatrixSpec:
    """One matrix family instance, rebuildable inside any worker process.

    ``family='suite'`` interprets ``name`` as a
    :data:`~repro.matrices.suite.PAPER_MATRICES` key; the parametric
    families use ``params`` (e.g. ``{'nx': 45, 'ny': 45}``).  With
    ``sparse=True`` the matrix is materialised as a SciPy-free
    :class:`~repro.matrices.sparse.SparseOperator`, the fast path that
    makes n >= 10^4 trials affordable.
    """

    family: str = "suite"
    name: str = ""
    params: Tuple[Tuple[str, int], ...] = ()
    sparse: bool = False
    rhs_seed: int = DEFAULT_SEED

    def __post_init__(self):
        if self.family not in MATRIX_FAMILIES:
            raise ValueError(f"unknown matrix family {self.family!r}; "
                             f"known families: {', '.join(MATRIX_FAMILIES)}")

    @property
    def label(self) -> str:
        if self.family == "suite":
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.family}({inner})"

    @classmethod
    def suite(cls, name: str, sparse: bool = False,
              rhs_seed: int = DEFAULT_SEED) -> "MatrixSpec":
        return cls(family="suite", name=name, sparse=sparse,
                   rhs_seed=rhs_seed)

    @classmethod
    def parametric(cls, family: str, sparse: bool = True,
                   rhs_seed: int = DEFAULT_SEED, **params: int) -> "MatrixSpec":
        return cls(family=family, name="",
                   params=tuple(sorted(params.items())), sparse=sparse,
                   rhs_seed=rhs_seed)

    @classmethod
    def parse(cls, text: str, sparse: bool = True) -> "MatrixSpec":
        """Parse CLI shorthand: ``qa8fm``, ``laplacian2d:45`` or
        ``laplacian2d:45x52``."""
        if ":" not in text:
            from repro.matrices.suite import PAPER_MATRICES
            if text not in PAPER_MATRICES:
                raise ValueError(
                    f"unknown suite matrix {text!r}; available: "
                    f"{', '.join(sorted(PAPER_MATRICES))} (or a parametric "
                    f"family like laplacian2d:45)")
            return cls.suite(text, sparse=sparse)
        family, _, args = text.partition(":")
        try:
            dims = [int(d) for d in args.lower().split("x") if d]
        except ValueError:
            raise ValueError(f"matrix spec {text!r}: dimensions after ':' "
                             f"must be integers (e.g. laplacian2d:45 or "
                             f"laplacian2d:64x32)") from None
        if not dims:
            raise ValueError(f"matrix spec {text!r} has no dimensions")
        if family == "laplacian1d":
            return cls.parametric("laplacian1d", sparse=sparse, n=dims[0])
        if family in ("laplacian2d", "poisson2d"):
            nx = dims[0]
            ny = dims[1] if len(dims) > 1 else dims[0]
            return cls.parametric(family, sparse=sparse, nx=nx, ny=ny)
        if family == "poisson3d27":
            return cls.parametric("poisson3d27", sparse=sparse, nx=dims[0])
        raise ValueError(f"unknown matrix family {family!r}")

    def build(self):
        """Materialise ``(A, b)`` for this spec (runs inside workers)."""
        from repro.matrices.sparse import (SparseOperator,
                                           laplacian_1d_operator,
                                           laplacian_2d_operator)
        from repro.matrices.stencil import stencil_rhs
        params = dict(self.params)
        if self.family == "suite":
            from repro.matrices.suite import PAPER_MATRICES
            A = PAPER_MATRICES[self.name].build()
            if self.sparse:
                A = SparseOperator.from_scipy(A)
        elif self.family == "laplacian1d":
            A = laplacian_1d_operator(params["n"], shift=1e-3)
            if not self.sparse:
                A = _operator_to_scipy(A)
        elif self.family == "laplacian2d":
            A = laplacian_2d_operator(params["nx"], params.get("ny"))
            if not self.sparse:
                A = _operator_to_scipy(A)
        elif self.family == "poisson2d":
            from repro.matrices.stencil import poisson_2d_5pt
            A = poisson_2d_5pt(params["nx"], params.get("ny"))
            if self.sparse:
                A = SparseOperator.from_scipy(A)
        elif self.family == "poisson3d27":
            from repro.matrices.stencil import poisson_3d_27pt
            A = poisson_3d_27pt(params["nx"])
            if self.sparse:
                A = SparseOperator.from_scipy(A)
        else:  # pragma: no cover - guarded by __post_init__
            raise ValueError(f"unknown matrix family {self.family!r}")
        b = stencil_rhs(A, kind="random", seed=self.rhs_seed)
        return A, b


@dataclass(frozen=True)
class SolverKnobs:
    """Solver configuration shared by every trial of a campaign."""

    tolerance: float = DEFAULT_TOLERANCE
    max_iterations: int = DEFAULT_MAX_ITERATIONS
    num_workers: int = DEFAULT_WORKERS
    page_size: int = 128
    work_scale: float = 200.0
    preconditioned: bool = False
    checkpoint_interval: Optional[int] = None
    record_history: bool = False
    cost_model: CostModel = DEFAULT_COST_MODEL
    #: Execution backend of every trial: ``"simulated"`` times the task
    #: graphs, ``"threaded"`` additionally executes them on real worker
    #: threads.  The simulated timeline (and hence every aggregate and
    #: the campaign fingerprint) is bit-identical either way.
    backend: str = "simulated"
    #: Wall-clock pacing of the threaded backend (see ``SolverConfig``).
    pace: float = 1.0
    #: Rank-parallel kernel execution inside each trial
    #: (``SolverConfig.ranks``); the reproducible reductions keep every
    #: aggregate and the campaign fingerprint bit-identical to 1 rank.
    ranks: int = 1

    def __post_init__(self):
        if self.backend not in BACKEND_NAMES:
            raise ValueError(f"unknown execution backend {self.backend!r}; "
                             f"known backends: {', '.join(BACKEND_NAMES)}")
        if self.ranks < 1:
            raise ValueError(f"ranks must be >= 1, got {self.ranks}")
        if self.ranks > 1 and self.backend != "simulated":
            raise ValueError(
                f"ranks={self.ranks} requires the 'simulated' backend; the "
                f"rank runtime owns the real kernel execution")


@dataclass(frozen=True)
class TrialSpec:
    """One independent solver run of the campaign grid (picklable)."""

    index: int
    matrix: MatrixSpec
    method: str
    rate: float
    repetition: int
    seed: np.random.SeedSequence
    knobs: SolverKnobs = SolverKnobs()
    #: Overrides the rate-based Poisson scenario when set (targeted
    #: injection grids; the per-trial seed is threaded in regardless).
    scenario: Optional[ErrorScenario] = None

    def make_scenario(self) -> ErrorScenario:
        """The concrete, per-trial-seeded scenario this trial runs."""
        if self.scenario is not None:
            return self.scenario.reseeded(self.seed)
        if self.rate <= 0:
            return ErrorScenario(name="fault-free", normalized_rate=0.0,
                                 seed=self.seed)
        return ErrorScenario(
            name=f"{self.matrix.label}-rate{self.rate:g}-rep{self.repetition}",
            normalized_rate=float(self.rate), seed=self.seed)


@dataclass
class CampaignSpec:
    """The declarative campaign grid.

    ``expand()`` enumerates matrices (outer) x rates x methods x
    repetitions (inner) in a deterministic order and spawns one
    independent child :class:`~numpy.random.SeedSequence` per trial from
    ``seed``.
    """

    matrices: Sequence[Union[MatrixSpec, str]] = ()
    methods: Sequence[str] = ("FEIR",)
    rates: Sequence[float] = (1.0,)
    repetitions: int = 1
    seed: int = DEFAULT_SEED
    knobs: SolverKnobs = field(default_factory=SolverKnobs)
    scenario: Optional[ErrorScenario] = None
    name: str = "campaign"

    def __post_init__(self):
        if self.repetitions <= 0:
            raise ValueError(f"repetitions must be positive, "
                             f"got {self.repetitions}")
        self.matrices = tuple(
            m if isinstance(m, MatrixSpec) else MatrixSpec.parse(m)
            for m in self.matrices)
        if not self.matrices:
            raise ValueError("a campaign needs at least one matrix")
        if not self.methods:
            raise ValueError("a campaign needs at least one method")

    @property
    def num_trials(self) -> int:
        return (len(self.matrices) * len(self.methods) * len(self.rates)
                * self.repetitions)

    def expand(self) -> List[TrialSpec]:
        """The flat, deterministic trial list with per-trial seed spawns."""
        children = np.random.SeedSequence(self.seed).spawn(self.num_trials)
        trials: List[TrialSpec] = []
        index = 0
        for matrix in self.matrices:
            for rate in self.rates:
                for method in self.methods:
                    for rep in range(self.repetitions):
                        trials.append(TrialSpec(
                            index=index, matrix=matrix, method=method,
                            rate=float(rate), repetition=rep,
                            seed=children[index], knobs=self.knobs,
                            scenario=self.scenario))
                        index += 1
        return trials

    def describe(self) -> Dict[str, object]:
        """A JSON-friendly summary (logging, CLI)."""
        return {
            "name": self.name,
            "matrices": [m.label for m in self.matrices],
            "methods": list(self.methods),
            "rates": [float(r) for r in self.rates],
            "repetitions": self.repetitions,
            "seed": self.seed,
            "trials": self.num_trials,
        }
