"""Content-addressed on-disk store for campaign artifacts.

Every artifact a campaign produces is a pure function of spec content:
built matrices are functions of :class:`~repro.campaign.spec.MatrixSpec`,
fault-free baselines of ``(matrix, knobs)``, and per-trial results of
the full :meth:`~repro.campaign.spec.TrialSpec.content_token`.  The
store exploits that by caching each artifact under the SHA-256 of its
canonical token, which makes campaigns

* **incremental** — re-running a sweep after adding one error rate only
  executes the new cells (content-keyed seeds, see
  ``CampaignSpec.trial_seed``, keep every old trial's address stable);
* **resumable** — workers persist every completed trial immediately, so
  an interrupted campaign restarts from its last persisted trial;
* **shared** — a quick sub-grid campaign warms the cache for the full
  sweep, across processes and across days.

Layout under the root (default ``~/.cache/repro-campaign``, overridable
via the ``REPRO_CAMPAIGN_STORE`` environment variable)::

    SCHEMA                      # {"schema": 1} — version guard
    trials/ab/<sha256>.json     # TrialResult payloads
    baselines/ab/<sha256>.json  # ideal fault-free solve times (hex floats)
    matrices/ab/<sha256>.npz    # built CSR matrices + right-hand sides
    scalars/ab/<sha256>.json    # generic derived scalars (fig5 calibration)
    journals/<sha256>.jsonl     # per-campaign progress journal

Correctness anchor: a cache hit must be *byte-identical* to a cold
computation.  JSON floats round-trip exactly in Python (``repr``-based),
baselines are stored as ``float.hex()``, and matrices as raw ``.npz``
arrays — the equivalence tests assert cold and warm fingerprints match
bit-for-bit.  Writes go through a same-directory temp file plus
``os.replace``, so concurrent workers (process pools, parallel shards
on a shared filesystem) never observe half-written artifacts.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

#: Version of the on-disk layout and of every artifact payload.  Bump on
#: any change to the serialization or to the content-token scheme.
STORE_SCHEMA_VERSION = 1

#: Environment variable overriding the store root directory.
STORE_ENV = "REPRO_CAMPAIGN_STORE"

#: Default store root (per-user, survives across campaigns).
DEFAULT_STORE_PATH = "~/.cache/repro-campaign"

#: Artifact kinds and their subdirectories.
_KINDS = ("trials", "baselines", "matrices", "scalars")

#: Default age beyond which ``gc`` prunes unreferenced entries (days).
GC_DEFAULT_DAYS = 30


class StoreSchemaError(RuntimeError):
    """The store (or an artifact file) was written by an incompatible
    schema version.  Deliberately *not* a ``ValueError``: callers must
    surface it as an operator problem ("delete or repoint the store"),
    never swallow it as a bad-input condition."""


def default_store_root() -> Path:
    """The store root honouring ``REPRO_CAMPAIGN_STORE``."""
    override = os.environ.get(STORE_ENV)
    if override is not None and override.strip():
        return Path(override).expanduser()
    return Path(DEFAULT_STORE_PATH).expanduser()


def _payload_checksum(body: dict) -> str:
    """Integrity checksum of a JSON artifact payload: SHA-256 of the
    canonical serialization of everything except the checksum itself."""
    canon = json.dumps({k: v for k, v in body.items() if k != "checksum"},
                       sort_keys=True)
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


@dataclass
class VerifyReport:
    """Outcome of :meth:`CampaignStore.verify`."""

    #: Entries whose integrity was positively confirmed.
    verified: int = 0
    #: Readable entries written before keys/checksums were embedded;
    #: they parse and carry the right schema but cannot be re-hashed.
    legacy: int = 0
    #: ``(kind, path, reason)`` of every corrupt entry found.
    corrupt: List[Tuple[str, str, str]] = field(default_factory=list)
    #: Corrupt entries deleted (``verify(remove=True)``).
    removed: int = 0

    @property
    def ok(self) -> bool:
        return not self.corrupt


class CampaignStore:
    """Content-addressed artifact store rooted at ``root``.

    Opening validates (or stamps) the schema version; all reads touch
    the entry's mtime so garbage collection can prune entries that no
    campaign has referenced for :data:`GC_DEFAULT_DAYS`.
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root).expanduser() if root is not None \
            else default_store_root()
        self.hits = 0
        self.misses = 0
        self._ensure_schema()

    # ------------------------------------------------------------------
    # schema guard
    # ------------------------------------------------------------------
    @property
    def _schema_path(self) -> Path:
        return self.root / "SCHEMA"

    def _ensure_schema(self) -> None:
        if self._schema_path.exists():
            try:
                payload = json.loads(self._schema_path.read_text())
                found = int(payload["schema"])
            except (ValueError, KeyError, TypeError):
                raise StoreSchemaError(
                    f"campaign store at {self.root} has an unreadable "
                    f"SCHEMA file; delete the directory or point "
                    f"{STORE_ENV} somewhere else") from None
            if found != STORE_SCHEMA_VERSION:
                raise StoreSchemaError(
                    f"campaign store at {self.root} was written by schema "
                    f"v{found}, but this version of repro uses "
                    f"v{STORE_SCHEMA_VERSION}; delete the directory or "
                    f"point {STORE_ENV} at a fresh one")
            return
        # repro-lint: allow[unordered-iter] emptiness probe, order never observed
        if self.root.exists() and any(self.root.iterdir()):
            raise StoreSchemaError(
                f"directory {self.root} exists, is not empty and has no "
                f"SCHEMA file — refusing to adopt it as a campaign store; "
                f"delete it or point {STORE_ENV} at a fresh directory")
        self.root.mkdir(parents=True, exist_ok=True)
        for kind in _KINDS:
            (self.root / kind).mkdir(exist_ok=True)
        (self.root / "journals").mkdir(exist_ok=True)
        self._atomic_write_text(
            self._schema_path,
            json.dumps({"schema": STORE_SCHEMA_VERSION}, sort_keys=True) + "\n")

    # ------------------------------------------------------------------
    # low-level helpers
    # ------------------------------------------------------------------
    def _path(self, kind: str, key: str, suffix: str = ".json") -> Path:
        return self.root / kind / key[:2] / f"{key}{suffix}"

    @staticmethod
    def _atomic_write_text(path: Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @staticmethod
    def _touch(path: Path) -> None:
        try:
            os.utime(path)
        except OSError:
            pass  # read-only shared store: hits still work, gc won't

    def _load_json(self, path: Path) -> Optional[dict]:
        """Read an artifact payload; unreadable entries self-heal as
        misses, incompatible schemas fail loudly."""
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (ValueError, OSError):
            try:
                path.unlink()
            except OSError:
                pass
            return None
        found = payload.get("schema")
        if found != STORE_SCHEMA_VERSION:
            raise StoreSchemaError(
                f"artifact {path} carries schema v{found}, expected "
                f"v{STORE_SCHEMA_VERSION}; run `python -m repro.campaign "
                f"store --gc --days 0` or delete the store at {self.root}")
        self._touch(path)
        return payload

    def _put_json(self, kind: str, key: str, payload: dict) -> None:
        body = {"schema": STORE_SCHEMA_VERSION, "key": key, **payload}
        # Self-describing integrity: the entry carries its own content
        # address ("key" — must match the filename) and a checksum over
        # the canonical serialization, so ``verify`` can detect both
        # misplaced and bit-rotted entries.  Readers ignore both fields;
        # pre-existing entries without them stay readable ("legacy").
        body["checksum"] = _payload_checksum(body)
        self._atomic_write_text(self._path(kind, key),
                                json.dumps(body, sort_keys=True))

    # ------------------------------------------------------------------
    # trials
    # ------------------------------------------------------------------
    def get_trial(self, key: str):
        """The cached :class:`TrialResult` under ``key``, or ``None``."""
        from repro.campaign.results import TrialResult
        payload = self._load_json(self._path("trials", key))
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return TrialResult(**payload["trial"])

    def put_trial(self, key: str, result) -> None:
        from dataclasses import asdict
        self._put_json("trials", key, {"trial": asdict(result)})

    # ------------------------------------------------------------------
    # fault-free baselines
    # ------------------------------------------------------------------
    def get_baseline(self, key: str) -> Optional[float]:
        payload = self._load_json(self._path("baselines", key))
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return float.fromhex(payload["ideal_time"])

    def put_baseline(self, key: str, ideal_time: float) -> None:
        self._put_json("baselines", key,
                       {"ideal_time": float(ideal_time).hex()})

    # ------------------------------------------------------------------
    # built matrices
    # ------------------------------------------------------------------
    def get_matrix(self, key: str):
        """The cached ``(A, b)`` problem under ``key``, or ``None``.

        Round-trips both CSR backends exactly: ``.npz`` stores the raw
        ``data``/``indices``/``indptr`` arrays, so a warm build is
        byte-identical to a cold one.
        """
        path = self._path("matrices", key, suffix=".npz")
        try:
            with np.load(path) as archive:
                kind = str(archive["kind"])
                shape = tuple(int(s) for s in archive["shape"])
                data, indices, indptr, b = (archive["data"],
                                            archive["indices"],
                                            archive["indptr"], archive["b"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, OSError, KeyError):
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self._touch(path)
        self.hits += 1
        if kind == "operator":
            from repro.matrices.sparse import SparseOperator
            return SparseOperator(data, indices, indptr, shape), b
        import scipy.sparse as sp
        return sp.csr_matrix((data, indices, indptr), shape=shape), b

    def put_matrix(self, key: str, A, b) -> None:
        from repro.matrices.sparse import SparseOperator
        kind = "operator" if isinstance(A, SparseOperator) else "scipy"
        path = self._path("matrices", key, suffix=".npz")
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, kind=kind, key=key,
                         shape=np.asarray(A.shape, dtype=np.int64),
                         data=A.data, indices=A.indices, indptr=A.indptr,
                         b=np.asarray(b))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # generic derived scalars (fig5 calibration iteration counts, ...)
    # ------------------------------------------------------------------
    def get_scalar(self, key: str):
        payload = self._load_json(self._path("scalars", key))
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload["value"]

    def put_scalar(self, key: str, value) -> None:
        self._put_json("scalars", key, {"value": value})

    # ------------------------------------------------------------------
    # journal
    # ------------------------------------------------------------------
    def journal_path(self, campaign_key: str) -> Path:
        return self.root / "journals" / f"{campaign_key}.jsonl"

    def journal_append(self, campaign_key: str, event: dict) -> None:
        """Append one event, crash-safely: the line is flushed and
        fsynced before returning, so a daemon (or worker) killed right
        after persisting a trial never leaves the journal behind the
        store.  The only loss mode is a torn *trailing* line (killed
        mid-append), which :meth:`journal_events` skips on read."""
        path = self.journal_path(campaign_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a") as handle:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def journal_events(self, campaign_key: str) -> Iterator[dict]:
        """Parsed journal events, oldest first.

        Resilient by construction — the daemon's resume path depends on
        it: a missing journal yields nothing, a truncated trailing line
        (crash mid-append) is skipped instead of raising, and so is any
        earlier undecodable line (torn by a crash of a pre-fsync
        version, or bit rot — ``verify`` reports those).
        """
        try:
            with open(self.journal_path(campaign_key)) as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return
        for line in lines:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                yield json.loads(stripped)
            except ValueError:
                # A torn final line is the expected crash artifact; an
                # unparseable earlier line is tolerated the same way so
                # one bad byte cannot hide the rest of the history.
                continue

    def journal_summary(self, campaign_key: str) -> Optional[Dict]:
        """Completed-trial count and last event of a prior run, if any.

        Events stamped with a campaign ``key`` must match
        ``campaign_key``: a journal file that was copied, renamed or
        left behind by tooling for a *different* spec is ignored
        entirely (``None``) rather than merged into the wrong campaign's
        resume report.
        """
        persisted = set()
        last = None
        for event in self.journal_events(campaign_key):
            stamped = event.get("key")
            if stamped is not None and stamped != campaign_key:
                return None
            last = event
            if event.get("event") == "trial":
                persisted.add(event.get("index"))
        if last is None:
            return None
        return {"persisted": len(persisted), "last": last}

    # ------------------------------------------------------------------
    # stats / maintenance
    # ------------------------------------------------------------------
    def describe(self) -> str:
        return f"store({self.root})"

    def stats_line(self) -> str:
        """Machine-greppable hit statistics (the CI store job parses
        this exact shape)."""
        total = self.hits + self.misses
        rate = (100.0 * self.hits / total) if total else 0.0
        return (f"store: root={self.root} hits={self.hits} "
                f"misses={self.misses} hit-rate={rate:.1f}%")

    def entry_count(self) -> Dict[str, int]:
        counts = {}
        for kind in _KINDS:
            base = self.root / kind
            counts[kind] = sum(1 for _ in sorted(base.glob("*/*"))) \
                if base.exists() else 0
        counts["journals"] = sum(
            1 for _ in sorted((self.root / "journals").glob("*.jsonl"))) \
            if (self.root / "journals").exists() else 0
        return counts

    def gc(self, days: float = GC_DEFAULT_DAYS,
           now: Optional[float] = None) -> Tuple[int, int]:
        """Prune entries unreferenced for ``days`` days.

        "Referenced" means read or written: every cache hit refreshes
        the entry's mtime, so an artifact some weekly sweep still relies
        on survives indefinitely while abandoned grids age out.
        Returns ``(removed, kept)``.
        """
        if days < 0:
            raise ValueError(f"gc age must be non-negative, got {days}")
        # repro-lint: allow[wall-clock] gc cutoff default; callers/CLI pass now= for determinism
        cutoff = (now if now is not None else time.time()) - days * 86400.0
        removed = kept = 0
        for kind in (*_KINDS, "journals"):
            base = self.root / kind
            if not base.exists():
                continue
            pattern = "*.jsonl" if kind == "journals" else "*/*"
            for path in sorted(base.glob(pattern)):
                try:
                    if path.stat().st_mtime < cutoff:
                        path.unlink()
                        removed += 1
                    else:
                        kept += 1
                except OSError:
                    continue
        return removed, kept

    # ------------------------------------------------------------------
    # integrity verification
    # ------------------------------------------------------------------
    def _verify_json_entry(self, path: Path) -> Tuple[str, str]:
        """``("ok"|"legacy"|"corrupt", reason)`` for one JSON artifact."""
        try:
            payload = json.loads(path.read_text())
        except (ValueError, OSError) as exc:
            return "corrupt", f"unreadable JSON: {exc}"
        if not isinstance(payload, dict):
            return "corrupt", "payload is not an object"
        if payload.get("schema") != STORE_SCHEMA_VERSION:
            return "corrupt", (f"schema v{payload.get('schema')}, "
                               f"expected v{STORE_SCHEMA_VERSION}")
        key = payload.get("key")
        checksum = payload.get("checksum")
        if key is None and checksum is None:
            return "legacy", "entry predates embedded keys/checksums"
        if key is not None and key != path.stem:
            return "corrupt", (f"embedded key {key[:12]}... does not match "
                               f"filename {path.stem[:12]}...")
        if checksum is not None and checksum != _payload_checksum(payload):
            return "corrupt", "payload checksum mismatch (bit rot?)"
        return "ok", ""

    def _verify_matrix_entry(self, path: Path) -> Tuple[str, str]:
        try:
            with np.load(path) as archive:
                names = set(archive.files)
                for name in names:
                    _ = archive[name]  # force decompression => zip CRC check
                key = str(archive["key"]) if "key" in names else None
        except Exception as exc:  # noqa: BLE001 - any load failure = corrupt
            return "corrupt", f"unreadable npz: {exc}"
        if key is None:
            return "legacy", "matrix predates embedded keys"
        if key != path.stem:
            return "corrupt", (f"embedded key {key[:12]}... does not match "
                               f"filename {path.stem[:12]}...")
        return "ok", ""

    def _verify_journal_entry(self, path: Path) -> Tuple[str, str]:
        try:
            lines = path.read_text().splitlines()
        except (OSError, UnicodeDecodeError) as exc:
            return "corrupt", f"unreadable journal: {exc}"
        for position, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                json.loads(line)
            except ValueError:
                if position == len(lines) - 1:
                    # Torn tail from a crash mid-append: expected, and
                    # journal_events already skips it on read.
                    return "ok", ""
                return "corrupt", f"undecodable line {position + 1}"
        return "ok", ""

    def verify(self, remove: bool = False) -> VerifyReport:
        """Re-check every stored entry against its content-token
        filename and embedded checksum.

        JSON artifacts must parse, carry the current schema, and (for
        entries written by this version) embed a ``key`` equal to their
        filename plus a checksum over their canonical serialization.
        Matrices must pass the ``.npz`` zip CRC on every member and
        match their embedded key; journals must be line-decodable except
        for a torn trailing line.  ``remove=True`` deletes corrupt
        entries (they become plain cache misses — the store recomputes
        them on the next campaign).
        """
        report = VerifyReport()
        checkers = {kind: self._verify_json_entry for kind in _KINDS}
        checkers["matrices"] = self._verify_matrix_entry
        for kind in _KINDS:
            base = self.root / kind
            if not base.exists():
                continue
            suffix = ".npz" if kind == "matrices" else ".json"
            for path in sorted(base.glob(f"*/*{suffix}")):
                verdict, reason = checkers[kind](path)
                self._verify_record(report, kind, path, verdict, reason,
                                    remove)
        journals = self.root / "journals"
        if journals.exists():
            for path in sorted(journals.glob("*.jsonl")):
                verdict, reason = self._verify_journal_entry(path)
                self._verify_record(report, "journals", path, verdict,
                                    reason, remove)
        return report

    @staticmethod
    def _verify_record(report: VerifyReport, kind: str, path: Path,
                       verdict: str, reason: str, remove: bool) -> None:
        if verdict == "ok":
            report.verified += 1
        elif verdict == "legacy":
            report.legacy += 1
        else:
            report.corrupt.append((kind, str(path), reason))
            if remove:
                try:
                    path.unlink()
                    report.removed += 1
                except OSError:
                    pass


# ----------------------------------------------------------------------
# per-process store cache (worker processes reuse one handle)
# ----------------------------------------------------------------------
_STORE_CACHE: Dict[str, CampaignStore] = {}


def open_store(root: Optional[os.PathLike] = None) -> CampaignStore:
    """A per-process cached :class:`CampaignStore` for ``root``.

    Pool workers call this once per trial; caching the handle keeps the
    schema check off the per-trial path and lets hit/miss counters
    aggregate per process.
    """
    resolved = str(Path(root).expanduser() if root is not None
                   else default_store_root())
    store = _STORE_CACHE.get(resolved)
    if store is None:
        store = CampaignStore(resolved)
        _STORE_CACHE[resolved] = store
    return store


def clear_store_cache() -> None:
    """Forget per-process store handles (tests)."""
    _STORE_CACHE.clear()
