"""Command-line campaign runner.

Usage::

    python -m repro.campaign --matrix laplacian2d:45 --methods FEIR AFEIR \
        --rates 1 10 --trials 8 --executor process --workers 4

    python -m repro.campaign --matrix qa8fm --trials 4 --executor serial

    # shard a campaign across machines, then merge the partials:
    python -m repro.campaign --matrix qa8fm --trials 8 \
        --shard 0/2 --out shard0.json
    python -m repro.campaign --matrix qa8fm --trials 8 \
        --shard 1/2 --out shard1.json
    python -m repro.campaign merge shard0.json shard1.json

    # store maintenance:
    python -m repro.campaign store --info
    python -m repro.campaign store --gc --days 30

Prints the aggregated slowdown table plus the result fingerprint; the
fingerprint is identical across executors — and across cold/warm store
runs, and across shard-and-merge versus single-process runs — for the
same spec and seed, which the CI jobs assert.

The content-addressed store (default ``~/.cache/repro-campaign``,
overridable via ``REPRO_CAMPAIGN_STORE``) is on by default: re-running
an unchanged campaign executes zero trials, and an interrupted campaign
resumes from its last persisted trial.  ``--no-store`` opts out.
"""

from __future__ import annotations

import argparse
import sys

from repro.campaign.engine import run_campaign
from repro.campaign.executors import EXECUTOR_NAMES, make_executor
from repro.campaign.results import CampaignResult
from repro.campaign.spec import CampaignSpec, SolverKnobs, parse_shard
from repro.campaign.store import (GC_DEFAULT_DAYS, CampaignStore,
                                  StoreSchemaError, default_store_root)
from repro.config import DEFAULT_SEED
from repro.runtime.backend import BACKEND_NAMES
from repro.runtime.runtime import (CLOCK_NAMES, PLACEMENT_NAMES,
                                   SCHEDULER_NAMES)

SUBCOMMANDS = ("run", "merge", "store")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Run a fault-injection campaign over the resilient CG.")
    parser.add_argument("--matrix", nargs="+", default=["laplacian2d:45"],
                        help="matrix specs: suite names (qa8fm) or "
                             "parametric families (laplacian2d:45, "
                             "laplacian2d:64x32, poisson3d27:12)")
    parser.add_argument("--methods", nargs="+",
                        default=["FEIR"],
                        help="recovery methods (FEIR AFEIR Lossy ckpt "
                             "Trivial)")
    parser.add_argument("--rates", nargs="+", type=float, default=[1.0],
                        help="normalised error rates")
    parser.add_argument("--trials", type=int, default=1,
                        help="repetitions per (matrix, method, rate) cell")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="campaign master seed")
    parser.add_argument("--executor", choices=EXECUTOR_NAMES,
                        default="serial")
    parser.add_argument("--backend", choices=BACKEND_NAMES,
                        default="simulated",
                        help="deprecated alias for the runtime axes: "
                             "'simulated' = --scheduler list --clock "
                             "simulated, 'threaded' = --scheduler threaded "
                             "--clock wall; explicit axes win")
    parser.add_argument("--ranks", type=int, default=1,
                        help="rank-parallel kernel execution inside each "
                             "trial: strip-partitioned spmv with real halo "
                             "exchange and tree allreduces; results and the "
                             "fingerprint are bit-identical to --ranks 1 "
                             "(>1 implies --placement ranks)")
    parser.add_argument("--scheduler", choices=SCHEDULER_NAMES, default=None,
                        help="runtime scheduler axis: 'list' (discrete-event "
                             "only) or 'threaded' (graphs additionally "
                             "execute on real threads; same fingerprint)")
    parser.add_argument("--placement", choices=PLACEMENT_NAMES, default=None,
                        help="runtime placement axis: 'local' (single "
                             "address space) or 'ranks' (strip-partitioned "
                             "kernels over rank workers)")
    parser.add_argument("--clock", choices=CLOCK_NAMES, default=None,
                        help="runtime clock axis: 'simulated' (report only "
                             "the deterministic timeline) or 'wall' (also "
                             "measure real wall intervals)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool worker count (pool executors only)")
    parser.add_argument("--chunk-size", type=int, default=None,
                        help="trials per pool task (chunked executor only)")
    parser.add_argument("--tolerance", type=float, default=1e-8)
    parser.add_argument("--max-iterations", type=int, default=20000)
    parser.add_argument("--page-size", type=int, default=128)
    parser.add_argument("--preconditioned", action="store_true")
    parser.add_argument("--shard", type=parse_shard, default=None,
                        metavar="I/N",
                        help="run only the I-th of N round-robin shards of "
                             "the trial grid; write the partial result with "
                             "--out and combine the shards with the merge "
                             "subcommand (byte-identical to an unsharded "
                             "run)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the (possibly partial) campaign result "
                             "to FILE as JSON")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="content-addressed store directory (default: "
                             "REPRO_CAMPAIGN_STORE or "
                             "~/.cache/repro-campaign)")
    parser.add_argument("--no-store", action="store_true",
                        help="bypass the campaign store entirely (every "
                             "trial executes, nothing is persisted)")
    parser.add_argument("--resume", action="store_true",
                        help="report what a previous (possibly interrupted) "
                             "run of this campaign already persisted before "
                             "continuing from it; purely informational — "
                             "with the store on, completed trials are "
                             "always reused")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-trial progress lines")
    return parser


def build_merge_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign merge",
        description="Merge sharded partial campaign results into one "
                    "aggregate whose fingerprint is byte-identical to an "
                    "unsharded run.")
    parser.add_argument("partials", nargs="+", metavar="PARTIAL.json",
                        help="partial result files written by --shard/--out")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the merged result to FILE as JSON")
    parser.add_argument("--allow-incomplete", action="store_true",
                        help="merge even if the shards do not cover the "
                             "full campaign grid")
    return parser


def build_store_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign store",
        description="Inspect or garbage-collect the campaign store.")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="store directory (default: "
                             "REPRO_CAMPAIGN_STORE or "
                             "~/.cache/repro-campaign)")
    parser.add_argument("--info", action="store_true",
                        help="print entry counts per artifact kind")
    parser.add_argument("--verify", action="store_true",
                        help="re-check every entry against its "
                             "content-token filename and embedded "
                             "checksum; exit 1 if any entry is corrupt")
    parser.add_argument("--remove", action="store_true",
                        help="with --verify: delete corrupt entries "
                             "(they become plain cache misses)")
    parser.add_argument("--gc", action="store_true",
                        help="prune entries unreferenced for --days days")
    parser.add_argument("--days", type=float, default=GC_DEFAULT_DAYS,
                        help=f"gc age threshold in days (default "
                             f"{GC_DEFAULT_DAYS}; reads refresh an entry's "
                             f"age)")
    parser.add_argument("--now", type=float, default=None, metavar="EPOCH",
                        help="with --gc: epoch seconds to treat as the "
                             "current time (default: the wall clock); "
                             "makes cutoff behaviour reproducible")
    return parser


def _open_store(path) -> CampaignStore:
    return CampaignStore(path if path is not None else default_store_root())


def main_run(argv) -> int:
    args = build_parser().parse_args(argv)
    try:
        spec = CampaignSpec(
            matrices=list(args.matrix), methods=list(args.methods),
            rates=list(args.rates), repetitions=args.trials, seed=args.seed,
            knobs=SolverKnobs(tolerance=args.tolerance,
                              max_iterations=args.max_iterations,
                              page_size=args.page_size,
                              preconditioned=args.preconditioned,
                              backend=args.backend,
                              ranks=args.ranks,
                              scheduler=args.scheduler,
                              placement=args.placement,
                              clock=args.clock),
            name="cli")
        executor = make_executor(args.executor, max_workers=args.workers,
                                 chunk_size=args.chunk_size)
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    store = None
    if not args.no_store:
        try:
            store = _open_store(args.store)
        except StoreSchemaError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    print(f"campaign: {spec.describe()}")
    print(f"executor: {executor.describe()}")
    if args.shard:
        print(f"shard: {args.shard[0]}/{args.shard[1]}")
    if store is not None and args.resume:
        summary = store.journal_summary(spec.store_key())
        if summary is None:
            print("resume: no previous journal for this campaign — "
                  "starting fresh")
        else:
            print(f"resume: previous run persisted "
                  f"{summary['persisted']} trial(s) "
                  f"(last event: {summary['last'].get('event')})")

    def progress(trial, done, total):
        status = "ok" if trial.converged else "DIVERGED"
        print(f"  [{done}/{total}] {trial.matrix} {trial.method} "
              f"rate={trial.rate:g} rep={trial.repetition}: {status} "
              f"({trial.iterations} it, {trial.wall_time:.2f}s wall)")

    try:
        result = run_campaign(spec, executor=executor,
                              progress=None if args.quiet else progress,
                              store=store, shard=args.shard)
    except StoreSchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print()
    print(result.format())
    print(f"\ntrials: {len(result)}  wall time: {result.wall_time:.2f}s")
    if store is not None:
        print(f"{store.stats_line()}")
        print(f"executed: {result.executed}  cache-hits: "
              f"{result.cache_hits}")
    print(f"fingerprint: {result.fingerprint()}")
    if args.out:
        result.save(args.out)
        print(f"wrote: {args.out}")
    return 0


def main_merge(argv) -> int:
    args = build_merge_parser().parse_args(argv)
    try:
        parts = [CampaignResult.load(path) for path in args.partials]
        merged = CampaignResult.merge(
            parts, require_complete=not args.allow_incomplete)
    except StoreSchemaError as exc:
        print(f"error: incompatible result schema — {exc}", file=sys.stderr)
        return 2
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(merged.format())
    print(f"\ntrials: {len(merged)} (from {len(parts)} partials)")
    print(f"fingerprint: {merged.fingerprint()}")
    if args.out:
        merged.save(args.out)
        print(f"wrote: {args.out}")
    return 0


def main_store(argv) -> int:
    args = build_store_parser().parse_args(argv)
    if not (args.info or args.gc or args.verify):
        print("error: nothing to do — pass --info, --verify and/or --gc",
              file=sys.stderr)
        return 2
    if args.remove and not args.verify:
        print("error: --remove only makes sense with --verify",
              file=sys.stderr)
        return 2
    try:
        store = _open_store(args.store)
    except StoreSchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.info:
        counts = store.entry_count()
        print(f"store: {store.root}")
        for kind, count in sorted(counts.items()):
            print(f"  {kind}: {count}")
    corrupt_found = False
    if args.verify:
        report = store.verify(remove=args.remove)
        print(f"verify: {report.verified} verified, {report.legacy} legacy "
              f"(pre-checksum), {len(report.corrupt)} corrupt"
              + (f", {report.removed} removed" if args.remove else ""))
        for kind, path, reason in report.corrupt:
            print(f"  corrupt {kind}: {path} — {reason}")
        corrupt_found = not report.ok
    if args.gc:
        try:
            removed, kept = store.gc(days=args.days, now=args.now)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"gc: removed {removed} entr{'y' if removed == 1 else 'ies'} "
              f"unreferenced for {args.days:g} days, kept {kept}")
    return 1 if corrupt_found else 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "merge":
        return main_merge(argv[1:])
    if argv and argv[0] == "store":
        return main_store(argv[1:])
    if argv and argv[0] == "run":
        argv = argv[1:]
    return main_run(argv)


if __name__ == "__main__":
    sys.exit(main())
