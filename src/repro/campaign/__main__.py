"""Command-line campaign runner.

Usage::

    python -m repro.campaign --matrix laplacian2d:45 --methods FEIR AFEIR \
        --rates 1 10 --trials 8 --executor process --workers 4

    python -m repro.campaign --matrix qa8fm --trials 4 --executor serial

Prints the aggregated slowdown table plus the result fingerprint; the
fingerprint is identical across executors for the same spec and seed,
which the CI smoke job asserts.
"""

from __future__ import annotations

import argparse
import sys

from repro.campaign.engine import run_campaign
from repro.campaign.executors import EXECUTOR_NAMES, make_executor
from repro.campaign.spec import CampaignSpec, SolverKnobs
from repro.config import DEFAULT_SEED
from repro.runtime.backend import BACKEND_NAMES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Run a fault-injection campaign over the resilient CG.")
    parser.add_argument("--matrix", nargs="+", default=["laplacian2d:45"],
                        help="matrix specs: suite names (qa8fm) or "
                             "parametric families (laplacian2d:45, "
                             "laplacian2d:64x32, poisson3d27:12)")
    parser.add_argument("--methods", nargs="+",
                        default=["FEIR"],
                        help="recovery methods (FEIR AFEIR Lossy ckpt "
                             "Trivial)")
    parser.add_argument("--rates", nargs="+", type=float, default=[1.0],
                        help="normalised error rates")
    parser.add_argument("--trials", type=int, default=1,
                        help="repetitions per (matrix, method, rate) cell")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="campaign master seed")
    parser.add_argument("--executor", choices=EXECUTOR_NAMES,
                        default="serial")
    parser.add_argument("--backend", choices=BACKEND_NAMES,
                        default="simulated",
                        help="task-graph execution backend inside each "
                             "trial: 'simulated' (discrete-event only) or "
                             "'threaded' (real concurrent execution; same "
                             "fingerprint)")
    parser.add_argument("--ranks", type=int, default=1,
                        help="rank-parallel kernel execution inside each "
                             "trial: strip-partitioned spmv with real halo "
                             "exchange and tree allreduces; results and the "
                             "fingerprint are bit-identical to --ranks 1")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool worker count (pool executors only)")
    parser.add_argument("--chunk-size", type=int, default=None,
                        help="trials per pool task (chunked executor only)")
    parser.add_argument("--tolerance", type=float, default=1e-8)
    parser.add_argument("--max-iterations", type=int, default=20000)
    parser.add_argument("--page-size", type=int, default=128)
    parser.add_argument("--preconditioned", action="store_true")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-trial progress lines")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        spec = CampaignSpec(
            matrices=list(args.matrix), methods=list(args.methods),
            rates=list(args.rates), repetitions=args.trials, seed=args.seed,
            knobs=SolverKnobs(tolerance=args.tolerance,
                              max_iterations=args.max_iterations,
                              page_size=args.page_size,
                              preconditioned=args.preconditioned,
                              backend=args.backend,
                              ranks=args.ranks),
            name="cli")
        executor = make_executor(args.executor, max_workers=args.workers,
                                 chunk_size=args.chunk_size)
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"campaign: {spec.describe()}")
    print(f"executor: {executor.describe()}")

    def progress(trial, done, total):
        status = "ok" if trial.converged else "DIVERGED"
        print(f"  [{done}/{total}] {trial.matrix} {trial.method} "
              f"rate={trial.rate:g} rep={trial.repetition}: {status} "
              f"({trial.iterations} it, {trial.wall_time:.2f}s wall)")

    result = run_campaign(spec, executor=executor,
                          progress=None if args.quiet else progress)
    print()
    print(result.format())
    print(f"\ntrials: {len(result)}  wall time: {result.wall_time:.2f}s")
    print(f"fingerprint: {result.fingerprint()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
