"""Global configuration constants for the reproduction.

The paper's error model operates at memory-page granularity: a DUE makes
the OS discard a whole 4 KiB page, i.e. 512 double-precision values
(Section 2.3 of the paper).  All page-blocked data structures, recovery
relations and fault injectors in this package share these constants.
"""

from __future__ import annotations

#: Number of float64 values per memory page (4096 bytes / 8 bytes).
PAGE_DOUBLES: int = 512

#: Bytes per memory page.
PAGE_BYTES: int = PAGE_DOUBLES * 8

#: Default convergence threshold used throughout the paper's evaluation
#: (relative residual ||Ax - b|| / ||b||, Section 5.4).
DEFAULT_TOLERANCE: float = 1e-10

#: Default maximum iterations safeguard for solvers.
DEFAULT_MAX_ITERATIONS: int = 20_000

#: Default seed so experiments are reproducible run-to-run.
DEFAULT_SEED: int = 20150715

#: Default number of workers, matching the paper's single-socket setup
#: (Intel Xeon E5-2670, 8 cores, Section 5.1).
DEFAULT_WORKERS: int = 8

#: Names of the dynamic (protected, fault-injectable) CG vectors.
PROTECTED_CG_VECTORS = ("x", "g", "d0", "d1", "q")
