"""Global configuration constants for the reproduction.

The paper's error model operates at memory-page granularity: a DUE makes
the OS discard a whole 4 KiB page, i.e. 512 double-precision values
(Section 2.3 of the paper).  All page-blocked data structures, recovery
relations and fault injectors in this package share these constants.
"""

from __future__ import annotations

import os
from typing import Optional

#: Number of float64 values per memory page (4096 bytes / 8 bytes).
PAGE_DOUBLES: int = 512

#: Bytes per memory page.
PAGE_BYTES: int = PAGE_DOUBLES * 8

#: Default convergence threshold used throughout the paper's evaluation
#: (relative residual ||Ax - b|| / ||b||, Section 5.4).
DEFAULT_TOLERANCE: float = 1e-10

#: Default maximum iterations safeguard for solvers.
DEFAULT_MAX_ITERATIONS: int = 20_000

#: Default seed so experiments are reproducible run-to-run.
DEFAULT_SEED: int = 20150715

#: Default number of workers, matching the paper's single-socket setup
#: (Intel Xeon E5-2670, 8 cores, Section 5.1).
DEFAULT_WORKERS: int = 8

#: Names of the dynamic (protected, fault-injectable) CG vectors.
PROTECTED_CG_VECTORS = ("x", "g", "d0", "d1", "q")

#: Environment variable capping every real worker pool (campaign process
#: pools, threaded execution backend) so shared CI runners are not
#: oversubscribed.  Must be a positive integer when set.
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"


def max_workers_override() -> Optional[int]:
    """The :data:`MAX_WORKERS_ENV` cap, or ``None`` when unset/blank."""
    raw = os.environ.get(MAX_WORKERS_ENV)
    if raw is None or not raw.strip():
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{MAX_WORKERS_ENV} must be an integer, "
                         f"got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"{MAX_WORKERS_ENV} must be positive, got {value}")
    return value


def resolve_worker_count(requested: Optional[int] = None) -> int:
    """Real (OS-level) worker count for pools and thread backends.

    ``requested=None`` means "all cores".  The result is always capped by
    :func:`max_workers_override` and is at least 1.  An explicit
    non-positive request is an error rather than a silent fallback.
    """
    if requested is not None and requested <= 0:
        raise ValueError(f"worker count must be positive, got {requested}")
    cores = max(1, os.cpu_count() or 1)
    count = requested if requested is not None else cores
    cap = max_workers_override()
    if cap is not None:
        count = min(count, cap)
    return max(1, count)
