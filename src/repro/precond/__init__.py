"""Preconditioners.

The paper's preconditioned experiments use block-Jacobi with page-sized
(512 x 512) diagonal blocks, chosen because it is trivially applicable to
a subset of a vector (partial application, needed for cheap recovery of
preconditioned vectors, Section 3.2) and because its factorised diagonal
blocks double as the factors needed by the recovery interpolation.
"""

from repro.precond.base import Preconditioner
from repro.precond.block_jacobi import BlockJacobiPreconditioner
from repro.precond.identity import IdentityPreconditioner
from repro.precond.jacobi import JacobiPreconditioner

__all__ = [
    "BlockJacobiPreconditioner",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "Preconditioner",
]
