"""Point-Jacobi (diagonal) preconditioner."""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.precond.base import Preconditioner


class JacobiPreconditioner(Preconditioner):
    """``M = diag(A)``; applying it is an element-wise division."""

    def __init__(self, A: sp.spmatrix):
        diag = sp.csr_matrix(A).diagonal()
        if np.any(diag == 0):
            raise ValueError("Jacobi preconditioner requires a nonzero diagonal")
        self._inv_diag = 1.0 / diag

    def apply(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=np.float64)
        if v.shape[0] != self._inv_diag.shape[0]:
            raise ValueError(f"vector length {v.shape[0]} does not match "
                             f"matrix order {self._inv_diag.shape[0]}")
        return v * self._inv_diag

    def apply_partial(self, v: np.ndarray, rows: Sequence[int]) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        v = np.asarray(v, dtype=np.float64)
        return v[rows] * self._inv_diag[rows]

    @property
    def supports_partial(self) -> bool:
        return True
