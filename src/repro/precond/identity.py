"""Identity (no-op) preconditioner, used by the non-preconditioned CG."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.precond.base import Preconditioner


class IdentityPreconditioner(Preconditioner):
    """``M = I``: preconditioning returns its input unchanged."""

    def apply(self, v: np.ndarray) -> np.ndarray:
        return np.array(v, dtype=np.float64, copy=True)

    def apply_partial(self, v: np.ndarray, rows: Sequence[int]) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        return np.array(v, dtype=np.float64)[rows]

    @property
    def supports_partial(self) -> bool:
        return True
