"""Preconditioner interface."""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np


class Preconditioner(abc.ABC):
    """Solves ``M z = v`` (the generic preconditioning operation of §3.2).

    Besides the usual full application, resilient solvers need *partial*
    application: re-solving only the rows needed to regenerate a lost
    page of the preconditioned vector.  Preconditioners that can do this
    cheaply (block-diagonal ones in particular) override
    :meth:`apply_partial`; the default falls back to a full apply, which
    is "a viable, though slow, forward recovery" as the paper puts it.
    """

    @abc.abstractmethod
    def apply(self, v: np.ndarray) -> np.ndarray:
        """Return ``z`` with ``M z = v``."""

    def apply_partial(self, v: np.ndarray, rows: Sequence[int]) -> np.ndarray:
        """Return the entries ``z[rows]`` of the solution of ``M z = v``.

        ``rows`` is a sorted sequence of global row indices (typically one
        memory page).  The default implementation recomputes everything.
        """
        full = self.apply(v)
        return full[np.asarray(rows, dtype=np.int64)]

    @property
    def supports_partial(self) -> bool:
        """True if :meth:`apply_partial` is cheaper than a full apply."""
        return False

    @property
    def name(self) -> str:
        return type(self).__name__
