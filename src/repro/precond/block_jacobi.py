"""Block-Jacobi preconditioner with page-aligned blocks.

The paper's preconditioned CG uses diagonal blocks of 512 x 512 elements
so that the block size coincides with the memory page size; then the
factorisation of diagonal blocks needed by the exact recovery
interpolation is already available from the preconditioner (Section 5.1).
This class therefore exposes its :class:`PageBlockedMatrix` so the
recovery code can reuse the cached LU factors.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
import scipy.sparse as sp

from repro.config import PAGE_DOUBLES
from repro.matrices.blocked import PageBlockedMatrix
from repro.memory.pages import page_of_index
from repro.precond.base import Preconditioner


class BlockJacobiPreconditioner(Preconditioner):
    """``M = blockdiag(A_00, ..., A_kk)`` with page-sized blocks."""

    def __init__(self, A: sp.spmatrix, page_size: int = PAGE_DOUBLES,
                 blocked: PageBlockedMatrix = None):
        if blocked is not None:
            self.blocked = blocked
        else:
            self.blocked = PageBlockedMatrix(A, page_size=page_size)
        # Factorise everything up front: the paper counts this as constant
        # (setup) data, reloadable from a reliable store.
        self.blocked.precompute_factors()

    @property
    def page_size(self) -> int:
        return self.blocked.page_size

    @property
    def num_blocks(self) -> int:
        return self.blocked.num_blocks

    # ------------------------------------------------------------------
    def apply(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=np.float64)
        if v.shape[0] != self.blocked.n:
            raise ValueError(f"vector length {v.shape[0]} does not match "
                             f"matrix order {self.blocked.n}")
        out = np.empty_like(v)
        for block in range(self.blocked.num_blocks):
            sl = self.blocked.block_slice(block)
            out[sl] = self.blocked.solve_diag(block, v[sl])
        return out

    def apply_block(self, v: np.ndarray, block: int) -> np.ndarray:
        """Apply only diagonal block ``block``: solve ``A_bb z_b = v_b``."""
        sl = self.blocked.block_slice(block)
        return self.blocked.solve_diag(block, np.asarray(v)[sl])

    def apply_partial(self, v: np.ndarray, rows: Sequence[int]) -> np.ndarray:
        """Recompute only the blocks that contain ``rows``.

        This is the partial application of Section 3.2: for a
        block-diagonal M, solving ``M u = v`` "only on the set of blocks
        that supersedes the lost data" regenerates the lost entries.
        """
        rows = np.asarray(rows, dtype=np.int64)
        blocks: List[int] = sorted({page_of_index(int(r), self.page_size)
                                    for r in rows})
        partial = {}
        for block in blocks:
            sl = self.blocked.block_slice(block)
            partial[block] = (sl.start, self.apply_block(v, block))
        out = np.empty(rows.shape[0], dtype=np.float64)
        for k, r in enumerate(rows):
            block = page_of_index(int(r), self.page_size)
            start, values = partial[block]
            out[k] = values[int(r) - start]
        return out

    @property
    def supports_partial(self) -> bool:
        return True
