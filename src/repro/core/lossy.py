"""The Lossy Restart (Section 4.3), adapted from Langou et al.'s Lossy Approach.

When part of the iterate ``x`` is lost, a block-Jacobi step interpolates
a replacement from the constant data and the surviving parts of ``x``:

    ``A_ii x_i = b_i - sum_{j != i} A_ij x_j``

(this is the iterate relation of Table 1 *with the residual discarded*).
After the interpolation the residual is outdated, so the Krylov method
must restart from the interpolated iterate.  Losses in any other dynamic
vector are handled by restarting with the intact iterate.

The module also provides the quantities used by the theorems of
Section 4.3: the A-norm of the error and the interpolation operator, so
the property-based tests can check

* Theorem 1/2: the interpolation does not increase ``||e||_A`` (SPD case);
* Theorem 3: it *minimises* ``||e||_A`` over all possible values of the
  lost block — the paper's new contribution.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.strategy import RecoveryOutcome, RecoveryStrategy
from repro.matrices.blocked import PageBlockedMatrix
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL


# ----------------------------------------------------------------------
# pure functions (used by the strategy and by the theorem tests)
# ----------------------------------------------------------------------
def lossy_interpolate(blocked: PageBlockedMatrix, b: np.ndarray, x: np.ndarray,
                      pages: Sequence[int]) -> np.ndarray:
    """Block-Jacobi interpolation of the lost ``pages`` of the iterate.

    Returns a new iterate equal to ``x`` outside the lost pages and to
    ``A_ii^{-1} (b_i - sum_{j != i} A_ij x_j)`` on each lost page.  The
    contents of ``x`` on the lost pages are ignored (they are gone).
    """
    pages = sorted(set(int(p) for p in pages))
    if not pages:
        return np.array(x, copy=True)
    x_new = np.array(x, copy=True)
    # Zero the lost pages first so their (meaningless) contents do not
    # leak into the off-diagonal products of *other* lost pages.
    for page in pages:
        x_new[blocked.block_slice(page)] = 0.0
    interpolated = {}
    for page in pages:
        sl = blocked.block_slice(page)
        rhs = b[sl] - blocked.offdiag_product(page, x_new)
        interpolated[page] = blocked.solve_diag(page, rhs)
    for page, values in interpolated.items():
        x_new[blocked.block_slice(page)] = values
    return x_new


def a_norm(A: sp.spmatrix, v: np.ndarray) -> float:
    """``sqrt(v^T A v)`` — the energy norm used by Theorems 2 and 3."""
    value = float(v @ (A @ v))
    # Guard against tiny negative values from round-off on SPD matrices.
    return float(np.sqrt(max(value, 0.0)))


def interpolation_error_norm(A: sp.spmatrix, blocked: PageBlockedMatrix,
                             b: np.ndarray, x_true: np.ndarray,
                             x_damaged: np.ndarray,
                             pages: Sequence[int]) -> Tuple[float, float]:
    """A-norms of the error before and after the lossy interpolation.

    Returns ``(||x* - x||_A, ||x* - x_I||_A)`` where ``x`` is the damaged
    iterate and ``x_I`` the interpolated one.  Used to validate
    Theorems 2 and 3 experimentally.
    """
    x_interp = lossy_interpolate(blocked, b, x_damaged, pages)
    e_before = x_true - x_damaged
    e_after = x_true - x_interp
    return a_norm(A, e_before), a_norm(A, e_after)


# ----------------------------------------------------------------------
# strategy
# ----------------------------------------------------------------------
class LossyRestartStrategy(RecoveryStrategy):
    """Lossy Restart: block-Jacobi interpolation of ``x`` plus a restart.

    The restart itself (recomputing ``g = b - A x`` and resetting the
    search direction) is performed by the solver when the outcome's
    ``restart_required`` flag is set; the strategy only fixes the iterate.
    """

    name = "Lossy"
    uses_recovery_tasks = False
    recovery_in_critical_path = False

    def __init__(self, cost_model: CostModel = DEFAULT_COST_MODEL):
        self.cost_model = cost_model

    def handle_lost_pages(self, state, lost: List[Tuple[str, int]],
                          iteration: int) -> RecoveryOutcome:
        outcome = RecoveryOutcome()
        if not lost:
            return outcome
        x_pages = sorted({page for vector, page in lost if vector == "x"})
        other = [(vector, page) for vector, page in lost if vector != "x"]

        if x_pages:
            x_vec = state.vectors["x"]
            interpolated = lossy_interpolate(state.blocked, state.b,
                                             x_vec.array, x_pages)
            x_vec.fill_from(interpolated)
            for page in x_pages:
                state.memory.mark_recovered("x", page)
                outcome.recovered.append(("x", page))
                outcome.work_time += self.cost_model.block_solve(
                    state.blocked.block_size(page),
                    factorized=state.blocked.has_cached_factor(page))
                outcome.work_time += self.cost_model.spmv_block(
                    state.blocked.nnz_of_block(page))

        # Non-iterate losses: the data will be rebuilt by the restart
        # (g recomputed, d reset to the new residual, q recomputed), so the
        # pages are simply blanked here.
        for vector, page in other:
            state.vectors[vector].zero_page(page)
            state.memory.mark_recovered(vector, page)
            outcome.recovered.append((vector, page))

        outcome.restart_required = True
        return outcome
