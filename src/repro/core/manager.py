"""Strategy factory and registry."""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.afeir import AFEIRStrategy
from repro.core.checkpoint import CheckpointStrategy
from repro.core.feir import FEIRStrategy
from repro.core.lossy import LossyRestartStrategy
from repro.core.strategy import RecoveryStrategy
from repro.core.trivial import TrivialStrategy
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL

#: Canonical method names, in the order the paper's figures list them.
STRATEGY_NAMES = ("AFEIR", "FEIR", "Lossy", "ckpt", "Trivial")


def make_strategy(name: str, *, cost_model: CostModel = DEFAULT_COST_MODEL,
                  checkpoint_interval: Optional[int] = None) -> RecoveryStrategy:
    """Build a recovery strategy by its paper name (case-insensitive).

    ``checkpoint_interval`` only applies to the checkpointing method; when
    omitted the solver configures the optimal interval from the error
    rate (Section 5.4).
    """
    key = name.strip().lower()
    if key == "feir":
        return FEIRStrategy(cost_model=cost_model)
    if key == "afeir":
        return AFEIRStrategy(cost_model=cost_model)
    if key in ("lossy", "lossy restart", "lossy-restart"):
        return LossyRestartStrategy(cost_model=cost_model)
    if key in ("ckpt", "checkpoint", "checkpointing", "checkpoint-rollback"):
        return CheckpointStrategy(interval=checkpoint_interval,
                                  cost_model=cost_model)
    if key == "trivial":
        return TrivialStrategy()
    raise ValueError(f"unknown recovery strategy {name!r}; "
                     f"known strategies: {', '.join(STRATEGY_NAMES)}")


def all_strategies(cost_model: CostModel = DEFAULT_COST_MODEL
                   ) -> Dict[str, RecoveryStrategy]:
    """One instance of every method, keyed by canonical name."""
    return {name: make_strategy(name, cost_model=cost_model)
            for name in STRATEGY_NAMES}
