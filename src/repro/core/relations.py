"""Block redundancy relations (Table 1 of the paper).

Three kinds of relations appear in Krylov solvers:

================================  ======================================
recover the left-hand side        recover the right-hand side (inverted)
================================  ======================================
``q_i = sum_j A_ij p_j``          ``A_ii p_i = q_i - sum_{j!=i} A_ij p_j``
``u_i = a v_i + b w_i``           ``w_i = (u_i - a v_i) / b``
``g_i = b_i - sum_j A_ij x_j``    ``A_ii x_i = b_i - g_i - sum_{j!=i} A_ij x_j``
================================  ======================================

Each relation object knows how to rebuild one lost page of either side,
given the surviving data.  They are deliberately independent of any
particular solver: CG, BiCGStab and GMRES all assemble their protection
out of these three shapes (Section 3.1).

All matrix work goes through :class:`PageBlockedMatrix` block kernels,
which dispatch to either a SciPy CSR backend or the SciPy-free
:class:`~repro.matrices.sparse.SparseOperator` row-slab fast path — a
page recovery therefore only ever touches the nonzeros of the affected
block row, never a dense ``n x n`` intermediate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.matrices.blocked import PageBlockedMatrix


@dataclass
class MatVecRelation:
    """Relation ``q = A p`` between two paged vectors.

    ``recover_lhs_page`` rebuilds a page of ``q`` by recomputing the
    block-row product; ``recover_rhs_page`` rebuilds a page of ``p`` by
    solving with the diagonal block (valid whenever ``A_ii`` is
    non-singular, in particular for SPD ``A``).
    """

    blocked: PageBlockedMatrix

    def recover_lhs_page(self, page: int, p: np.ndarray) -> np.ndarray:
        """``q_i = A_{i,:} p`` — needs the whole of ``p``."""
        return self.blocked.block_row_product(page, p)

    def recover_rhs_page(self, page: int, q: np.ndarray, p: np.ndarray) -> np.ndarray:
        """``A_ii p_i = q_i - sum_{j != i} A_ij p_j``.

        ``p`` is used only for its off-page entries; the contents of the
        lost page itself are ignored.
        """
        sl = self.blocked.block_slice(page)
        rhs = q[sl] - self.blocked.offdiag_product(page, p)
        return self.blocked.solve_diag(page, rhs)


@dataclass
class LinearCombinationRelation:
    """Relation ``u = alpha * v + beta * w`` between paged vectors.

    These are the cheapest relations: recovering either side of a page
    costs one scaled subtraction on 512 values.
    """

    alpha: float
    beta: float

    def recover_lhs_page(self, v_page: np.ndarray, w_page: np.ndarray) -> np.ndarray:
        """``u_i = alpha v_i + beta w_i``."""
        return self.alpha * v_page + self.beta * w_page

    def recover_w_page(self, u_page: np.ndarray, v_page: np.ndarray) -> np.ndarray:
        """``w_i = (u_i - alpha v_i) / beta``."""
        if self.beta == 0.0:
            raise ZeroDivisionError("cannot invert the relation when beta == 0")
        return (u_page - self.alpha * v_page) / self.beta

    def recover_v_page(self, u_page: np.ndarray, w_page: np.ndarray) -> np.ndarray:
        """``v_i = (u_i - beta w_i) / alpha``."""
        if self.alpha == 0.0:
            raise ZeroDivisionError("cannot invert the relation when alpha == 0")
        return (u_page - self.beta * w_page) / self.alpha


@dataclass
class ResidualRelation:
    """Relation ``g = b - A x`` (conserved by CG/BiCGStab across iterations).

    ``recover_residual_page`` rebuilds a page of ``g``;
    ``recover_iterate_page`` rebuilds a page of ``x`` by the inverted
    block relation — the same formula Chen used for checkpoint-free
    iterate recovery and the one our Theorem 3 analysis covers.
    """

    blocked: PageBlockedMatrix
    b: np.ndarray

    def recover_residual_page(self, page: int, x: np.ndarray) -> np.ndarray:
        """``g_i = b_i - A_{i,:} x`` — needs the whole of ``x``."""
        sl = self.blocked.block_slice(page)
        return self.b[sl] - self.blocked.block_row_product(page, x)

    def recover_iterate_page(self, page: int, g: np.ndarray,
                             x: np.ndarray) -> np.ndarray:
        """``A_ii x_i = b_i - g_i - sum_{j != i} A_ij x_j``."""
        sl = self.blocked.block_slice(page)
        rhs = self.b[sl] - g[sl] - self.blocked.offdiag_product(page, x)
        return self.blocked.solve_diag(page, rhs)

    def recover_iterate_pages_coupled(self, pages: Sequence[int], g: np.ndarray,
                                      x: np.ndarray) -> np.ndarray:
        """Coupled recovery of several lost ``x`` pages (Section 2.4, case 1).

        Solves the principal submatrix system over the union of the lost
        pages.  Returns the concatenated recovered values in page order.
        """
        pages = sorted(set(int(p) for p in pages))
        if not pages:
            raise ValueError("need at least one page")
        x_masked = np.array(x, copy=True)
        for page in pages:
            x_masked[self.blocked.block_slice(page)] = 0.0
        rhs_parts = []
        for page in pages:
            sl = self.blocked.block_slice(page)
            rhs_parts.append(self.b[sl] - g[sl]
                             - self.blocked.block_row_product(page, x_masked))
        rhs = np.concatenate(rhs_parts)
        return self.blocked.coupled_diag_solve(pages, rhs)


@dataclass
class HessenbergRelation:
    """GMRES Arnoldi-basis relation (Section 3.1.3).

    At step ``t`` of the Arnoldi process, every earlier basis vector
    satisfies ``v_l = (A v_{l-1} - sum_{k<l} h_{k,l-1} v_k) / h_{l,l-1}``,
    so any lost ``v_l`` (0 < l < t) is recoverable from the Hessenberg
    matrix and the other basis vectors.
    """

    blocked: Optional[PageBlockedMatrix] = None

    def recover_basis_vector(self, l: int, V: np.ndarray, H: np.ndarray,
                             A=None) -> np.ndarray:
        """Rebuild column ``l`` (>= 1) of the Arnoldi basis ``V``."""
        if l < 1:
            raise ValueError("only basis vectors with index >= 1 are recoverable "
                             "from the Hessenberg relation")
        if H[l, l - 1] == 0.0:
            raise ZeroDivisionError("h[l, l-1] is zero; Arnoldi broke down here")
        operator = self.blocked.A if self.blocked is not None else A
        if operator is None:
            raise ValueError("need the system matrix A (or a blocked view)")
        w = operator @ V[:, l - 1]
        for k in range(l):
            w = w - H[k, l - 1] * V[:, k]
        return w / H[l, l - 1]
