"""Checkpoint/rollback recovery (Section 4.2).

Each processing element periodically writes the iterate ``x`` and the
search direction ``d`` — the minimum needed to roll back — to its local
disk.  On a DUE, all PEs restore the last checkpoint and the solver
recomputes the residual from the restored iterate.  Checkpoint frequency
is expressed in solver iterations; when errors are injected the
evaluation uses the optimal frequency derived from the classic
first-order model (Young / Daly, as in Bougeret et al. [5]).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.strategy import RecoveryOutcome, RecoveryStrategy
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL


def optimal_checkpoint_interval(mtbe: float, checkpoint_cost: float,
                                iteration_time: float) -> int:
    """Optimal checkpoint period in iterations (Young's first-order formula).

    ``T_opt = sqrt(2 * C * MTBE)`` in seconds, converted to iterations and
    clamped to at least one iteration.  With no failures expected
    (``mtbe`` infinite) the period is effectively unbounded.
    """
    if checkpoint_cost < 0:
        raise ValueError("checkpoint cost cannot be negative")
    if iteration_time <= 0:
        raise ValueError("iteration time must be positive")
    if not math.isfinite(mtbe):
        return 10 ** 9
    if mtbe <= 0:
        raise ValueError("MTBE must be positive")
    seconds = math.sqrt(2.0 * max(checkpoint_cost, 1e-12) * mtbe)
    return max(1, int(round(seconds / iteration_time)))


class CheckpointStrategy(RecoveryStrategy):
    """Periodic checkpoint of (x, d) with global rollback on error."""

    name = "ckpt"
    uses_recovery_tasks = False
    recovery_in_critical_path = False
    uses_checkpoints = True

    def __init__(self, interval: Optional[int] = None,
                 cost_model: CostModel = DEFAULT_COST_MODEL):
        """``interval`` is in iterations; ``None`` means "choose optimally"
        once the solver knows the iteration time and MTBE."""
        if interval is not None and interval < 1:
            raise ValueError("checkpoint interval must be >= 1 iteration")
        self.interval = interval
        self.cost_model = cost_model
        self._saved: Optional[Dict[str, np.ndarray]] = None
        self._saved_iteration: int = 0
        self._saved_scalars: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def configure_interval(self, mtbe: float, iteration_time: float,
                           checkpoint_bytes: float) -> int:
        """Pick the optimal interval for a given error rate (Section 5.4)."""
        cost = self.cost_model.checkpoint_write(checkpoint_bytes)
        self.interval = optimal_checkpoint_interval(mtbe, cost, iteration_time)
        return self.interval

    def checkpoint_bytes(self, n: int) -> float:
        """Bytes written per checkpoint: the iterate and the search direction."""
        return 2.0 * 8.0 * n

    def should_checkpoint(self, iteration: int) -> bool:
        """True on iterations where a checkpoint task must be added."""
        if self.interval is None:
            raise RuntimeError("checkpoint interval not configured")
        return iteration > 0 and iteration % self.interval == 0

    # ------------------------------------------------------------------
    def on_solve_start(self, state) -> None:
        # Take checkpoint zero so a very early error has something to
        # roll back to.
        self.save(state, iteration=0, scalars={})

    def save(self, state, iteration: int, scalars: Dict[str, float]) -> None:
        """Write a checkpoint (deep copies of x and the current d buffer)."""
        self._saved = {
            "x": np.array(state.vectors["x"].array, copy=True),
            "d": np.array(state.vectors[state.current_d_name].array, copy=True),
        }
        self._saved_scalars = dict(scalars)
        self._saved_iteration = iteration

    @property
    def saved_iteration(self) -> int:
        return self._saved_iteration

    @property
    def saved_scalars(self) -> Dict[str, float]:
        return dict(self._saved_scalars)

    def handle_lost_pages(self, state, lost: List[Tuple[str, int]],
                          iteration: int) -> RecoveryOutcome:
        outcome = RecoveryOutcome()
        if not lost:
            return outcome
        if self._saved is None:
            raise RuntimeError("rollback requested before any checkpoint was taken")
        # Restore x and d from the checkpoint; g and q are recomputed by the
        # solver after the rollback (restart_required semantics).
        state.vectors["x"].fill_from(self._saved["x"])
        state.vectors[state.current_d_name].fill_from(self._saved["d"])
        for vector, page in lost:
            state.memory.mark_recovered(vector, page)
        n = state.blocked.n
        outcome.rolled_back = True
        outcome.restart_required = True
        outcome.work_time += self.cost_model.checkpoint_read(self.checkpoint_bytes(n))
        outcome.recovered.extend(lost)
        return outcome
