"""Trivial forward recovery (Section 4.1).

"Simply keep the program running, by allocating new (blank) memory for
corrupt or lost data.  No other actions are taken."  Errors in data that
is never reused are masked; everything else silently degrades the
iterate and all convergence guarantees are lost — which is exactly the
behaviour Figure 4 shows (overheads above 200% already at a normalised
error frequency of 5).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.strategy import RecoveryOutcome, RecoveryStrategy


class TrivialStrategy(RecoveryStrategy):
    """Replace lost pages with zeros and keep iterating."""

    name = "Trivial"
    uses_recovery_tasks = False
    recovery_in_critical_path = False

    def handle_lost_pages(self, state, lost: List[Tuple[str, int]],
                          iteration: int) -> RecoveryOutcome:
        outcome = RecoveryOutcome()
        for vector, page in lost:
            # The memory manager already re-mapped a blank page when the
            # fault was detected; just acknowledge it so the solver stops
            # treating the page as missing.
            state.vectors[vector].zero_page(page)
            state.memory.mark_recovered(vector, page)
            outcome.unrecoverable.append((vector, page))
        return outcome
