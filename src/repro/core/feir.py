"""Forward Exact Interpolation Recovery (FEIR), recovery in the critical path.

FEIR repairs every lost page *exactly* using the Table 1 relations valid
for CG (Listing 1 annotations):

=========  ==============================================  =============
vector     relation used                                   needs intact
=========  ==============================================  =============
``g``      ``g_i = b_i - A_{i,:} x``                        ``x``
``q``      ``q_i = A_{i,:} d``                              ``d`` (current)
``d``      ``A_ii d_i = q_i - sum_{j!=i} A_ij d_j``         ``q``, other ``d``
``x``      ``A_ii x_i = b_i - g_i - sum_{j!=i} A_ij x_j``   ``g``, other ``x``
=========  ==============================================  =============

Recovery order matters when several pages are lost at once: the iterate
``x`` is repaired first (it only needs its own page of ``g``), then the
residual ``g`` (which needs the whole of ``x``), then the search
direction ``d`` and finally ``q`` — so every relation sees fully
repaired inputs and the recovered data is exact.

Pages lost on *both* sides of a relation at the same index
("simultaneous errors on related data", Section 2.4 case 2) cannot be
recovered exactly.  The evaluation setup of the paper uses no fallback
("simultaneous errors on related data are simply ignored"), which in the
implementation means the right-hand-side page stays blank and the
left-hand-side vector is re-derived from it by the next recovery tasks.
We reproduce that end state directly: the ``x`` (or ``d``) page is
blanked and the dependent vector ``g`` (or ``q``) is recomputed in full,
so the solver's invariants (``g = b - Ax``, ``q = A d``) are preserved
and only the information in the blanked page is lost.

The FEIR variant places its recovery tasks in the critical path: all
compute tasks of the iteration finish before recovery runs, and the
scalar (reduction) tasks wait for recovery.  This maximises coverage at
the price of load imbalance (Table 3).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.strategy import RecoveryOutcome, RecoveryStrategy
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL


class FEIRStrategy(RecoveryStrategy):
    """Exact forward recovery with recovery tasks in the critical path.

    FEIR's recovery is a barrier before each scalar, so it keeps the
    base class's empty ``vulnerable_pairs`` — there is no window in
    which a DUE can land "after recovery ran", and the threaded backend
    records no windows for it.
    """

    name = "FEIR"
    uses_recovery_tasks = True
    recovery_in_critical_path = True

    def __init__(self, cost_model: CostModel = DEFAULT_COST_MODEL,
                 use_coupled_solve: bool = True):
        self.cost_model = cost_model
        #: Recover multiple lost pages of the same vector with one coupled
        #: solve (Section 2.4 case 1) instead of page-by-page solves.
        self.use_coupled_solve = use_coupled_solve
        #: Timing scale of full-vector recomputations (set by the solver so
        #: conflict fallbacks are charged at the simulated problem scale).
        self.work_scale = 1.0

    # ------------------------------------------------------------------
    def handle_lost_pages(self, state, lost: List[Tuple[str, int]],
                          iteration: int) -> RecoveryOutcome:
        outcome = RecoveryOutcome()
        if not lost:
            return outcome
        by_vector: Dict[str, List[int]] = {}
        for vector, page in lost:
            by_vector.setdefault(vector, []).append(page)
        for vector in by_vector:
            by_vector[vector] = sorted(set(by_vector[vector]))

        d_name = state.current_d_name
        xg_conflict = sorted(set(by_vector.get("x", ()))
                             & set(by_vector.get("g", ())))
        dq_conflict = sorted(set(by_vector.get(d_name, ()))
                             & set(by_vector.get("q", ())))

        # 1) iterate pages that are exactly recoverable (their g page is intact)
        x_pages = [p for p in by_vector.pop("x", []) if p not in xg_conflict]
        if x_pages:
            outcome.work_time += self._recover_vector_pages(state, "x",
                                                            x_pages, outcome)
        # 2) x&g conflicts: blank the iterate page, then re-derive the whole
        #    residual from the blanked iterate so g = b - Ax keeps holding.
        g_pages = [p for p in by_vector.pop("g", []) if p not in xg_conflict]
        if xg_conflict:
            outcome.work_time += self._conflict_fallback(
                state, "x", "g", xg_conflict, g_pages, outcome)
        elif g_pages:
            outcome.work_time += self._recover_vector_pages(state, "g",
                                                            g_pages, outcome)
        # 3) search-direction pages recoverable from q
        d_pages = [p for p in by_vector.pop(d_name, []) if p not in dq_conflict]
        if d_pages:
            outcome.work_time += self._recover_vector_pages(state, d_name,
                                                            d_pages, outcome)
        # 4) d&q conflicts: blank the direction page, recompute q = A d.
        q_pages = [p for p in by_vector.pop("q", []) if p not in dq_conflict]
        if dq_conflict:
            outcome.work_time += self._conflict_fallback(
                state, d_name, "q", dq_conflict, q_pages, outcome)
        elif q_pages:
            outcome.work_time += self._recover_vector_pages(state, "q",
                                                            q_pages, outcome)
        # Anything left (e.g. the stale double-buffer copy of d) is about to
        # be overwritten; blanking it is exact for the algorithm's purposes.
        for vector, pages in by_vector.items():
            for page in pages:
                state.vectors[vector].zero_page(page)
                state.memory.mark_recovered(vector, page)
                outcome.recovered.append((vector, page))
                outcome.work_time += self.cost_model.recovery_check()
        return outcome

    # ------------------------------------------------------------------
    # conflicts: both sides of a relation lost at the same block index
    # ------------------------------------------------------------------
    def _conflict_fallback(self, state, rhs_name: str, lhs_name: str,
                           conflict_pages: List[int], lhs_pages: List[int],
                           outcome: RecoveryOutcome) -> float:
        """Blank the rhs pages, then rebuild the whole lhs vector from the rhs.

        Used for simultaneous x&g (lhs ``g = b - Ax``) and d&q (lhs
        ``q = A d``) losses.  Information in the blanked rhs pages is lost,
        but the solver's invariants are restored, and a restart of the
        Krylov recurrence is requested — the fallback Section 2.4 (case 2)
        describes — so convergence degrades instead of stalling.
        """
        rhs_vec = state.vectors[rhs_name]
        for page in conflict_pages:
            rhs_vec.zero_page(page)
            state.memory.mark_recovered(rhs_name, page)
            outcome.unrecoverable.append((rhs_name, page))
        lhs_vec = state.vectors[lhs_name]
        if lhs_name == "g":
            lhs_vec.fill_from(state.b - state.blocked.matvec(rhs_vec.array))
        else:
            lhs_vec.fill_from(state.blocked.matvec(rhs_vec.array))
        for page in set(lhs_pages) | set(conflict_pages):
            state.memory.mark_recovered(lhs_name, page)
            outcome.recovered.append((lhs_name, page))
        outcome.restart_required = True
        return self._full_spmv_time(state)

    def _full_spmv_time(self, state) -> float:
        """Simulated cost of recomputing a full residual / mat-vec product."""
        nnz = state.blocked.A.nnz
        n = state.blocked.n
        return self.cost_model.kernel_time(2.0 * nnz, 12.0 * nnz + 8.0 * n) \
            * self.work_scale

    # ------------------------------------------------------------------
    # exact per-page recoveries
    # ------------------------------------------------------------------
    def _recover_vector_pages(self, state, vector: str, pages: Sequence[int],
                              outcome: RecoveryOutcome) -> float:
        """Repair ``pages`` of ``vector`` exactly; returns simulated work time."""
        blocked = state.blocked
        vectors = state.vectors
        d_name = state.current_d_name
        time_spent = 0.0

        if vector == "g":
            for page in pages:
                values = state.residual_relation.recover_residual_page(
                    page, vectors["x"].array)
                vectors["g"].set_page(page, values)
                state.memory.mark_recovered("g", page)
                outcome.recovered.append(("g", page))
                time_spent += self.cost_model.spmv_block(blocked.nnz_of_block(page))
        elif vector == "q":
            for page in pages:
                values = state.matvec_relation.recover_lhs_page(
                    page, vectors[d_name].array)
                vectors["q"].set_page(page, values)
                state.memory.mark_recovered("q", page)
                outcome.recovered.append(("q", page))
                time_spent += self.cost_model.spmv_block(blocked.nnz_of_block(page))
        elif vector == "x":
            time_spent += self._recover_inverted(
                state, "x", pages, outcome,
                solver=lambda pgs: self._solve_x_pages(state, pgs))
        elif vector == d_name:
            time_spent += self._recover_inverted(
                state, d_name, pages, outcome,
                solver=lambda pgs: self._solve_d_pages(state, d_name, pgs))
        else:
            for page in pages:
                vectors[vector].zero_page(page)
                state.memory.mark_recovered(vector, page)
                outcome.recovered.append((vector, page))
                time_spent += self.cost_model.recovery_check()
        return time_spent

    def _recover_inverted(self, state, vector: str, pages: Sequence[int],
                          outcome: RecoveryOutcome, solver) -> float:
        """Common path for the inverted (diag-block solve) relations."""
        time_spent = 0.0
        pages = sorted(set(int(p) for p in pages))
        factored_already = all(state.blocked.has_cached_factor(p) for p in pages)
        solver(pages)
        for page in pages:
            state.memory.mark_recovered(vector, page)
            outcome.recovered.append((vector, page))
            time_spent += self.cost_model.block_solve(
                state.blocked.block_size(page), factorized=factored_already)
            time_spent += self.cost_model.spmv_block(state.blocked.nnz_of_block(page))
        return time_spent

    def _solve_x_pages(self, state, pages: Sequence[int]) -> None:
        x = state.vectors["x"]
        g = state.vectors["g"]
        if len(pages) == 1 or not self.use_coupled_solve:
            for page in pages:
                values = state.residual_relation.recover_iterate_page(
                    page, g.array, x.array)
                x.set_page(page, values)
        else:
            values = state.residual_relation.recover_iterate_pages_coupled(
                pages, g.array, x.array)
            offset = 0
            for page in sorted(pages):
                width = state.blocked.block_size(page)
                x.set_page(page, values[offset:offset + width])
                offset += width

    def _solve_d_pages(self, state, d_name: str, pages: Sequence[int]) -> None:
        d = state.vectors[d_name]
        q = state.vectors["q"]
        from repro.core.interpolation import (coupled_block_interpolation,
                                              scatter_coupled_solution)
        if len(pages) == 1 or not self.use_coupled_solve:
            for page in pages:
                values = state.matvec_relation.recover_rhs_page(
                    page, q.array, d.array)
                d.set_page(page, values)
        else:
            values = coupled_block_interpolation(state.blocked, pages,
                                                 q.array, d.array)
            scatter_coupled_solution(state.blocked, pages, values, d.array)
