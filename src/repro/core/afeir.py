"""Asynchronous Forward Exact Interpolation Recovery (AFEIR).

AFEIR uses exactly the same algebraic recoveries as FEIR; the difference
is purely in scheduling (Section 3.3.2 and Figure 2):

* recovery tasks are scheduled *concurrently* with the reduction
  (partial dot-product) tasks, at lower priority, instead of as barriers;
* consequently the fault-free overhead nearly vanishes (Table 2:
  0.23% vs 2.73%), but errors discovered *after* the recovery task has
  already run and *before* the following scalar task cannot be repaired
  in time — the affected page's contribution to that reduction is
  skipped, which slows convergence at high error rates (Section 5.4).

The class overrides the scheduling flags (the algebra is inherited from
FEIR unchanged) and names the (recovery task, scalar task) pairs whose
gap *is* the vulnerable window, so the threaded execution backend can
measure that window on real threads and the monitor can attribute every
late DUE to it.  The window's *enforcement* — skipping the lost page's
reduction contribution — still lives in the resilient solver, which asks
the strategy whether a fault detected at a given simulated time is
covered.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.feir import FEIRStrategy


class AFEIRStrategy(FEIRStrategy):
    """Exact forward recovery with recovery tasks overlapped (asynchronous)."""

    name = "AFEIR"
    uses_recovery_tasks = True
    recovery_in_critical_path = False

    def vulnerable_pairs(self, iteration: int) -> List[Tuple[str, str]]:
        """The two overlapped windows of one iteration (Figure 2):
        ``r2`` may finish before the rho/beta scalar consumes the
        reduction it guards, and ``r1`` before the alpha scalar."""
        t = iteration
        return [(f"r2_{t}", f"beta{t}"), (f"r1_{t}", f"alpha{t}")]
