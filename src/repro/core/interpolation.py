"""Exact forward interpolation of lost pages.

Three variants, all forward recoveries (no rollback, no restart):

* :func:`exact_block_interpolation` — the direct diagonal-block solve of
  Table 1, exact (up to round-off) whenever the diagonal block is
  non-singular (always for SPD matrices).
* :func:`least_squares_interpolation` — the least-squares variant used
  "for the full columns of the matrix corresponding to the lost memory
  page" when the diagonal block may be singular (Agullo et al. style).
* :func:`coupled_block_interpolation` — the multi-error generalisation:
  one coupled solve over all simultaneously lost pages of one vector.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.matrices.blocked import PageBlockedMatrix


def exact_block_interpolation(blocked: PageBlockedMatrix, page: int,
                              lhs: np.ndarray, rhs_vector: np.ndarray) -> np.ndarray:
    """Solve ``A_ii y_i = lhs_i - sum_{j != i} A_ij rhs_j`` for the lost page.

    ``lhs`` is the vector on the left-hand side of the relation
    ``lhs = A rhs`` (e.g. ``q`` for ``q = A d``); ``rhs_vector`` is the
    vector whose page ``page`` was lost.  Returns the recovered page
    values, which equal the original values up to round-off.
    """
    sl = blocked.block_slice(page)
    rhs = lhs[sl] - blocked.offdiag_product(page, rhs_vector)
    return blocked.solve_diag(page, rhs)


def least_squares_interpolation(blocked: PageBlockedMatrix, page: int,
                                lhs: np.ndarray, rhs_vector: np.ndarray) -> np.ndarray:
    """Least-squares recovery using the full columns of the lost page.

    Solves ``min_y || A[:, page] y - (lhs - A rhs_masked) ||_2`` where
    ``rhs_masked`` is the right-hand-side vector with the lost page
    zeroed.  Exact when the relation holds and the column block has full
    rank; applicable even when the diagonal block is singular.
    """
    sl = blocked.block_slice(page)
    masked = np.array(rhs_vector, copy=True)
    masked[sl] = 0.0
    residual = lhs - blocked.matvec(masked)
    columns = blocked.column_block_dense(page)
    solution, *_ = np.linalg.lstsq(columns, residual, rcond=None)
    return solution


def coupled_block_interpolation(blocked: PageBlockedMatrix, pages: Sequence[int],
                                lhs: np.ndarray, rhs_vector: np.ndarray) -> np.ndarray:
    """Recover several simultaneously lost pages of the same vector.

    Implements the 2x2 (and larger) block system of Section 2.4:
    the unknowns are the union of the lost pages, the right-hand side is
    ``lhs`` minus the contribution of the surviving pages.  Returns the
    recovered values concatenated in ascending page order.
    """
    pages = sorted(set(int(p) for p in pages))
    if not pages:
        raise ValueError("need at least one lost page")
    masked = np.array(rhs_vector, copy=True)
    for page in pages:
        masked[blocked.block_slice(page)] = 0.0
    rhs_parts = []
    for page in pages:
        sl = blocked.block_slice(page)
        rhs_parts.append(lhs[sl] - blocked.block_row_product(page, masked))
    rhs = np.concatenate(rhs_parts)
    return blocked.coupled_diag_solve(pages, rhs)


def scatter_coupled_solution(blocked: PageBlockedMatrix, pages: Sequence[int],
                             values: np.ndarray, out: np.ndarray) -> None:
    """Write the concatenated coupled solution back into ``out`` in place."""
    pages = sorted(set(int(p) for p in pages))
    offset = 0
    for page in pages:
        sl = blocked.block_slice(page)
        width = sl.stop - sl.start
        out[sl] = values[offset:offset + width]
        offset += width
    if offset != values.shape[0]:
        raise ValueError(f"solution has {values.shape[0]} entries but pages "
                         f"{pages} cover {offset}")
