"""Recovery methods for Detected and Uncorrected Errors (DUE).

This package is the paper's primary contribution:

* :mod:`repro.core.relations` — the block redundancy relations of
  Table 1, usable for any iterative solver.
* :mod:`repro.core.interpolation` — exact forward interpolation of a
  lost block (direct diagonal-block solve, least-squares fallback and
  the coupled multi-block solve of Section 2.4).
* :mod:`repro.core.feir` / :mod:`repro.core.afeir` — the Forward Exact
  Interpolation Recovery, with recovery tasks in the critical path
  (FEIR) or overlapped with reductions (AFEIR).
* :mod:`repro.core.lossy` — the Lossy Restart adapted from Langou et
  al., plus the A-norm optimality property proved in Section 4.3.
* :mod:`repro.core.checkpoint` — checkpoint/rollback with the optimal
  checkpointing interval.
* :mod:`repro.core.trivial` — trivial forward recovery (blank page,
  keep going).
"""

from repro.core.afeir import AFEIRStrategy
from repro.core.checkpoint import CheckpointStrategy, optimal_checkpoint_interval
from repro.core.feir import FEIRStrategy
from repro.core.interpolation import (exact_block_interpolation,
                                      least_squares_interpolation,
                                      coupled_block_interpolation)
from repro.core.lossy import LossyRestartStrategy, lossy_interpolate
from repro.core.manager import STRATEGY_NAMES, make_strategy
from repro.core.relations import (LinearCombinationRelation, MatVecRelation,
                                  ResidualRelation)
from repro.core.strategy import RecoveryStrategy, RecoveryStats
from repro.core.trivial import TrivialStrategy

__all__ = [
    "AFEIRStrategy",
    "CheckpointStrategy",
    "FEIRStrategy",
    "LinearCombinationRelation",
    "LossyRestartStrategy",
    "MatVecRelation",
    "RecoveryStats",
    "RecoveryStrategy",
    "ResidualRelation",
    "STRATEGY_NAMES",
    "TrivialStrategy",
    "coupled_block_interpolation",
    "exact_block_interpolation",
    "least_squares_interpolation",
    "lossy_interpolate",
    "make_strategy",
    "optimal_checkpoint_interval",
]
