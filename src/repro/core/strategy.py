"""Recovery strategy interface shared by all five methods.

A strategy describes *what to do about lost pages* and *how its actions
appear in the task graph*.  The resilient solver owns the iteration
structure; strategies plug into it through a small number of hooks, so
adding a new recovery method does not require touching the solver.

The solver hands strategies a *solver state* object exposing (duck
typed, to avoid a circular dependency on the solver module):

``blocked``            the :class:`~repro.matrices.blocked.PageBlockedMatrix`
``b``                  the right-hand side array
``vectors``            mapping name -> :class:`~repro.memory.pages.PagedVector`
                       for ``x``, ``g``, ``q`` and the two ``d`` buffers
``memory``             the :class:`~repro.memory.manager.MemoryManager`
``residual_relation``  a :class:`~repro.core.relations.ResidualRelation`
``matvec_relation``    a :class:`~repro.core.relations.MatVecRelation`
``preconditioner``     the preconditioner (or ``None``)
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple


@dataclass
class RecoveryStats:
    """Counters accumulated by a strategy over one solve."""

    pages_recovered: int = 0
    pages_unrecoverable: int = 0
    contributions_skipped: int = 0
    restarts: int = 0
    rollbacks: int = 0
    checkpoints_written: int = 0
    recovery_work_time: float = 0.0

    def merge(self, other: "RecoveryStats") -> None:
        self.pages_recovered += other.pages_recovered
        self.pages_unrecoverable += other.pages_unrecoverable
        self.contributions_skipped += other.contributions_skipped
        self.restarts += other.restarts
        self.rollbacks += other.rollbacks
        self.checkpoints_written += other.checkpoints_written
        self.recovery_work_time += other.recovery_work_time


@dataclass
class RecoveryOutcome:
    """What happened when a strategy handled a batch of lost pages."""

    #: (vector, page) pairs whose exact contents were restored.
    recovered: List[Tuple[str, int]] = field(default_factory=list)
    #: (vector, page) pairs that could not be restored exactly (zero-filled).
    unrecoverable: List[Tuple[str, int]] = field(default_factory=list)
    #: True if the strategy requires the solver to restart (Lossy Restart).
    restart_required: bool = False
    #: True if the strategy rolled the iterate back (checkpoint method).
    rolled_back: bool = False
    #: Simulated time spent doing recovery work (charged to recovery tasks).
    work_time: float = 0.0


class RecoveryStrategy(abc.ABC):
    """Base class for the five resilience methods of the evaluation."""

    #: Human-readable method name used in results tables.
    name: str = "abstract"

    #: True if the method adds r1/r2/r3 recovery tasks to every iteration
    #: (FEIR and AFEIR do; signal-handler-only methods do not).
    uses_recovery_tasks: bool = False

    #: True if the recovery tasks are barriers in the critical path
    #: (FEIR); False if they are overlapped with reductions (AFEIR).
    recovery_in_critical_path: bool = False

    #: True if the method periodically writes checkpoints.
    uses_checkpoints: bool = False

    # ------------------------------------------------------------------
    # task-graph placement
    # ------------------------------------------------------------------
    @property
    def recovery_task_priority(self) -> int:
        """Scheduling priority of the r1/r2/r3 recovery tasks.

        The paper schedules overlapped (AFEIR) recovery "with a lower
        priority as to start all reduction tasks first" (Section 3.3.2);
        critical-path (FEIR) recovery runs at normal priority.
        """
        return 0 if self.recovery_in_critical_path else -1

    def vulnerable_pairs(self, iteration: int) -> List[Tuple[str, str]]:
        """(recovery task, dependent scalar task) name pairs whose gap is
        the method's vulnerable window in iteration ``iteration``.

        Critical-path methods have no window (the scalar waits for
        recovery inside the critical path), so the default is empty;
        overlapped methods override this so the threaded backend's
        vulnerable-window monitor can measure the real gap.
        """
        return []

    def recovery_probe(self, memory, monitor=None,
                       label: str = "") -> Callable[[], int]:
        """Real executable body of a recovery task for the threaded backend.

        The returned callable performs what the paper's recovery task does
        when executed: scan the protection bitmasks of every registered
        vector for poisoned/lost pages, and report the count (to the
        vulnerable-window ``monitor`` when one is attached).  Subclasses
        with heavier real recovery work can override it.
        """
        def probe() -> int:
            lost = memory.lost_pages()
            if monitor is not None:
                monitor.record_scan(label or self.name, len(lost))
            return len(lost)

        return probe

    # ------------------------------------------------------------------
    def on_solve_start(self, state) -> None:
        """Called once before the first iteration (e.g. initial checkpoint)."""

    def on_iteration_start(self, state, iteration: int) -> None:
        """Called at the top of every iteration."""

    @abc.abstractmethod
    def handle_lost_pages(self, state, lost: List[Tuple[str, int]],
                          iteration: int) -> RecoveryOutcome:
        """React to the detected loss of ``lost`` (vector, page) pairs.

        Implementations must leave every lost page either exactly
        restored, approximately restored or zero-filled, and report which
        happened through the returned :class:`RecoveryOutcome`.
        """

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Summary of configuration, used in experiment manifests."""
        return {
            "name": self.name,
            "uses_recovery_tasks": self.uses_recovery_tasks,
            "recovery_in_critical_path": self.recovery_in_critical_path,
            "uses_checkpoints": self.uses_checkpoints,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
