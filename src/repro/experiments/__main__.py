"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments table2
    python -m repro.experiments fig4 --quick
    python -m repro.experiments all --quick

``--quick`` uses a reduced matrix/rate grid (the same one the default
benchmark harness uses); without it the full nine-matrix sweep runs.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.common import ExperimentConfig
from repro.runtime.backend import BACKEND_NAMES
from repro.runtime.runtime import (CLOCK_NAMES, PLACEMENT_NAMES,
                                   SCHEDULER_NAMES)
from repro.experiments.fig3 import format_fig3, run_fig3
from repro.experiments.fig4 import format_fig4, run_fig4
from repro.experiments.fig5 import (format_fig5, format_fig5_measured,
                                    run_fig5, run_fig5_measured)
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import format_table3, run_table3

QUICK_MATRICES = ("qa8fm", "Dubcova3", "consph", "thermomech")
QUICK_RATES = (1.0, 10.0, 50.0)
EXPERIMENTS = ("table2", "table3", "fig3", "fig4", "fig5")


def make_config(quick: bool, backend: str = "simulated",
                ranks: int = 1, scheduler=None, placement=None,
                clock=None) -> ExperimentConfig:
    axes = dict(backend=backend, ranks=ranks, scheduler=scheduler,
                placement=placement, clock=clock)
    if quick:
        return ExperimentConfig(matrices=QUICK_MATRICES, repetitions=1,
                                max_iterations=6000, tolerance=1e-9, **axes)
    return ExperimentConfig(repetitions=2, **axes)


def run_one(name: str, quick: bool, backend: str = "simulated",
            ranks: int = 1, measured: bool = False, store=None,
            scheduler=None, placement=None, clock=None) -> str:
    config = make_config(quick, backend, ranks, scheduler=scheduler,
                         placement=placement, clock=clock)
    if name == "table2":
        return format_table2(run_table2(config))
    if name == "table3":
        return format_table3(run_table3(config))
    if name == "fig3":
        return format_fig3(run_fig3(config, matrix="thermal2"))
    if name == "fig4":
        rates = QUICK_RATES if quick else None
        result = run_fig4(config, rates=rates, store=store) if rates \
            else run_fig4(config, store=store)
        return format_fig4(result)
    if name == "fig5":
        text = format_fig5(run_fig5(calibration_points=16 if quick else 24,
                                    store=store))
        if measured:
            rank_counts = (1, 2, 4) if ranks == 1 else (1, ranks)
            measured_result = run_fig5_measured(
                ranks=rank_counts, points=8 if quick else 10)
            text += "\n\n" + format_fig5_measured(measured_result)
        return text
    raise ValueError(f"unknown experiment {name!r}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the tables and figures of the SC'15 paper.")
    parser.add_argument("experiment", choices=EXPERIMENTS + ("all",),
                        help="which table/figure to regenerate")
    parser.add_argument("--quick", action="store_true",
                        help="use the reduced matrix/rate grid")
    parser.add_argument("--backend", choices=BACKEND_NAMES,
                        default="simulated",
                        help="deprecated alias for the runtime axes of the "
                             "solver-driven experiments: 'simulated' = "
                             "--scheduler list --clock simulated, "
                             "'threaded' = --scheduler threaded --clock "
                             "wall; explicit axes win.  fig5's analytic "
                             "projection runs no solver, so the alias does "
                             "not apply to it")
    parser.add_argument("--ranks", type=int, default=1,
                        help="rank-parallel kernel execution inside every "
                             "solver (strip partition, real halo exchange, "
                             "tree allreduce); bit-identical to --ranks 1 "
                             "(>1 implies --placement ranks)")
    parser.add_argument("--scheduler", choices=SCHEDULER_NAMES, default=None,
                        help="runtime scheduler axis: 'list' (discrete-"
                             "event only) or 'threaded' (graphs also "
                             "execute on real threads)")
    parser.add_argument("--placement", choices=PLACEMENT_NAMES, default=None,
                        help="runtime placement axis: 'local' or 'ranks'")
    parser.add_argument("--clock", choices=CLOCK_NAMES, default=None,
                        help="runtime clock axis: 'simulated' or 'wall' "
                             "(measure real wall intervals)")
    parser.add_argument("--measured", action="store_true",
                        help="fig5 only: additionally run the measured "
                             "mini-Figure-5 — a small problem really "
                             "executed on 1-4 rank workers, with per-"
                             "iteration halo/allreduce wall times reported "
                             "next to the analytic projection and used to "
                             "calibrate its interconnect constants")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="campaign store directory for the fig4 sweep "
                             "and fig5 calibration solves (default: "
                             "REPRO_CAMPAIGN_STORE or "
                             "~/.cache/repro-campaign)")
    parser.add_argument("--no-store", action="store_true",
                        help="bypass the content-addressed campaign store "
                             "(every trial and calibration solve executes)")
    args = parser.parse_args(argv)
    if args.measured and args.experiment not in ("fig5", "all"):
        parser.error("--measured only applies to fig5")

    store = None
    if not args.no_store:
        from repro.campaign.store import (CampaignStore, StoreSchemaError,
                                          default_store_root)
        try:
            store = CampaignStore(args.store if args.store is not None
                                  else default_store_root())
        except StoreSchemaError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    targets = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in targets:
        print(f"\n=== {name} ===")
        print(run_one(name, args.quick, args.backend,
                      ranks=args.ranks, measured=args.measured, store=store,
                      scheduler=args.scheduler, placement=args.placement,
                      clock=args.clock))
    if store is not None:
        print(f"\n{store.stats_line()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
