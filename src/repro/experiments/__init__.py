"""Experiment drivers reproducing every table and figure of the paper.

================  ======================================================
driver            paper result
================  ======================================================
``table2``        Table 2 — fault-free overheads of the resilience methods
``table3``        Table 3 — per-state time increase (imbalance/runtime/useful)
``fig3``          Figure 3 — convergence over time with one error in ``x``
``fig4``          Figure 4 — slowdown vs normalised error rate, 5 methods
``fig5``          Figure 5 — MPI+OmpSs speedups on 64–1024 cores
================  ======================================================

Each driver exposes a ``run(...)`` returning structured results and a
``format_*`` helper printing the same rows/series the paper reports.
The benchmark harness under ``benchmarks/`` simply calls these drivers.
"""

from repro.experiments.common import ExperimentConfig, MethodRun, run_method
from repro.experiments.table2 import run_table2, format_table2
from repro.experiments.table3 import run_table3, format_table3
from repro.experiments.fig3 import run_fig3, format_fig3
from repro.experiments.fig4 import run_fig4, format_fig4
from repro.experiments.fig5 import run_fig5, format_fig5

__all__ = [
    "ExperimentConfig",
    "MethodRun",
    "format_fig3",
    "format_fig4",
    "format_fig5",
    "format_table2",
    "format_table3",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_method",
    "run_table2",
    "run_table3",
]
