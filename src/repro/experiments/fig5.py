"""Figure 5 — speedup of the MPI+OmpSs resilient CGs on 64-1024 cores.

Shapes to reproduce (paper, 27-point Poisson on 512^3 unknowns):

* the ideal CG reaches ~80% parallel efficiency at 1024 cores;
* AFEIR and FEIR scale close to the ideal CG (speedups around 7.5-10 at
  1024 cores with 1-2 errors);
* the Lossy Restart trails them (8.2 / 4.8);
* checkpointing and the trivial method stay below a third of the ideal
  CG's speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.distributed.cluster import ClusterModel, ScalingResult
from repro.distributed.comm import (CommunicationModel,
                                    fit_communication_model)
from repro.distributed.partition import StripPartition

#: Paper reference speedups on 1024 cores for quick comparison.
PAPER_FIG5_1024 = {
    ("AFEIR", 1): 10.01, ("AFEIR", 2): 6.03,
    ("FEIR", 1): 7.50, ("FEIR", 2): 7.65,
    ("Lossy", 1): 8.17, ("Lossy", 2): 4.82,
}


@dataclass
class Fig5Result:
    """Scaling results plus the model used to produce them."""

    results: List[ScalingResult]
    model: ClusterModel

    def speedup(self, method: str, cores: int, errors: int) -> float:
        for r in self.results:
            if r.method == method and r.cores == cores and r.errors == errors:
                return r.speedup
        raise KeyError(f"no result for {method} at {cores} cores, "
                       f"{errors} errors")

    def by_errors(self, errors: int) -> List[ScalingResult]:
        return [r for r in self.results
                if r.errors == errors or r.method == "Ideal"]


def run_fig5(core_counts: Sequence[int] = (64, 128, 256, 512, 1024),
             error_counts: Sequence[int] = (1, 2),
             calibration_points: int = 24,
             target_points: int = 512,
             model: Optional[ClusterModel] = None,
             executor=None, store=None) -> Fig5Result:
    """Reproduce the Figure 5 scaling study with the simulated cluster.

    The calibration solves (one real resilient-CG run per method and
    error count) are independent, so they run through the same pluggable
    campaign executors as the Figure 4 sweep — pass
    ``executor=make_executor('process')`` to fan them out.  ``store``
    (a :class:`~repro.campaign.store.CampaignStore`) caches each
    calibration cell's measured iteration count by content address, so
    warm re-runs skip the solves.
    """
    model = model or ClusterModel(target_points=target_points,
                                  calibration_points=calibration_points)
    results = model.run(core_counts=core_counts, error_counts=error_counts,
                        executor=executor, store=store)
    return Fig5Result(results=results, model=model)


def format_fig5(result: Fig5Result) -> str:
    """Render the speedup table (methods x cores, per error count)."""
    cores = sorted({r.cores for r in result.results})
    lines: List[str] = []
    for errors in sorted({r.errors for r in result.results if r.errors > 0}):
        rows: List[List[object]] = []
        methods = ["Ideal"] + sorted({r.method for r in result.results
                                      if r.method != "Ideal"})
        for method in methods:
            row: List[object] = [method]
            for c in cores:
                matches = [r for r in result.results
                           if r.method == method and r.cores == c
                           and (r.errors == errors or method == "Ideal")]
                row.append(matches[0].speedup if matches else float("nan"))
            rows.append(row)
        lines.append(format_table(
            ["method"] + [f"{c} cores" for c in cores], rows,
            title=f"Figure 5: speedup w.r.t. ideal on 64 cores, "
                  f"{errors} error(s) per run"))
        lines.append("")
    eff = result.model.ideal_parallel_efficiency(max(cores))
    lines.append(f"Ideal parallel efficiency at {max(cores)} cores: "
                 f"{100 * eff:.2f}% (paper: 80.17%)")
    return "\n".join(lines)


# ======================================================================
# measured mode: really execute the strip partition at small scale
# ======================================================================

@dataclass
class MeasuredRankRow:
    """Measured vs. modelled communication of one rank-parallel solve."""

    ranks: int
    method: str
    iterations: int
    halo_exchanges: int
    allreduces: int
    #: Measured wall milliseconds per halo exchange / tree allreduce
    #: (critical path across ranks, from the rank runtime's clocks).
    measured_halo_ms: float
    measured_allreduce_ms: float
    #: The analytic CommunicationModel's prediction for the *same* small
    #: problem and partition (worst rank's per-neighbour halo sizes).
    model_halo_ms: float
    model_allreduce_ms: float
    halo_bytes: int
    recoveries_by_rank: Dict[int, int]
    #: Recovery tasks whose *measured* wall interval overlapped the
    #: re-enacted halo exchange on the owning rank (resilient methods
    #: run under the threaded x ranks x wall runtime cell).  AFEIR's
    #: asynchrony makes this positive; FEIR's critical-path recovery
    #: structurally cannot overlap the halo, so it stays 0.
    halo_overlapped: int = 0


@dataclass
class MeasuredFig5Result:
    """The measured mini-Figure-5: small problem, 1-8 real ranks."""

    rows: List[MeasuredRankRow]
    points: int
    n: int
    page_size: int
    #: Interconnect constants fitted from the measured transfers.
    fitted_latency: float
    fitted_bandwidth: float
    calibrated: CommunicationModel
    #: Per-iteration communication time of the ideal CG at the paper's
    #: 512^3 / 1024-core point, under the default and the calibrated
    #: interconnect constants.
    default_comm_per_iter_1024: float
    calibrated_comm_per_iter_1024: float


def _comm_per_iteration(model: ClusterModel, cores: int) -> float:
    """Halo + allreduce share of one ideal iteration at ``cores``."""
    return model.comm_time_per_iteration(model._ranks_for(cores))


def run_fig5_measured(ranks: Sequence[int] = (1, 2, 4),
                      points: int = 10,
                      page_size: int = 128,
                      tolerance: float = 1e-10,
                      methods: Sequence[str] = ("ideal", "FEIR", "AFEIR"),
                      target_points: int = 512) -> MeasuredFig5Result:
    """Execute the Figure 5 strip partition for real at small scale.

    For each rank count a :class:`~repro.solvers.ResilientCG` solve runs
    with ``SolverConfig(ranks=N)`` — one worker per strip, real halo
    exchange of the search direction, reproducibly-ordered tree
    allreduces, recovery on the page owner — and the measured wall times
    of the exchanges are reported next to what the analytic
    :class:`~repro.distributed.comm.CommunicationModel` predicts for the
    same partition.  The measured point-to-point transfers then
    calibrate the interconnect constants of the 512^3 projection
    (:func:`~repro.distributed.comm.fit_communication_model`).

    The resilient methods run under the runtime cell the unified
    composition made expressible — ``scheduler="threaded"``,
    ``placement="ranks"``, ``clock="wall"`` — so each iteration is
    additionally re-enacted on real threads with the halo exchange
    spliced in, and the vulnerable-window monitor measures whether the
    recovery scan's wall interval overlapped the halo exchange on the
    owning rank (AFEIR: yes; FEIR: structurally never).
    """
    from repro.core.manager import make_strategy
    from repro.faults.injector import Injection
    from repro.faults.scenarios import multi_error_scenario
    from repro.matrices.stencil import poisson_3d_27pt, stencil_rhs
    from repro.solvers.resilient_cg import ResilientCG, SolverConfig

    A = poisson_3d_27pt(points)
    b = stencil_rhs(A, kind="random", seed=7)
    n = A.shape[0]
    comm_default = CommunicationModel()
    with ResilientCG(A, b, config=SolverConfig(
            page_size=page_size, tolerance=tolerance,
            record_history=False)) as ideal_solver:
        tau = ideal_solver.solve().record.solve_time
        num_pages = ideal_solver.blocked.num_blocks

    rows: List[MeasuredRankRow] = []
    samples: List[Tuple[float, float]] = []
    for r in ranks:
        part = StripPartition(A, r, align=page_size)
        model_halo = max(comm_default.halo_exchange(p.halo_sizes())
                         for p in part.partitions)
        model_allreduce = comm_default.allreduce(r, values=num_pages)
        for method in methods:
            strategy = None
            scenario = None
            if method != "ideal":
                strategy = make_strategy(method)
                scenario = multi_error_scenario(
                    [Injection(time=tau * 0.5, vector="x",
                               page=num_pages // 2)],
                    name=f"measured-{method}")
            if method == "ideal" or r == 1:
                # Ideal rows (and single-strip runs, which have no halo
                # to overlap) stay on the cheap legacy cell.
                cfg = SolverConfig(page_size=page_size, tolerance=tolerance,
                                   record_history=False, ranks=r)
            else:
                # The new runtime cell: threaded re-enactment over the
                # rank placement with the wall clock.  pace=0.0 replays
                # actions as fast as possible (the real halo/probe work
                # still takes measurable wall time).
                cfg = SolverConfig(page_size=page_size, tolerance=tolerance,
                                   record_history=False, ranks=r,
                                   scheduler="threaded", placement="ranks",
                                   clock="wall", pace=0.0)
            with ResilientCG(A, b, strategy=strategy, scenario=scenario,
                             config=cfg) as solver:
                result = solver.solve(ideal_time=tau)
            st = result.rank_stats
            if st is not None:
                samples.extend(st.message_samples)
            window = result.window_summary or {}
            rows.append(MeasuredRankRow(
                ranks=r, method=method,
                iterations=result.record.iterations,
                halo_exchanges=st.halo_exchanges if st else 0,
                allreduces=st.allreduces if st else 0,
                measured_halo_ms=(1e3 * st.halo_seconds_per_exchange()
                                  if st else 0.0),
                measured_allreduce_ms=(1e3 * st.allreduce_seconds_per_op()
                                       if st else 0.0),
                model_halo_ms=1e3 * model_halo,
                model_allreduce_ms=1e3 * model_allreduce,
                halo_bytes=st.halo_bytes if st else 0,
                recoveries_by_rank=(dict(st.recoveries_by_rank)
                                    if st else {}),
                halo_overlapped=int(
                    window.get("halo_overlapped_recoveries", 0) or 0)))

    if samples:
        calibrated, latency, bandwidth = fit_communication_model(samples)
    else:                               # single-rank-only sweep
        calibrated, latency, bandwidth = (
            comm_default, comm_default.cost_model.network_latency,
            comm_default.cost_model.network_bandwidth)
    base = ClusterModel(target_points=target_points)
    calibrated_model = ClusterModel(target_points=target_points,
                                    comm_model=calibrated)
    return MeasuredFig5Result(
        rows=rows, points=points, n=n, page_size=page_size,
        fitted_latency=latency, fitted_bandwidth=bandwidth,
        calibrated=calibrated,
        default_comm_per_iter_1024=_comm_per_iteration(base, 1024),
        calibrated_comm_per_iter_1024=_comm_per_iteration(
            calibrated_model, 1024))


def format_fig5_measured(result: MeasuredFig5Result) -> str:
    """Render the measured mini-Figure-5 next to the model's numbers."""
    rows: List[List[object]] = []
    for row in result.rows:
        rows.append([
            row.ranks, row.method, row.iterations,
            1e3 * row.measured_halo_ms, 1e3 * row.model_halo_ms,
            1e3 * row.measured_allreduce_ms, 1e3 * row.model_allreduce_ms,
            row.halo_bytes])
    lines = [format_table(
        ["ranks", "method", "iters", "halo us/ex (meas)",
         "halo us/ex (model)", "allreduce us (meas)",
         "allreduce us (model)", "halo bytes"],
        rows,
        title=(f"Figure 5, measured: rank-parallel CG on "
               f"{result.points}^3 Poisson (n={result.n}, page "
               f"{result.page_size}); real halo exchange + tree "
               f"allreduce wall times vs. the analytic model"))]
    recoveries = {}
    for row in result.rows:
        for rank, count in row.recoveries_by_rank.items():
            recoveries[rank] = recoveries.get(rank, 0) + count
    if recoveries:
        lines.append(f"Recovery solves executed on owning ranks: "
                     f"{dict(sorted(recoveries.items()))}")
    overlap_by_method: Dict[str, int] = {}
    for row in result.rows:
        if row.method != "ideal" and row.ranks > 1:
            overlap_by_method[row.method] = (
                overlap_by_method.get(row.method, 0) + row.halo_overlapped)
    if overlap_by_method:
        parts = ", ".join(f"{m}={c}" for m, c in
                          sorted(overlap_by_method.items()))
        lines.append(
            f"Recovery tasks measurably overlapping the halo exchange on "
            f"the owning rank (threaded x ranks x wall cell): {parts} — "
            f"AFEIR's asynchronous recovery hides in the neighbour "
            f"communication, FEIR's critical-path recovery cannot.")
    lines.append(
        f"Interconnect constants fitted from {len(result.rows)} runs' "
        f"measured transfers: latency {1e6 * result.fitted_latency:.1f} us, "
        f"bandwidth {result.fitted_bandwidth / 1e6:.1f} MB/s "
        f"(shared-memory queues, so expect queue-hop latency, not "
        f"InfiniBand).")
    lines.append(
        f"Ideal-CG comm per iteration at 512^3 on 1024 cores: "
        f"{1e3 * result.default_comm_per_iter_1024:.3f} ms with default "
        f"constants, {1e3 * result.calibrated_comm_per_iter_1024:.3f} ms "
        f"re-anchored on the measured exchanges.")
    lines.append("A single rank exchanges no halo: both columns are 0 at "
                 "ranks=1 (the old model charged a phantom neighbour).")
    return "\n".join(lines)
