"""Figure 5 — speedup of the MPI+OmpSs resilient CGs on 64-1024 cores.

Shapes to reproduce (paper, 27-point Poisson on 512^3 unknowns):

* the ideal CG reaches ~80% parallel efficiency at 1024 cores;
* AFEIR and FEIR scale close to the ideal CG (speedups around 7.5-10 at
  1024 cores with 1-2 errors);
* the Lossy Restart trails them (8.2 / 4.8);
* checkpointing and the trivial method stay below a third of the ideal
  CG's speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.report import format_table
from repro.distributed.cluster import ClusterModel, ScalingResult

#: Paper reference speedups on 1024 cores for quick comparison.
PAPER_FIG5_1024 = {
    ("AFEIR", 1): 10.01, ("AFEIR", 2): 6.03,
    ("FEIR", 1): 7.50, ("FEIR", 2): 7.65,
    ("Lossy", 1): 8.17, ("Lossy", 2): 4.82,
}


@dataclass
class Fig5Result:
    """Scaling results plus the model used to produce them."""

    results: List[ScalingResult]
    model: ClusterModel

    def speedup(self, method: str, cores: int, errors: int) -> float:
        for r in self.results:
            if r.method == method and r.cores == cores and r.errors == errors:
                return r.speedup
        raise KeyError(f"no result for {method} at {cores} cores, "
                       f"{errors} errors")

    def by_errors(self, errors: int) -> List[ScalingResult]:
        return [r for r in self.results
                if r.errors == errors or r.method == "Ideal"]


def run_fig5(core_counts: Sequence[int] = (64, 128, 256, 512, 1024),
             error_counts: Sequence[int] = (1, 2),
             calibration_points: int = 24,
             target_points: int = 512,
             model: Optional[ClusterModel] = None,
             executor=None) -> Fig5Result:
    """Reproduce the Figure 5 scaling study with the simulated cluster.

    The calibration solves (one real resilient-CG run per method and
    error count) are independent, so they run through the same pluggable
    campaign executors as the Figure 4 sweep — pass
    ``executor=make_executor('process')`` to fan them out.
    """
    model = model or ClusterModel(target_points=target_points,
                                  calibration_points=calibration_points)
    results = model.run(core_counts=core_counts, error_counts=error_counts,
                        executor=executor)
    return Fig5Result(results=results, model=model)


def format_fig5(result: Fig5Result) -> str:
    """Render the speedup table (methods x cores, per error count)."""
    cores = sorted({r.cores for r in result.results})
    lines: List[str] = []
    for errors in sorted({r.errors for r in result.results if r.errors > 0}):
        rows: List[List[object]] = []
        methods = ["Ideal"] + sorted({r.method for r in result.results
                                      if r.method != "Ideal"})
        for method in methods:
            row: List[object] = [method]
            for c in cores:
                matches = [r for r in result.results
                           if r.method == method and r.cores == c
                           and (r.errors == errors or method == "Ideal")]
                row.append(matches[0].speedup if matches else float("nan"))
            rows.append(row)
        lines.append(format_table(
            ["method"] + [f"{c} cores" for c in cores], rows,
            title=f"Figure 5: speedup w.r.t. ideal on 64 cores, "
                  f"{errors} error(s) per run"))
        lines.append("")
    eff = result.model.ideal_parallel_efficiency(max(cores))
    lines.append(f"Ideal parallel efficiency at {max(cores)} cores: "
                 f"{100 * eff:.2f}% (paper: 80.17%)")
    return "\n".join(lines)
