"""Figure 3 — convergence over time with a single error in the iterate.

The paper injects one DUE into a page of ``x`` 30 seconds into a ~70 s
solve of the matrix thermal2 and plots ``log10(||Ax-b||/||b||)`` against
wall time for the ideal CG and the four resilience methods.  The shapes
to reproduce:

* the ideal CG is unaffected;
* FEIR and AFEIR continue with (almost) the ideal convergence, AFEIR
  paying slightly less overhead;
* the Lossy Restart shows an immediate residual drop at the error (the
  block-Jacobi interpolation) but converges slower afterwards because of
  the restart;
* checkpointing rolls back and repeats iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.convergence import ResidualHistory
from repro.analysis.report import format_table
from repro.experiments.common import (ExperimentConfig, build_problem,
                                      run_ideal, run_method)
from repro.faults.scenarios import single_error_scenario


@dataclass
class Fig3Result:
    """Residual-vs-time curves per method for the single-error scenario."""

    matrix: str
    injection_time: float
    histories: Dict[str, ResidualHistory]
    final_times: Dict[str, float]
    config: ExperimentConfig

    def series(self, method: str) -> ResidualHistory:
        return self.histories[method]


def run_fig3(config: Optional[ExperimentConfig] = None,
             matrix: str = "thermal2", inject_fraction: float = 0.4,
             page: int = 3) -> Fig3Result:
    """Reproduce Figure 3 on the thermal2 analogue (or any suite matrix)."""
    config = config or ExperimentConfig()
    if not 0.0 < inject_fraction < 1.0:
        raise ValueError("inject_fraction must be in (0, 1)")
    A, b = build_problem(matrix, config)
    ideal = run_ideal(A, b, config, matrix_name=matrix)
    t_inject = inject_fraction * ideal.solve_time
    scenario = single_error_scenario("x", page, t_inject,
                                     name=f"fig3-{matrix}")
    histories: Dict[str, ResidualHistory] = {"Ideal": ideal.record.history}
    final_times: Dict[str, float] = {"Ideal": ideal.solve_time}
    for method in ("AFEIR", "FEIR", "Lossy", "ckpt"):
        run = run_method(A, b, method, scenario, ideal, config,
                         matrix_name=matrix)
        histories[method] = run.record.history
        final_times[method] = run.result.solve_time
    return Fig3Result(matrix=matrix, injection_time=t_inject,
                      histories=histories, final_times=final_times,
                      config=config)


def format_fig3(result: Fig3Result) -> str:
    """Summarise the curves: time to convergence per method."""
    rows: List[List[object]] = []
    ideal_time = result.final_times["Ideal"]
    for method, time in result.final_times.items():
        history = result.histories[method]
        rows.append([method, time,
                     100.0 * (time - ideal_time) / ideal_time,
                     history.final_residual,
                     len(history)])
    return format_table(
        ["method", "time to convergence", "slowdown %", "final residual",
         "recorded points"],
        rows,
        title=(f"Figure 3: single error in x at t={result.injection_time:.3f}s "
               f"({result.matrix})"),
        float_format="{:.4g}")
