"""Table 3 — increase of time spent per state for the FEIR methods.

Paper values (percentage-point increase of each state's share relative
to the ideal CG):

=======  ==========  =======  ======
method   imbalance   runtime  useful
=======  ==========  =======  ======
AFEIR    4.30%       8.11%    1.90%
FEIR     25.06%      7.84%    2.78%
=======  ==========  =======  ======

We reproduce the measurement from the execution traces of the
discrete-event runtime: for each method and matrix, the share of
worker-time spent idle (imbalance), in runtime overhead (task creation
and scheduling) and executing solver tasks (useful) is compared against
the ideal CG's shares, then averaged over matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.report import format_table
from repro.experiments.common import (ExperimentConfig, ideal_cache, run_method)

PAPER_TABLE3 = {
    "AFEIR": {"imbalance": 4.30, "runtime": 8.11, "useful": 1.90},
    "FEIR": {"imbalance": 25.06, "runtime": 7.84, "useful": 2.78},
}


@dataclass
class Table3Result:
    """Mean per-state increases (percentage points, relative shares)."""

    increases: Dict[str, Dict[str, float]]
    config: ExperimentConfig
    #: Mean *measured* per-state shares of the real execution (threaded
    #: backend only): method -> state -> percent of wall worker-time.
    measured_shares: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def as_rows(self) -> List[List[object]]:
        rows = []
        for method, states in self.increases.items():
            paper = PAPER_TABLE3.get(method, {})
            rows.append([method, states["imbalance"], states["runtime"],
                         states["useful"],
                         paper.get("imbalance", float("nan")),
                         paper.get("runtime", float("nan")),
                         paper.get("useful", float("nan"))])
        return rows


def run_table3(config: Optional[ExperimentConfig] = None,
               matrices: Optional[Sequence[str]] = None) -> Table3Result:
    """Reproduce Table 3: per-state time increase of FEIR and AFEIR."""
    config = config or ExperimentConfig()
    cache = ideal_cache(config, matrices)
    accum: Dict[str, Dict[str, List[float]]] = {
        "AFEIR": {"imbalance": [], "runtime": [], "useful": []},
        "FEIR": {"imbalance": [], "runtime": [], "useful": []},
    }
    measured_accum: Dict[str, Dict[str, List[float]]] = {
        "AFEIR": {}, "FEIR": {},
    }
    for name, (A, b, ideal) in cache.items():
        base = ideal.trace.breakdown
        base_frac = base.fractions()
        for method in ("AFEIR", "FEIR"):
            run = run_method(A, b, method, None, ideal, config, matrix_name=name)
            wall_trace = run.result.wall_trace
            if wall_trace is not None:
                for state, share in wall_trace.breakdown.fractions().items():
                    measured_accum[method].setdefault(state, []).append(
                        100.0 * share)
            frac = run.result.trace.breakdown.fractions()
            # Recovery-task execution counts as runtime-side work here: it is
            # activity the ideal run does not have, created by the runtime.
            runtime_share = frac["runtime"] + frac["recovery"]
            base_runtime = base_frac["runtime"] + base_frac["recovery"]
            accum[method]["imbalance"].append(
                100.0 * (frac["idle"] - base_frac["idle"]) / max(base_frac["idle"], 1e-9))
            accum[method]["runtime"].append(
                100.0 * (runtime_share - base_runtime) / max(base_runtime, 1e-9))
            accum[method]["useful"].append(
                100.0 * (frac["useful"] - base_frac["useful"]) / max(base_frac["useful"], 1e-9))
    increases = {method: {state: float(np.mean(vals))
                          for state, vals in states.items()}
                 for method, states in accum.items()}
    measured_shares = {method: {state: float(np.mean(vals))
                                for state, vals in states.items()}
                       for method, states in measured_accum.items() if states}
    return Table3Result(increases=increases, config=config,
                        measured_shares=measured_shares)


def format_table3(result: Table3Result) -> str:
    table = format_table(
        ["method", "imbalance %", "runtime %", "useful %",
         "paper imbalance %", "paper runtime %", "paper useful %"],
        result.as_rows(),
        title="Table 3: increase of time spent per state (FEIR methods)")
    if result.measured_shares:
        lines = [table, "", "measured wall-clock shares (threaded backend):"]
        for method, states in result.measured_shares.items():
            shares = "  ".join(f"{state}={value:.1f}%"
                               for state, value in sorted(states.items()))
            lines.append(f"  {method}: {shares}")
        return "\n".join(lines)
    return table
