"""Shared configuration and helpers for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.analysis.convergence import ConvergenceRecord
from repro.config import DEFAULT_SEED
from repro.core.manager import STRATEGY_NAMES, make_strategy
from repro.faults.scenarios import ErrorScenario
from repro.matrices.suite import PAPER_MATRICES, MatrixInfo
from repro.matrices.stencil import stencil_rhs
from repro.precond.block_jacobi import BlockJacobiPreconditioner
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.solvers.resilient_cg import ResilientCG, SolveResult, SolverConfig


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiment drivers.

    The defaults are chosen so the full Figure 4 sweep runs in minutes on
    a laptop while keeping the page-to-vector geometry (tens of pages per
    vector) representative of the paper's setup.
    """

    num_workers: int = 8
    #: Page size used by the scaled-down experiments.  The paper's
    #: hardware page holds 512 doubles; with the scaled-down matrices we
    #: shrink the page proportionally so each vector still spans tens of
    #: pages (see DESIGN.md, substitution table).
    page_size: int = 128
    work_scale: float = 200.0
    tolerance: float = 1e-10
    max_iterations: int = 20000
    seed: int = DEFAULT_SEED
    cost_model: CostModel = DEFAULT_COST_MODEL
    matrices: Sequence[str] = tuple(PAPER_MATRICES)
    methods: Sequence[str] = STRATEGY_NAMES
    repetitions: int = 2
    preconditioned: bool = False
    checkpoint_interval: Optional[int] = None
    #: Deprecated alias for the runtime's (scheduler, clock) axes:
    #: ``"threaded"`` makes the drivers additionally report *measured*
    #: wall-clock overheads next to the simulated ones; the simulated
    #: numbers themselves are identical in every runtime cell.
    backend: str = "simulated"
    #: Wall-clock pacing of the threaded scheduler (see ``SolverConfig``).
    pace: float = 1.0
    #: Rank-parallel kernel execution (``SolverConfig.ranks``): with
    #: ``ranks > 1`` every solver of the experiment strip-partitions its
    #: kernels over that many rank workers with real halo exchange and
    #: tree allreduces.  Results are bit-identical to ``ranks=1``.
    ranks: int = 1
    #: Explicit runtime axes (``SolverConfig.scheduler`` / ``placement``
    #: / ``clock``); ``None`` defers to the ``backend``/``ranks`` aliases.
    scheduler: Optional[str] = None
    placement: Optional[str] = None
    clock: Optional[str] = None

    def solver_config(self) -> SolverConfig:
        return SolverConfig(tolerance=self.tolerance,
                            max_iterations=self.max_iterations,
                            num_workers=self.num_workers,
                            page_size=self.page_size,
                            cost_model=self.cost_model,
                            work_scale=self.work_scale,
                            record_history=True,
                            backend=self.backend,
                            pace=self.pace,
                            ranks=self.ranks,
                            scheduler=self.scheduler,
                            placement=self.placement,
                            clock=self.clock)


@dataclass
class MethodRun:
    """One (matrix, method, scenario) run plus its baseline comparison."""

    matrix: str
    method: str
    scenario: str
    result: SolveResult
    ideal_time: float
    #: Measured wall-clock of the ideal baseline's real execution
    #: (threaded backend only; 0.0 under pure simulation).
    ideal_wall: float = 0.0

    @property
    def record(self) -> ConvergenceRecord:
        return self.result.record

    @property
    def overhead_percent(self) -> float:
        if self.ideal_time <= 0:
            raise ValueError("ideal time must be positive")
        return 100.0 * (self.result.solve_time - self.ideal_time) / self.ideal_time

    @property
    def measured_overhead_percent(self) -> Optional[float]:
        """Wall-clock overhead of the real execution versus the ideal
        run's real execution, or ``None`` under pure simulation."""
        if self.ideal_wall <= 0 or self.result.wall_clock <= 0:
            return None
        from repro.analysis.overheads import measured_overhead_percent
        return measured_overhead_percent(self.result.wall_clock,
                                         self.ideal_wall)


def build_problem(name: str, config: ExperimentConfig
                  ) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Matrix + right-hand side for one suite entry."""
    info: MatrixInfo = PAPER_MATRICES[name]
    A = info.build()
    b = stencil_rhs(A, kind="random", seed=config.seed)
    return A, b


def make_solver(A: sp.spmatrix, b: np.ndarray, method: Optional[str],
                scenario: Optional[ErrorScenario],
                config: ExperimentConfig, matrix_name: str = "") -> ResilientCG:
    """Construct a :class:`ResilientCG` for one experiment cell."""
    strategy = None
    if method is not None:
        strategy = make_strategy(method, cost_model=config.cost_model,
                                 checkpoint_interval=config.checkpoint_interval)
    preconditioner = None
    if config.preconditioned:
        preconditioner = BlockJacobiPreconditioner(A, page_size=config.page_size)
    return ResilientCG(A, b, strategy=strategy, preconditioner=preconditioner,
                       scenario=scenario, config=config.solver_config(),
                       matrix_name=matrix_name)


def run_ideal(A: sp.spmatrix, b: np.ndarray, config: ExperimentConfig,
              matrix_name: str = "") -> SolveResult:
    """Fault-free, resilience-free baseline used as the "ideal CG"."""
    solver = make_solver(A, b, None, None, config, matrix_name)
    try:
        return solver.solve()
    finally:
        solver.close()


def run_method(A: sp.spmatrix, b: np.ndarray, method: str,
               scenario: Optional[ErrorScenario], ideal: SolveResult,
               config: ExperimentConfig, matrix_name: str = "") -> MethodRun:
    """Run one resilience method against the provided baseline."""
    solver = make_solver(A, b, method, scenario, config, matrix_name)
    try:
        result = solver.solve(ideal_time=ideal.solve_time)
    finally:
        solver.close()
    return MethodRun(matrix=matrix_name, method=method,
                     scenario=scenario.name if scenario else "fault-free",
                     result=result, ideal_time=ideal.solve_time,
                     ideal_wall=ideal.wall_clock)


def ideal_cache(config: ExperimentConfig,
                names: Optional[Sequence[str]] = None
                ) -> Dict[str, Tuple[sp.csr_matrix, np.ndarray, SolveResult]]:
    """Build and solve the ideal baseline for every requested matrix once."""
    cache: Dict[str, Tuple[sp.csr_matrix, np.ndarray, SolveResult]] = {}
    for name in (names if names is not None else config.matrices):
        A, b = build_problem(name, config)
        cache[name] = (A, b, run_ideal(A, b, config, matrix_name=name))
    return cache
