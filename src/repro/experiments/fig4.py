"""Figure 4 — performance slowdown versus normalised error rate.

The paper sweeps 9 matrices x 6 normalised error frequencies
{1, 2, 5, 10, 20, 50} x 5 methods (270 experiments, each repeated >50
times) and plots the harmonic-mean slowdown with respect to the ideal
CG, for CG and block-Jacobi PCG.  Key shapes to reproduce:

* FEIR and AFEIR stay far below the other methods at every rate
  (5.37% / 3.59% at rate 1 for CG in the paper);
* AFEIR is cheaper than FEIR at low rates, the gap closes (and can
  invert) at the highest rates;
* the Lossy Restart sits in between and grows steeply with the rate;
* checkpointing starts around 55% and grows into the hundreds of %;
* the trivial method diverges quickly (several hundred % already at
  rate 5, unbounded beyond).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.stats import harmonic_mean_overhead, mean_and_std
from repro.experiments.common import (ExperimentConfig, MethodRun, ideal_cache,
                                      run_method)
from repro.faults.scenarios import PAPER_ERROR_RATES, ErrorScenario

#: Slowdown assigned to runs that failed to converge within the iteration
#: budget (the paper's y-axis is logarithmic and tops out around 1000%).
DIVERGED_SLOWDOWN = 2000.0


@dataclass
class Fig4Cell:
    """One (matrix, method, rate) aggregate."""

    matrix: str
    method: str
    rate: float
    mean_slowdown: float
    std_slowdown: float
    runs: List[MethodRun] = field(default_factory=list)


@dataclass
class Fig4Result:
    """Full sweep plus per-method/rate summary (the "CG mean" columns)."""

    cells: List[Fig4Cell]
    summary: Dict[Tuple[str, float], float]
    config: ExperimentConfig

    def summary_rows(self) -> List[List[object]]:
        rates = sorted({rate for (_, rate) in self.summary})
        methods = sorted({method for (method, _) in self.summary})
        rows = []
        for method in methods:
            row: List[object] = [method]
            for rate in rates:
                row.append(self.summary.get((method, rate), float("nan")))
            rows.append(row)
        return rows


def run_fig4(config: Optional[ExperimentConfig] = None,
             rates: Sequence[float] = PAPER_ERROR_RATES,
             matrices: Optional[Sequence[str]] = None,
             methods: Optional[Sequence[str]] = None) -> Fig4Result:
    """Reproduce the Figure 4 sweep (possibly on a subset, for quick runs)."""
    config = config or ExperimentConfig()
    methods = list(methods if methods is not None else config.methods)
    cache = ideal_cache(config, matrices)
    cells: List[Fig4Cell] = []
    collected: Dict[Tuple[str, float], List[float]] = {}

    for name, (A, b, ideal) in cache.items():
        for rate in rates:
            for method in methods:
                slowdowns: List[float] = []
                runs: List[MethodRun] = []
                for rep in range(config.repetitions):
                    scenario = ErrorScenario(
                        name=f"{name}-rate{rate:g}-rep{rep}",
                        normalized_rate=float(rate),
                        seed=config.seed + 104729 * rep + int(31 * rate))
                    run = run_method(A, b, method, scenario, ideal, config,
                                     matrix_name=name)
                    runs.append(run)
                    if run.record.converged:
                        slowdowns.append(run.overhead_percent)
                    else:
                        slowdowns.append(DIVERGED_SLOWDOWN)
                mean, std = mean_and_std(slowdowns)
                cells.append(Fig4Cell(matrix=name, method=method, rate=rate,
                                      mean_slowdown=mean, std_slowdown=std,
                                      runs=runs))
                collected.setdefault((method, rate), []).extend(slowdowns)

    summary = {key: harmonic_mean_overhead(np.maximum(values, 0.0))
               for key, values in collected.items()}
    return Fig4Result(cells=cells, summary=summary, config=config)


def format_fig4(result: Fig4Result) -> str:
    """Render the per-method mean slowdown per rate (the "CG mean" block)."""
    rates = sorted({rate for (_, rate) in result.summary})
    headers = ["method"] + [f"rate {rate:g}" for rate in rates]
    label = "PCG" if result.config.preconditioned else "CG"
    return format_table(
        headers, result.summary_rows(),
        title=f"Figure 4 ({label} mean): slowdown % vs normalised error rate")


def format_fig4_per_matrix(result: Fig4Result) -> str:
    """Render every (matrix, method, rate) cell, mirroring the full figure."""
    rows = [[c.matrix, c.method, c.rate, c.mean_slowdown, c.std_slowdown]
            for c in result.cells]
    return format_table(
        ["matrix", "method", "rate", "slowdown %", "std %"], rows,
        title="Figure 4: per-matrix slowdowns")
