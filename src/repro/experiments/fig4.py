"""Figure 4 — performance slowdown versus normalised error rate.

The paper sweeps 9 matrices x 6 normalised error frequencies
{1, 2, 5, 10, 20, 50} x 5 methods (270 experiments, each repeated >50
times) and plots the harmonic-mean slowdown with respect to the ideal
CG, for CG and block-Jacobi PCG.  Key shapes to reproduce:

* FEIR and AFEIR stay far below the other methods at every rate
  (5.37% / 3.59% at rate 1 for CG in the paper);
* AFEIR is cheaper than FEIR at low rates, the gap closes (and can
  invert) at the highest rates;
* the Lossy Restart sits in between and grows steeply with the rate;
* checkpointing starts around 55% and grows into the hundreds of %;
* the trivial method diverges quickly (several hundred % already at
  rate 5, unbounded beyond).

This driver is a thin wrapper over the campaign engine
(:mod:`repro.campaign`): the sweep grid becomes a
:class:`~repro.campaign.CampaignSpec`, so the full figure can run on any
campaign executor — pass ``executor=make_executor('process')`` to fan
the trials out over a process pool with identical statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.campaign.engine import run_campaign
from repro.campaign.executors import CampaignExecutor
from repro.campaign.results import (DIVERGED_SLOWDOWN, CampaignResult,
                                    TrialResult)
from repro.campaign.spec import CampaignSpec, MatrixSpec, SolverKnobs
from repro.experiments.common import ExperimentConfig
from repro.faults.scenarios import PAPER_ERROR_RATES

__all__ = ["DIVERGED_SLOWDOWN", "Fig4Cell", "Fig4Result", "campaign_spec",
           "run_fig4", "format_fig4", "format_fig4_per_matrix"]


@dataclass
class Fig4Cell:
    """One (matrix, method, rate) aggregate."""

    matrix: str
    method: str
    rate: float
    mean_slowdown: float
    std_slowdown: float
    runs: List[TrialResult] = field(default_factory=list)


@dataclass
class Fig4Result:
    """Full sweep plus per-method/rate summary (the "CG mean" columns)."""

    cells: List[Fig4Cell]
    summary: Dict[Tuple[str, float], float]
    config: ExperimentConfig
    campaign: Optional[CampaignResult] = None

    def summary_rows(self) -> List[List[object]]:
        rates = sorted({rate for (_, rate) in self.summary})
        methods = sorted({method for (method, _) in self.summary})
        rows = []
        for method in methods:
            row: List[object] = [method]
            for rate in rates:
                row.append(self.summary.get((method, rate), float("nan")))
            rows.append(row)
        return rows


def campaign_spec(config: ExperimentConfig,
                  rates: Sequence[float] = PAPER_ERROR_RATES,
                  matrices: Optional[Sequence[str]] = None,
                  methods: Optional[Sequence[str]] = None) -> CampaignSpec:
    """The Figure 4 sweep expressed as a campaign."""
    names = list(matrices if matrices is not None else config.matrices)
    methods = list(methods if methods is not None else config.methods)
    knobs = SolverKnobs(
        tolerance=config.tolerance, max_iterations=config.max_iterations,
        num_workers=config.num_workers, page_size=config.page_size,
        work_scale=config.work_scale, preconditioned=config.preconditioned,
        checkpoint_interval=config.checkpoint_interval,
        cost_model=config.cost_model,
        backend=config.backend, pace=config.pace)
    return CampaignSpec(
        matrices=[MatrixSpec.suite(name, rhs_seed=config.seed)
                  for name in names],
        methods=methods, rates=[float(r) for r in rates],
        repetitions=config.repetitions, seed=config.seed, knobs=knobs,
        name="fig4")


def run_fig4(config: Optional[ExperimentConfig] = None,
             rates: Sequence[float] = PAPER_ERROR_RATES,
             matrices: Optional[Sequence[str]] = None,
             methods: Optional[Sequence[str]] = None,
             executor: Optional[CampaignExecutor] = None,
             store=None) -> Fig4Result:
    """Reproduce the Figure 4 sweep (possibly on a subset, for quick runs).

    ``store`` (a :class:`~repro.campaign.store.CampaignStore`) routes
    the sweep through the content-addressed cache: the quick grid warms
    the full nine-matrix sweep, an aborted sweep resumes where it
    stopped, and an unchanged re-run executes zero trials.
    """
    config = config or ExperimentConfig()
    spec = campaign_spec(config, rates=rates, matrices=matrices,
                         methods=methods)
    campaign = run_campaign(spec, executor=executor, store=store)

    grouped: Dict[Tuple[str, str, float], List[TrialResult]] = {}
    for trial in campaign.sorted_trials():
        grouped.setdefault((trial.matrix, trial.method, trial.rate),
                           []).append(trial)
    cells = [Fig4Cell(matrix=matrix, method=method, rate=rate,
                      mean_slowdown=campaign.cell(matrix, method,
                                                  rate).mean_slowdown,
                      std_slowdown=campaign.cell(matrix, method,
                                                 rate).std_slowdown,
                      runs=members)
             for (matrix, method, rate), members in grouped.items()]
    return Fig4Result(cells=cells, summary=campaign.summary(), config=config,
                      campaign=campaign)


def format_fig4(result: Fig4Result) -> str:
    """Render the per-method mean slowdown per rate (the "CG mean" block)."""
    rates = sorted({rate for (_, rate) in result.summary})
    headers = ["method"] + [f"rate {rate:g}" for rate in rates]
    label = "PCG" if result.config.preconditioned else "CG"
    return format_table(
        headers, result.summary_rows(),
        title=f"Figure 4 ({label} mean): slowdown % vs normalised error rate")


def format_fig4_per_matrix(result: Fig4Result) -> str:
    """Render every (matrix, method, rate) cell, mirroring the full figure."""
    rows = [[c.matrix, c.method, c.rate, c.mean_slowdown, c.std_slowdown]
            for c in result.cells]
    return format_table(
        ["matrix", "method", "rate", "slowdown %", "std %"], rows,
        title="Figure 4: per-matrix slowdowns")
