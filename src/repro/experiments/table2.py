"""Table 2 — resilience methods' overheads in the absence of faults.

Paper values (harmonic means over the nine matrices):

=========  ======  =======  =====  =====  =========  ========
method     Lossy   Trivial  AFEIR  FEIR   ckpt 1K    ckpt 200
overhead   0.00%   0.00%    0.23%  2.73%  17.62%     46.20%
=========  ======  =======  =====  =====  =========  ========

The driver runs the ideal CG plus each method with no error injection
and reports the harmonic-mean overhead, including two fixed-interval
checkpointing configurations (every 1000 and every 200 iterations).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.stats import harmonic_mean_overhead
from repro.experiments.common import (ExperimentConfig, MethodRun, ideal_cache,
                                      run_method)

#: Paper reference numbers, used for side-by-side reporting only.
PAPER_TABLE2 = {
    "Lossy": 0.00, "Trivial": 0.00, "AFEIR": 0.23, "FEIR": 2.73,
    "ckpt-1000": 17.62, "ckpt-200": 46.20,
}


@dataclass
class Table2Result:
    """Harmonic-mean fault-free overhead per method, plus raw runs."""

    overheads: Dict[str, float]
    runs: List[MethodRun]
    config: ExperimentConfig
    #: Mean *measured* wall-clock overhead per method — only populated
    #: when the experiment ran on the threaded backend.  Noisy (plain
    #: mean, may be negative) but a direct observation: AFEIR's extra
    #: work really hides under the reductions, FEIR's barrier really
    #: serialises the critical path.
    wall_overheads: Dict[str, float] = field(default_factory=dict)

    def as_rows(self) -> List[List[object]]:
        rows = []
        for method, value in self.overheads.items():
            row = [method, value, PAPER_TABLE2.get(method, float("nan"))]
            if self.wall_overheads:
                row.append(self.wall_overheads.get(method, float("nan")))
            rows.append(row)
        return rows


def run_table2(config: Optional[ExperimentConfig] = None,
               matrices: Optional[Sequence[str]] = None) -> Table2Result:
    """Reproduce Table 2: fault-free overheads of every method.

    The simulated overhead column is deterministic and identical on both
    execution backends; with ``config.backend == "threaded"`` a measured
    wall-clock overhead column is reported alongside it.
    """
    config = config or ExperimentConfig()
    cache = ideal_cache(config, matrices)
    methods = ["Lossy", "Trivial", "AFEIR", "FEIR"]
    runs: List[MethodRun] = []
    per_method: Dict[str, List[float]] = {m: [] for m in methods}
    per_method["ckpt-1000"] = []
    per_method["ckpt-200"] = []
    per_method_wall: Dict[str, List[float]] = {m: [] for m in per_method}

    def collect(label: str, run: MethodRun) -> None:
        runs.append(run)
        per_method[label].append(run.overhead_percent)
        measured = run.measured_overhead_percent
        if measured is not None:
            per_method_wall[label].append(measured)

    for name, (A, b, ideal) in cache.items():
        for method in methods:
            collect(method, run_method(A, b, method, None, ideal, config,
                                       matrix_name=name))
        # The paper's fixed periods (1000 and 200 iterations) assume solves
        # of thousands of iterations.  The scaled-down analogues converge in
        # far fewer, so the two configurations are mapped to the equivalent
        # checkpoint *frequencies*: roughly twice per solve ("ckpt-1000") and
        # roughly ten times per solve ("ckpt-200").
        iters = max(ideal.record.iterations, 1)
        for divisor, label in ((2, "ckpt-1000"), (10, "ckpt-200")):
            interval = max(1, iters // divisor)
            ckpt_config = replace(config, checkpoint_interval=interval)
            collect(label, run_method(A, b, "ckpt", None, ideal, ckpt_config,
                                      matrix_name=name))

    overheads = {method: harmonic_mean_overhead(values)
                 for method, values in per_method.items()}
    wall_overheads = {method: float(np.mean(values))
                      for method, values in per_method_wall.items() if values}
    return Table2Result(overheads=overheads, runs=runs, config=config,
                        wall_overheads=wall_overheads)


def format_table2(result: Table2Result) -> str:
    """Render the reproduction next to the paper's numbers."""
    headers = ["method", "measured overhead %", "paper overhead %"]
    if result.wall_overheads:
        headers.append("wall-clock overhead %")
    return format_table(
        headers, result.as_rows(),
        title="Table 2: resilience methods' overheads, no errors")
