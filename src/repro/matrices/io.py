"""Minimal Matrix Market I/O.

The real evaluation pulls matrices from the UFL collection as ``.mtx``
files.  For users who *do* have those files locally, this module reads
and writes the coordinate Matrix Market format (symmetric or general,
real) without any external dependency, so the suite analogues can be
swapped for the genuine matrices without code changes.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Union

import numpy as np
import scipy.sparse as sp

PathLike = Union[str, Path]


def write_matrix_market(A: sp.spmatrix, path: PathLike,
                        symmetric: bool = None, comment: str = "") -> None:
    """Write ``A`` in coordinate Matrix Market format."""
    A = sp.coo_matrix(A)
    if symmetric is None:
        symmetric = _looks_symmetric(A)
    field = "symmetric" if symmetric else "general"
    path = Path(path)
    with path.open("w") as fh:
        fh.write(f"%%MatrixMarket matrix coordinate real {field}\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        if symmetric:
            mask = A.row >= A.col  # keep the lower triangle only
            rows, cols, vals = A.row[mask], A.col[mask], A.data[mask]
        else:
            rows, cols, vals = A.row, A.col, A.data
        fh.write(f"{A.shape[0]} {A.shape[1]} {len(vals)}\n")
        for r, c, v in zip(rows, cols, vals, strict=True):
            fh.write(f"{r + 1} {c + 1} {v:.17g}\n")


def read_matrix_market(path: PathLike) -> sp.csr_matrix:
    """Read a real coordinate Matrix Market file into CSR form."""
    path = Path(path)
    with path.open("r") as fh:
        return _read_stream(fh)


def _read_stream(fh: io.TextIOBase) -> sp.csr_matrix:
    header = fh.readline()
    if not header.startswith("%%MatrixMarket"):
        raise ValueError("not a MatrixMarket file (missing %%MatrixMarket header)")
    tokens = header.strip().split()
    if len(tokens) < 5 or tokens[1] != "matrix" or tokens[2] != "coordinate":
        raise ValueError(f"unsupported MatrixMarket header: {header.strip()}")
    field, symmetry = tokens[3], tokens[4]
    if field not in ("real", "integer"):
        raise ValueError(f"unsupported field type {field!r} (only real/integer)")
    symmetric = symmetry == "symmetric"
    if symmetry not in ("general", "symmetric"):
        raise ValueError(f"unsupported symmetry {symmetry!r}")

    line = fh.readline()
    while line.startswith("%"):
        line = fh.readline()
    nrows, ncols, nnz = (int(tok) for tok in line.split())

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.empty(nnz, dtype=np.float64)
    for k in range(nnz):
        parts = fh.readline().split()
        if len(parts) < 3:
            raise ValueError(f"truncated MatrixMarket file at entry {k}")
        rows[k] = int(parts[0]) - 1
        cols[k] = int(parts[1]) - 1
        vals[k] = float(parts[2])
    A = sp.coo_matrix((vals, (rows, cols)), shape=(nrows, ncols))
    if symmetric:
        off_diag = sp.coo_matrix(
            (vals[rows != cols], (cols[rows != cols], rows[rows != cols])),
            shape=(nrows, ncols))
        A = A + off_diag
    return A.tocsr()


def _looks_symmetric(A: sp.coo_matrix) -> bool:
    if A.shape[0] != A.shape[1]:
        return False
    diff = (A - A.T).tocsr()
    if diff.nnz == 0:
        return True
    return bool(abs(diff).max() <= 1e-12 * max(abs(A).max(), 1.0))
