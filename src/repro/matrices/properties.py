"""Structural and spectral property checks for test matrices."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla


def is_symmetric(A: sp.spmatrix, tol: float = 1e-12) -> bool:
    """True if ``A`` equals its transpose up to ``tol`` (relative)."""
    A = sp.csr_matrix(A)
    diff = (A - A.T).tocsr()
    if diff.nnz == 0:
        return True
    scale = max(abs(A).max(), 1.0)
    return bool(abs(diff).max() <= tol * scale)


def is_spd(A: sp.spmatrix, tol: float = 1e-10) -> bool:
    """True if ``A`` is symmetric positive definite.

    Uses a sparse Cholesky-free test: symmetry plus positivity of the
    smallest eigenvalue estimated with shift-invert Lanczos (falls back
    to a dense eigenvalue check for small matrices).
    """
    if not is_symmetric(A, tol=1e-9):
        return False
    return smallest_eigenvalue(A) > tol


def smallest_eigenvalue(A: sp.spmatrix) -> float:
    """Smallest eigenvalue of a symmetric sparse matrix."""
    A = sp.csr_matrix(A)
    n = A.shape[0]
    if n <= 600:
        return float(np.linalg.eigvalsh(A.toarray()).min())
    try:
        val = spla.eigsh(A, k=1, which="SA", maxiter=5000,
                         return_eigenvectors=False, tol=1e-6)
        return float(val[0])
    except Exception:
        # Lanczos can fail to converge on tough spectra; fall back to a
        # Gershgorin lower bound, which is conservative but safe.
        diag = A.diagonal()
        off = np.asarray(abs(A).sum(axis=1)).ravel() - np.abs(diag)
        return float(np.min(diag - off))


def bandwidth(A: sp.spmatrix) -> int:
    """Maximum |i - j| over the (numerically) nonzero entries of ``A``."""
    coo = sp.coo_matrix(A)
    coo.eliminate_zeros()
    if coo.nnz == 0:
        return 0
    return int(np.max(np.abs(coo.row - coo.col)))


def nnz_per_row(A: sp.spmatrix) -> float:
    """Average number of nonzeros per row."""
    A = sp.csr_matrix(A)
    return A.nnz / A.shape[0]


@dataclass(frozen=True)
class SpdReport:
    """Summary of an SPD check (returned by :func:`spd_check`)."""

    symmetric: bool
    smallest_eigenvalue: float
    n: int
    nnz: int

    @property
    def spd(self) -> bool:
        return self.symmetric and self.smallest_eigenvalue > 0


def spd_check(A: sp.spmatrix) -> SpdReport:
    """Full SPD report for a matrix (used by the suite self-tests)."""
    A = sp.csr_matrix(A)
    sym = is_symmetric(A, tol=1e-9)
    lam = smallest_eigenvalue(A) if sym else float("nan")
    return SpdReport(symmetric=sym, smallest_eigenvalue=lam,
                     n=A.shape[0], nnz=A.nnz)
