"""Page-blocked view of a sparse matrix.

All recovery relations of Table 1 are expressed per block of rows, where
a block is the set of rows whose vector entries live on one memory page
(512 values).  This class provides, for a CSR matrix ``A``:

* ``row_block(i)``      — the rows of block ``i`` (a CSR slice),
* ``diag_block(i)``     — the dense diagonal block ``A_ii``,
* ``offdiag_product(i, v)`` — ``sum_{j != i} A_ij v_j`` computed as the
  full block-row product minus the diagonal-block contribution,
* cached LU factorisations of the diagonal blocks, shared between the
  block-Jacobi preconditioner and the recovery interpolations (the paper
  notes this sharing makes recovery cheaper when block-Jacobi is used).

Two storage backends are supported and dispatched on transparently: a
SciPy CSR matrix, or the SciPy-free
:class:`~repro.matrices.sparse.SparseOperator` whose row-slab kernels
avoid materialising any dense ``n x n`` (or sliced sparse) intermediate —
the fast path used by large fault-injection campaigns.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np
import scipy.linalg as la
import scipy.sparse as sp

from repro.config import PAGE_DOUBLES
from repro.matrices.sparse import SparseOperator
from repro.memory.pages import page_count, page_slice


class PageBlockedMatrix:
    """CSR matrix with page-aligned row-block structure and cached factors."""

    def __init__(self, A: Union[sp.spmatrix, SparseOperator, np.ndarray],
                 page_size: int = PAGE_DOUBLES):
        if not isinstance(A, SparseOperator):
            A = sp.csr_matrix(A)
        if A.shape[0] != A.shape[1]:
            raise ValueError(f"matrix must be square, got {A.shape}")
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self.A = A
        self.n = A.shape[0]
        self.page_size = int(page_size)
        self.num_blocks = page_count(self.n, self.page_size)
        self._diag_blocks: Dict[int, np.ndarray] = {}
        self._lu_factors: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._slab_cache: Dict[Tuple[int, int], sp.csr_matrix] = {}

    # ------------------------------------------------------------------
    def block_slice(self, block: int) -> slice:
        """Row/column index slice of ``block``."""
        return page_slice(block, self.n, self.page_size)

    def block_size(self, block: int) -> int:
        sl = self.block_slice(block)
        return sl.stop - sl.start

    @property
    def uses_sparse_operator(self) -> bool:
        """True when the SciPy-free fast-path backend is in use."""
        return isinstance(self.A, SparseOperator)

    def row_block(self, block: int) -> sp.csr_matrix:
        """CSR view of the rows in ``block`` (all columns)."""
        sl = self.block_slice(block)
        if self.uses_sparse_operator:
            p0 = int(self.A.indptr[sl.start])
            p1 = int(self.A.indptr[sl.stop])
            return sp.csr_matrix(
                (self.A.data[p0:p1], self.A.indices[p0:p1],
                 self.A.indptr[sl.start:sl.stop + 1] - p0),
                shape=(sl.stop - sl.start, self.n))
        return self.A[sl.start:sl.stop, :]

    def diag_block(self, block: int) -> np.ndarray:
        """Dense diagonal block ``A_ii`` (cached)."""
        if block not in self._diag_blocks:
            sl = self.block_slice(block)
            if self.uses_sparse_operator:
                self._diag_blocks[block] = self.A.dense_block(
                    sl.start, sl.stop, sl.start, sl.stop)
            else:
                self._diag_blocks[block] = (
                    self.A[sl.start:sl.stop, sl.start:sl.stop].toarray())
        return self._diag_blocks[block]

    def diag_factor(self, block: int):
        """LU factorisation of the diagonal block (cached)."""
        if block not in self._lu_factors:
            self._lu_factors[block] = la.lu_factor(self.diag_block(block))
        return self._lu_factors[block]

    def has_cached_factor(self, block: int) -> bool:
        """True if the diagonal block's factorisation is already available."""
        return block in self._lu_factors

    def precompute_factors(self, blocks: Optional[List[int]] = None) -> None:
        """Factorise the requested (default: all) diagonal blocks up front."""
        for block in (range(self.num_blocks) if blocks is None else blocks):
            self.diag_factor(block)

    # ------------------------------------------------------------------
    def matvec(self, v: np.ndarray) -> np.ndarray:
        """Full product ``A v`` on whichever backend is in use."""
        return self.A @ v

    def row_slab(self, start: int, stop: int) -> sp.csr_matrix:
        """CSR of rows ``[start, stop)`` over all columns (cached).

        Works on both backends; the rank runtime uses it to hand each
        rank its strip of the matrix.
        """
        if not 0 <= start <= stop <= self.n:
            raise ValueError(f"row slab [{start}, {stop}) out of range "
                             f"for {self.n} rows")
        key = (start, stop)
        if key not in self._slab_cache:
            if self.uses_sparse_operator:
                p0 = int(self.A.indptr[start])
                p1 = int(self.A.indptr[stop])
                slab = sp.csr_matrix(
                    (self.A.data[p0:p1], self.A.indices[p0:p1],
                     self.A.indptr[start:stop + 1] - p0),
                    shape=(stop - start, self.n))
            else:
                slab = self.A[start:stop, :].tocsr()
            self._slab_cache[key] = slab
        return self._slab_cache[key]

    def range_product(self, start: int, stop: int,
                      v: np.ndarray) -> np.ndarray:
        """``(A v)[start:stop]`` computed with the backend's own kernel.

        The result is bitwise equal to slicing the full product: both
        backends accumulate each row's nonzeros in storage order, so a
        strip-partitioned mat-vec reassembles the single-address-space
        one exactly.
        """
        if self.uses_sparse_operator:
            return self.A.row_slab_matvec(start, stop, v)
        return self.row_slab(start, stop) @ v

    def block_row_product(self, block: int, v: np.ndarray) -> np.ndarray:
        """``(A v)`` restricted to the rows of ``block``."""
        sl = self.block_slice(block)
        return self.range_product(sl.start, sl.stop, v)

    def column_block_dense(self, block: int) -> np.ndarray:
        """Dense copy of the full columns of ``block`` (n x block_size).

        Only the least-squares interpolation needs this tall-skinny
        block; both backends produce it without an ``n x n`` dense
        intermediate.
        """
        sl = self.block_slice(block)
        if self.uses_sparse_operator:
            return self.A.dense_block(0, self.n, sl.start, sl.stop)
        return self.A[:, sl.start:sl.stop].toarray()

    def offdiag_product(self, block: int, v: np.ndarray) -> np.ndarray:
        """``sum_{j != i} A_ij v_j`` for rows in block ``i``."""
        sl = self.block_slice(block)
        full = self.block_row_product(block, v)
        diag_part = self.diag_block(block) @ v[sl.start:sl.stop]
        return full - diag_part

    def solve_diag(self, block: int, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A_ii y = rhs`` with the cached LU factors."""
        rhs = np.asarray(rhs, dtype=np.float64)
        expected = self.block_size(block)
        if rhs.shape[0] != expected:
            raise ValueError(f"rhs for block {block} must have {expected} "
                             f"entries, got {rhs.shape[0]}")
        return la.lu_solve(self.diag_factor(block), rhs)

    def coupled_diag_solve(self, blocks: List[int], rhs: np.ndarray) -> np.ndarray:
        """Solve the coupled system over several diagonal blocks.

        Used when simultaneous errors hit different pages of the same
        vector (Section 2.4, case 1): the unknowns are the union of the
        lost blocks and the system matrix is the corresponding principal
        submatrix of ``A``.
        """
        if not blocks:
            raise ValueError("need at least one block")
        blocks = sorted(set(blocks))
        indices = np.concatenate([np.arange(self.block_slice(b).start,
                                            self.block_slice(b).stop)
                                  for b in blocks])
        if self.uses_sparse_operator:
            sub = self.A.gather_dense(indices)
        else:
            sub = self.A[indices][:, indices].toarray()
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.shape[0] != indices.size:
            raise ValueError(f"rhs must have {indices.size} entries, "
                             f"got {rhs.shape[0]}")
        return np.linalg.solve(sub, rhs)

    # ------------------------------------------------------------------
    def nnz_of_block(self, block: int) -> int:
        """Number of nonzeros in the rows of ``block`` (for the cost model)."""
        sl = self.block_slice(block)
        indptr = self.A.indptr
        return int(indptr[sl.stop] - indptr[sl.start])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PageBlockedMatrix(n={self.n}, blocks={self.num_blocks}, "
                f"page_size={self.page_size})")
