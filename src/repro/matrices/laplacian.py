"""Graph/grid Laplacian builders used by the synthetic matrix suite."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def laplacian_1d(n: int, shift: float = 0.0) -> sp.csr_matrix:
    """1-D Dirichlet Laplacian ([-1, 2, -1]) plus an optional diagonal shift."""
    if n < 1:
        raise ValueError("n must be >= 1")
    main = (2.0 + shift) * np.ones(n)
    off = -np.ones(n - 1)
    return sp.diags([off, main, off], offsets=[-1, 0, 1], format="csr")


def laplacian_2d(nx: int, ny: int = None, anisotropy: float = 1.0,
                 shift: float = 0.0) -> sp.csr_matrix:
    """2-D Laplacian with optional anisotropy (y-coupling scaled)."""
    ny = nx if ny is None else ny
    ix = sp.eye(nx, format="csr")
    iy = sp.eye(ny, format="csr")
    A = sp.kron(iy, laplacian_1d(nx)) + anisotropy * sp.kron(laplacian_1d(ny), ix)
    if shift:
        A = A + shift * sp.eye(A.shape[0])
    return A.tocsr()


def laplacian_3d(nx: int, ny: int = None, nz: int = None,
                 shift: float = 0.0) -> sp.csr_matrix:
    """3-D Laplacian (7-point) with an optional diagonal shift."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    ix = sp.eye(nx, format="csr")
    iy = sp.eye(ny, format="csr")
    iz = sp.eye(nz, format="csr")
    A = (sp.kron(sp.kron(iz, iy), laplacian_1d(nx))
         + sp.kron(sp.kron(iz, laplacian_1d(ny)), ix)
         + sp.kron(sp.kron(laplacian_1d(nz), iy), ix))
    if shift:
        A = A + shift * sp.eye(A.shape[0])
    return A.tocsr()


def graph_laplacian(adjacency: sp.spmatrix, shift: float = 0.0) -> sp.csr_matrix:
    """Laplacian ``D - W`` of a weighted undirected graph, plus a shift.

    A small positive ``shift`` makes the (otherwise singular) Laplacian
    positive definite, which is how several of the synthetic suite
    matrices (thermal/ecology style problems) are constructed.
    """
    W = sp.csr_matrix(adjacency)
    if W.shape[0] != W.shape[1]:
        raise ValueError("adjacency must be square")
    W = (W + W.T) * 0.5
    degrees = np.asarray(W.sum(axis=1)).ravel()
    L = sp.diags(degrees + shift) - W
    return L.tocsr()
