"""Matrix and workload generators.

The paper evaluates on nine SPD matrices from the University of Florida
sparse matrix collection and, for the scaling study, on a 27-point
stencil discretisation of Poisson's equation in 3-D (the HPCG operator).
The collection is not redistributable offline, so this package provides:

* exact stencil/Laplacian generators (Poisson 5/7/27-point), which are
  the real operators for the scaling experiments, and
* a suite of *synthetic analogues* of the nine UFL matrices
  (:mod:`repro.matrices.suite`), SPD by construction, sized down so the
  full 270-experiment sweep of Figure 4 is tractable on a laptop while
  preserving the qualitative spread of conditioning and sparsity that
  drives the paper's per-matrix differences.
"""

from repro.matrices.laplacian import laplacian_1d, laplacian_2d, laplacian_3d
from repro.matrices.properties import (bandwidth, is_spd, is_symmetric,
                                        nnz_per_row, spd_check)
from repro.matrices.random_spd import random_sparse_spd
from repro.matrices.sparse import (SparseOperator, ensure_operator,
                                   laplacian_1d_operator, laplacian_2d_operator)
from repro.matrices.stencil import poisson_2d_5pt, poisson_3d_7pt, poisson_3d_27pt
from repro.matrices.suite import MatrixInfo, PAPER_MATRICES, load_suite, make_matrix

__all__ = [
    "MatrixInfo",
    "PAPER_MATRICES",
    "SparseOperator",
    "ensure_operator",
    "laplacian_1d_operator",
    "laplacian_2d_operator",
    "bandwidth",
    "is_spd",
    "is_symmetric",
    "laplacian_1d",
    "laplacian_2d",
    "laplacian_3d",
    "load_suite",
    "make_matrix",
    "nnz_per_row",
    "poisson_2d_5pt",
    "poisson_3d_7pt",
    "poisson_3d_27pt",
    "random_sparse_spd",
    "spd_check",
]
