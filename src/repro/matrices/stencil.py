"""Finite-difference stencil operators.

The 27-point stencil is the operator used by the paper's scaling study
(Section 5.5) and by the HPCG benchmark: every interior grid point
couples to all 26 neighbours of its 3x3x3 neighbourhood with weight -1
and to itself with weight 26, yielding a symmetric positive definite
matrix (a compact discretisation of -Laplace).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.faults.injector import derive_rng


def _grid_index(nx: int, ny: int, nz: int):
    """Linear index array for an ``nx*ny*nz`` grid (x fastest)."""
    return np.arange(nx * ny * nz).reshape(nz, ny, nx)


def poisson_3d_27pt(nx: int, ny: int = None, nz: int = None) -> sp.csr_matrix:
    """27-point stencil operator on an ``nx x ny x nz`` grid (HPCG style).

    Diagonal is 26, every neighbour in the 3x3x3 box contributes -1.
    Boundary points simply have fewer neighbours (matrix stays SPD,
    strictly diagonally dominant).
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    if min(nx, ny, nz) < 1:
        raise ValueError("grid dimensions must be >= 1")
    idx = _grid_index(nx, ny, nz)
    n = nx * ny * nz
    rows, cols, vals = [], [], []
    offsets = [(dz, dy, dx)
               for dz in (-1, 0, 1) for dy in (-1, 0, 1) for dx in (-1, 0, 1)
               if not (dx == 0 and dy == 0 and dz == 0)]
    for dz, dy, dx in offsets:
        zs = slice(max(0, -dz), nz - max(0, dz))
        ys = slice(max(0, -dy), ny - max(0, dy))
        xs = slice(max(0, -dx), nx - max(0, dx))
        src = idx[zs, ys, xs].ravel()
        zs2 = slice(max(0, dz), nz - max(0, -dz))
        ys2 = slice(max(0, dy), ny - max(0, -dy))
        xs2 = slice(max(0, dx), nx - max(0, -dx))
        dst = idx[zs2, ys2, xs2].ravel()
        rows.append(src)
        cols.append(dst)
        vals.append(np.full(src.size, -1.0))
    rows.append(np.arange(n))
    cols.append(np.arange(n))
    vals.append(np.full(n, 26.0))
    A = sp.coo_matrix((np.concatenate(vals),
                       (np.concatenate(rows), np.concatenate(cols))),
                      shape=(n, n))
    return A.tocsr()


def poisson_3d_7pt(nx: int, ny: int = None, nz: int = None) -> sp.csr_matrix:
    """Standard 7-point finite-difference Laplacian in 3-D."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    if min(nx, ny, nz) < 1:
        raise ValueError("grid dimensions must be >= 1")
    ex = sp.eye(nx, format="csr")
    ey = sp.eye(ny, format="csr")
    ez = sp.eye(nz, format="csr")
    tx = _tridiag(nx)
    ty = _tridiag(ny)
    tz = _tridiag(nz)
    A = (sp.kron(sp.kron(ez, ey), tx)
         + sp.kron(sp.kron(ez, ty), ex)
         + sp.kron(sp.kron(tz, ey), ex))
    return A.tocsr()


def poisson_2d_5pt(nx: int, ny: int = None) -> sp.csr_matrix:
    """Standard 5-point finite-difference Laplacian in 2-D."""
    ny = nx if ny is None else ny
    if min(nx, ny) < 1:
        raise ValueError("grid dimensions must be >= 1")
    ex = sp.eye(nx, format="csr")
    ey = sp.eye(ny, format="csr")
    A = sp.kron(ey, _tridiag(nx)) + sp.kron(_tridiag(ny), ex)
    return A.tocsr()


def _tridiag(n: int) -> sp.csr_matrix:
    """1-D [-1, 2, -1] operator."""
    main = 2.0 * np.ones(n)
    off = -1.0 * np.ones(n - 1)
    return sp.diags([off, main, off], offsets=[-1, 0, 1], format="csr")


def stencil_rhs(A: sp.spmatrix, kind: str = "ones", seed: int = 0) -> np.ndarray:
    """A right-hand side consistent with a known solution.

    ``kind='ones'`` uses b = A @ 1 (so the exact solution is the all-ones
    vector); ``kind='random'`` uses a random unit solution.
    """
    n = A.shape[0]
    if kind == "ones":
        x_star = np.ones(n)
    elif kind == "random":
        rng = derive_rng(seed)
        x_star = rng.standard_normal(n)
        x_star /= np.linalg.norm(x_star)
    else:
        raise ValueError(f"unknown rhs kind {kind!r}")
    return A @ x_star
