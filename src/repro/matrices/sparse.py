"""SciPy-free CSR operator with row-slab kernels (the campaign fast path).

Large fault-injection campaigns run thousands of solver trials, many of
them inside worker processes of a process pool.  Shipping SciPy sparse
matrices through the pool (or materialising dense ``n x n`` arrays for
the recovery relations) dominates the trial cost long before the solver
does at ``n >= 10^4``.  :class:`SparseOperator` is a minimal CSR
container built only on NumPy arrays that provides exactly the kernels
the page-blocked solver and the Table 1 recovery relations need:

* ``matvec`` / ``row_slab_matvec`` — full and row-range products, both
  implemented with one ``np.add.reduceat`` over the slab's nonzeros, so
  recovering a page costs O(nnz of the block row), never O(n^2);
* ``dense_block`` — a dense rectangular sub-block (diagonal blocks for
  the LU solves, column slabs for least-squares interpolation);
* ``gather_dense`` — the dense principal submatrix over a set of rows
  (the coupled multi-page recovery solve of Section 2.4).

:class:`~repro.matrices.blocked.PageBlockedMatrix` accepts either a
SciPy sparse matrix or a :class:`SparseOperator` and dispatches every
block kernel accordingly, so the solver, FEIR/AFEIR recovery and the
relations are backend-agnostic.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np


class SparseOperator:
    """Immutable CSR matrix backed by plain NumPy arrays.

    Parameters
    ----------
    data, indices, indptr:
        Standard CSR arrays.  Column indices must be sorted within each
        row and contain no duplicates (all constructors guarantee this).
    shape:
        Matrix shape ``(rows, cols)``.
    """

    __slots__ = ("data", "indices", "indptr", "shape")

    def __init__(self, data: np.ndarray, indices: np.ndarray,
                 indptr: np.ndarray, shape: Tuple[int, int]):
        self.data = np.asarray(data, dtype=np.float64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.shape = (int(shape[0]), int(shape[1]))
        if self.indptr.shape[0] != self.shape[0] + 1:
            raise ValueError(f"indptr must have {self.shape[0] + 1} entries, "
                             f"got {self.indptr.shape[0]}")
        if self.data.shape[0] != self.indices.shape[0]:
            raise ValueError("data and indices must have the same length")
        if int(self.indptr[-1]) != self.data.shape[0]:
            raise ValueError("indptr[-1] must equal nnz")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, array: np.ndarray) -> "SparseOperator":
        """CSR view of a dense 2-d array (zeros dropped)."""
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError("from_dense needs a 2-d array")
        rows, cols = np.nonzero(array)
        counts = np.bincount(rows, minlength=array.shape[0])
        indptr = np.zeros(array.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(array[rows, cols], cols, indptr, array.shape)

    @classmethod
    def from_scipy(cls, A) -> "SparseOperator":
        """Convert anything SciPy-sparse-like (has ``tocsr``)."""
        csr = A.tocsr()
        if hasattr(csr, "sort_indices"):
            csr.sort_indices()
        return cls(np.array(csr.data, dtype=np.float64, copy=True),
                   np.array(csr.indices, dtype=np.int64, copy=True),
                   np.array(csr.indptr, dtype=np.int64, copy=True),
                   csr.shape)

    @classmethod
    def from_coo(cls, rows: Iterable[int], cols: Iterable[int],
                 values: Iterable[float],
                 shape: Tuple[int, int]) -> "SparseOperator":
        """Build from COO triplets; duplicate entries are summed."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if not (rows.shape == cols.shape == values.shape):
            raise ValueError("rows, cols and values must have the same length")
        order = np.lexsort((cols, rows))
        rows, cols, values = rows[order], cols[order], values[order]
        if rows.size:
            fresh = np.empty(rows.size, dtype=bool)
            fresh[0] = True
            fresh[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            starts = np.flatnonzero(fresh)
            values = np.add.reduceat(values, starts)
            rows, cols = rows[starts], cols[starts]
        counts = np.bincount(rows, minlength=shape[0])
        indptr = np.zeros(shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(values, cols, indptr, shape)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.shape[0]

    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    @property
    def dtype(self):
        return self.data.dtype

    # ------------------------------------------------------------------
    # products
    # ------------------------------------------------------------------
    def matvec(self, v: np.ndarray) -> np.ndarray:
        """``A @ v`` for a 1-d vector ``v``."""
        return self.row_slab_matvec(0, self.shape[0], v)

    def row_slab_matvec(self, start: int, stop: int,
                        v: np.ndarray) -> np.ndarray:
        """``(A @ v)[start:stop]`` touching only the slab's nonzeros."""
        if not (0 <= start <= stop <= self.shape[0]):
            raise ValueError(f"row slab [{start}, {stop}) out of range "
                             f"for {self.shape[0]} rows")
        v = np.asarray(v)
        if v.shape[0] != self.shape[1]:
            raise ValueError(f"vector has length {v.shape[0]}, "
                             f"expected {self.shape[1]}")
        p0 = int(self.indptr[start])
        p1 = int(self.indptr[stop])
        out = np.zeros(stop - start, dtype=np.float64)
        if p1 == p0:
            return out
        prod = self.data[p0:p1] * v[self.indices[p0:p1]]
        counts = np.diff(self.indptr[start:stop + 1])
        nonempty = np.flatnonzero(counts)
        # reduceat over the offsets of the non-empty rows: consecutive
        # offsets delimit exactly one row's nonzeros (empty rows own none).
        offsets = (self.indptr[start:stop] - p0)[nonempty]
        out[nonempty] = np.add.reduceat(prod, offsets)
        return out

    def __matmul__(self, other):
        other = np.asarray(other)
        if other.ndim == 1:
            return self.matvec(other)
        if other.ndim == 2:
            out = np.empty((self.shape[0], other.shape[1]), dtype=np.float64)
            for j in range(other.shape[1]):
                out[:, j] = self.matvec(other[:, j])
            return out
        raise ValueError("can only multiply by 1-d or 2-d arrays")

    # ------------------------------------------------------------------
    # dense extraction (small blocks only)
    # ------------------------------------------------------------------
    def dense_block(self, row_start: int, row_stop: int,
                    col_start: int, col_stop: int) -> np.ndarray:
        """Dense copy of ``A[row_start:row_stop, col_start:col_stop]``."""
        if not (0 <= row_start <= row_stop <= self.shape[0]):
            raise ValueError("row range out of bounds")
        if not (0 <= col_start <= col_stop <= self.shape[1]):
            raise ValueError("column range out of bounds")
        out = np.zeros((row_stop - row_start, col_stop - col_start))
        p0 = int(self.indptr[row_start])
        p1 = int(self.indptr[row_stop])
        if p1 == p0:
            return out
        rows = np.repeat(np.arange(row_stop - row_start),
                         np.diff(self.indptr[row_start:row_stop + 1]))
        cols = self.indices[p0:p1]
        mask = (cols >= col_start) & (cols < col_stop)
        out[rows[mask], cols[mask] - col_start] = self.data[p0:p1][mask]
        return out

    def gather_dense(self, indices: Sequence[int]) -> np.ndarray:
        """Dense principal submatrix ``A[indices][:, indices]``."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            raise ValueError("need at least one index")
        sorter = np.argsort(idx, kind="stable")
        sorted_idx = idx[sorter]
        out = np.zeros((idx.size, idx.size))
        for k, row in enumerate(idx):
            seg = slice(int(self.indptr[row]), int(self.indptr[row + 1]))
            cols = self.indices[seg]
            pos = np.searchsorted(sorted_idx, cols)
            pos = np.minimum(pos, idx.size - 1)
            hit = sorted_idx[pos] == cols
            out[k, sorter[pos[hit]]] = self.data[seg][hit]
        return out

    def diagonal(self) -> np.ndarray:
        """The main diagonal as a dense vector."""
        out = np.zeros(min(self.shape))
        for row in range(out.shape[0]):
            seg = slice(int(self.indptr[row]), int(self.indptr[row + 1]))
            hits = np.flatnonzero(self.indices[seg] == row)
            if hits.size:
                out[row] = self.data[seg][hits[0]]
        return out

    def toarray(self) -> np.ndarray:
        """Full dense copy (tests and tiny matrices only)."""
        return self.dense_block(0, self.shape[0], 0, self.shape[1])

    def row_slab_nnz(self, start: int, stop: int) -> int:
        """Number of nonzeros in rows ``[start, stop)``."""
        return int(self.indptr[stop] - self.indptr[start])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SparseOperator(shape={self.shape}, nnz={self.nnz})")


def ensure_operator(A) -> SparseOperator:
    """Coerce a SciPy matrix / dense array / operator to a SparseOperator."""
    if isinstance(A, SparseOperator):
        return A
    if hasattr(A, "tocsr"):
        return SparseOperator.from_scipy(A)
    return SparseOperator.from_dense(np.asarray(A))


# ----------------------------------------------------------------------
# SciPy-free stencil builders (campaign matrix families)
# ----------------------------------------------------------------------
def laplacian_1d_operator(n: int, shift: float = 0.0) -> SparseOperator:
    """1-D Dirichlet Laplacian ([-1, 2, -1]) built without SciPy."""
    if n < 1:
        raise ValueError("n must be >= 1")
    diag = np.arange(n)
    rows = [diag, diag[:-1], diag[1:]]
    cols = [diag, diag[1:], diag[:-1]]
    vals = [np.full(n, 2.0 + shift), np.full(n - 1, -1.0),
            np.full(n - 1, -1.0)]
    return SparseOperator.from_coo(np.concatenate(rows),
                                   np.concatenate(cols),
                                   np.concatenate(vals), (n, n))


def laplacian_2d_operator(nx: int, ny: int = None,
                          shift: float = 0.0) -> SparseOperator:
    """2-D 5-point Laplacian on an ``nx x ny`` grid, built without SciPy."""
    ny = nx if ny is None else ny
    if min(nx, ny) < 1:
        raise ValueError("grid dimensions must be >= 1")
    n = nx * ny
    idx = np.arange(n).reshape(ny, nx)
    rows, cols, vals = [], [], []
    rows.append(idx.ravel())
    cols.append(idx.ravel())
    vals.append(np.full(n, 4.0 + shift))
    for src, dst in (((slice(None), slice(0, nx - 1)),
                      (slice(None), slice(1, nx))),
                     ((slice(0, ny - 1), slice(None)),
                      (slice(1, ny), slice(None)))):
        a = idx[src].ravel()
        b = idx[dst].ravel()
        rows.extend((a, b))
        cols.extend((b, a))
        vals.extend((np.full(a.size, -1.0), np.full(a.size, -1.0)))
    return SparseOperator.from_coo(np.concatenate(rows),
                                   np.concatenate(cols),
                                   np.concatenate(vals), (n, n))
