"""Random sparse SPD matrix generators (for property-based tests and the suite)."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.config import DEFAULT_SEED
from repro.faults.injector import derive_rng


def random_sparse_spd(n: int, density: float = 0.01, *,
                      condition_boost: float = 1.0,
                      seed: int = DEFAULT_SEED) -> sp.csr_matrix:
    """A random sparse SPD matrix of order ``n``.

    Construction: sample a sparse matrix ``B``, symmetrise it, and add a
    diagonal that makes the result strictly diagonally dominant (hence
    SPD).  ``condition_boost`` < 1 shrinks the dominance margin and makes
    the matrix worse conditioned (more CG iterations), > 1 the opposite.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 < density <= 1:
        raise ValueError("density must be in (0, 1]")
    if condition_boost <= 0:
        raise ValueError("condition_boost must be positive")
    rng = derive_rng(seed)
    nnz = max(n, int(density * n * n))
    rows = rng.integers(0, n, size=nnz)
    cols = rng.integers(0, n, size=nnz)
    vals = rng.standard_normal(nnz)
    B = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    S = (B + B.T) * 0.5
    S.setdiag(0.0)
    S.eliminate_zeros()
    row_abs = np.asarray(abs(S).sum(axis=1)).ravel()
    diag = row_abs * (1.0 + 0.1 * condition_boost) + 1e-3 * condition_boost
    A = S + sp.diags(diag)
    return A.tocsr()


def random_dense_spd(n: int, condition: float = 100.0,
                     seed: int = DEFAULT_SEED) -> np.ndarray:
    """A dense SPD matrix with approximately the requested condition number.

    Built from a random orthogonal basis and a log-spaced spectrum, so it
    is exactly SPD and the conditioning is controlled; used for testing
    the recovery relations on diagonal blocks.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if condition < 1:
        raise ValueError("condition must be >= 1")
    rng = derive_rng(seed)
    Q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    eigenvalues = np.logspace(0.0, np.log10(condition), n)
    return (Q * eigenvalues) @ Q.T
