"""Synthetic analogues of the paper's nine UFL test matrices.

The paper (Section 5.1) selects nine well-conditioned SPD matrices from
the University of Florida collection, one per family, among the biggest:
af_shell8, cfd2, consph, Dubcova3, ecology2, parabolic_fem, qa8fm,
thermal2 and thermomech (thermomech_dM).  The collection cannot be
bundled offline, so each entry here is a *synthetic analogue*: an SPD
matrix built from a structurally similar generator (FEM-like stiffness,
CFD pressure-like, 2-D/3-D Laplacian-like, shifted graph Laplacian),
scaled down to a few thousand rows so that the entire Figure 4 sweep
(9 matrices x 6 error rates x 5 methods x repetitions) runs in minutes.

What the reproduction needs from these matrices is the qualitative
spread the paper's discussion relies on: some problems converge in a few
dozen iterations (qa8fm-like), some in hundreds (thermal-like), they have
different nnz/row, and all are SPD so CG and the exact recovery relations
apply.  The :class:`MatrixInfo` records carry the original matrix's
published size/nnz so DESIGN/EXPERIMENTS can report the substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.faults.injector import derive_rng
from repro.matrices.laplacian import graph_laplacian, laplacian_2d, laplacian_3d
from repro.matrices.stencil import poisson_2d_5pt, poisson_3d_7pt, poisson_3d_27pt


@dataclass(frozen=True)
class MatrixInfo:
    """Description of one suite entry."""

    name: str
    #: Rows of the synthetic analogue (page-aligned where possible).
    n: int
    #: Rows of the original UFL matrix (for documentation only).
    original_n: int
    #: Nonzeros of the original UFL matrix (for documentation only).
    original_nnz: int
    #: Short description of the original problem family.
    family: str
    #: Generator producing the analogue.
    generator: Callable[[], sp.csr_matrix]

    def build(self) -> sp.csr_matrix:
        """Materialise the analogue matrix (CSR, float64, SPD)."""
        A = self.generator().tocsr().astype(np.float64)
        if A.shape[0] != A.shape[1]:
            raise RuntimeError(f"generator for {self.name} returned a "
                               f"non-square matrix {A.shape}")
        return A


# ----------------------------------------------------------------------
# generators — each returns an SPD matrix of a few thousand rows
# ----------------------------------------------------------------------
def _af_shell8_like() -> sp.csr_matrix:
    """Shell/stiffness-like: 2-D Laplacian with strong anisotropy and a
    banded overlay giving several nonzero diagonals (af_shell8 has ~35
    nnz/row from shell finite elements)."""
    base = laplacian_2d(72, 72, anisotropy=4.0, shift=1e-3)
    n = base.shape[0]
    overlay = sp.diags([np.full(n - 72 * 2, -0.25)] * 2,
                       offsets=[144, -144], shape=(n, n))
    return (base + overlay + 0.5 * sp.eye(n)).tocsr()


def _cfd2_like() -> sp.csr_matrix:
    """CFD pressure-matrix-like: 3-D 7-point Laplacian with mild random
    symmetric perturbation of the couplings."""
    A = poisson_3d_7pt(17, 17, 17).tolil()
    rng = derive_rng(1202)
    A = A.tocsr()
    noise = sp.random(A.shape[0], A.shape[0], density=5e-4, random_state=rng,
                      data_rvs=lambda k: -0.1 * rng.random(k))
    noise = (noise + noise.T) * 0.5
    row_abs = np.asarray(abs(noise).sum(axis=1)).ravel()
    return (A + noise + sp.diags(row_abs + 1e-6)).tocsr()


def _consph_like() -> sp.csr_matrix:
    """Concentric-spheres FEM-like: 3-D Laplacian with heavier diagonal."""
    A = laplacian_3d(16, 16, 16, shift=0.05)
    return A.tocsr()


def _dubcova3_like() -> sp.csr_matrix:
    """PDE FEM-like (Dubcova): 2-D 5-point Poisson on a square grid."""
    return poisson_2d_5pt(64, 64)


def _ecology2_like() -> sp.csr_matrix:
    """Circuit-theory landscape model: large sparse 2-D grid Laplacian
    with a small shift (ecology2 is a 5-point-like grid problem)."""
    return laplacian_2d(80, 52, anisotropy=1.0, shift=2e-2)


def _parabolic_fem_like() -> sp.csr_matrix:
    """Parabolic FEM (diffusion time step): Laplacian plus mass-like shift."""
    A = poisson_2d_5pt(64, 64)
    return (0.01 * A + sp.eye(A.shape[0])).tocsr()


def _qa8fm_like() -> sp.csr_matrix:
    """Acoustics mass-matrix-like: strongly diagonally dominant, converges
    in a few dozen iterations (the paper notes qa8fm converges fastest)."""
    A = laplacian_3d(16, 16, 16)
    return (0.05 * A + sp.eye(A.shape[0])).tocsr()


def _thermal2_like() -> sp.csr_matrix:
    """Unstructured thermal problem: graph Laplacian on a randomised mesh
    with a tiny shift, giving slow CG convergence (thermal2 is the
    slowest-converging matrix in the paper's set)."""
    nx, ny = 96, 43
    grid = laplacian_2d(nx, ny, shift=0.0)
    rng = derive_rng(77)
    n = grid.shape[0]
    extra = sp.random(n, n, density=3e-4, random_state=rng,
                      data_rvs=lambda k: rng.random(k))
    W = extra + extra.T
    return (graph_laplacian(W, shift=0.0) + grid + 1e-4 * sp.eye(n)).tocsr()


def _thermomech_like() -> sp.csr_matrix:
    """Thermomechanical FEM-like: well conditioned, fast converging."""
    A = laplacian_3d(15, 15, 15, shift=0.5)
    return A.tocsr()


#: The nine matrices of the paper's single-node evaluation.
PAPER_MATRICES: Dict[str, MatrixInfo] = {
    "af_shell8": MatrixInfo("af_shell8", 72 * 72, 504855, 17579155,
                            "sheet metal forming, shell elements", _af_shell8_like),
    "cfd2": MatrixInfo("cfd2", 17 ** 3, 123440, 3085406,
                       "CFD pressure matrix", _cfd2_like),
    "consph": MatrixInfo("consph", 16 ** 3, 83334, 6010480,
                         "FEM concentric spheres", _consph_like),
    "Dubcova3": MatrixInfo("Dubcova3", 64 * 64, 146689, 3636643,
                           "2-D PDE finite elements", _dubcova3_like),
    "ecology2": MatrixInfo("ecology2", 80 * 52, 999999, 4995991,
                           "landscape circuit theory (5-point grid)", _ecology2_like),
    "parabolic_fem": MatrixInfo("parabolic_fem", 64 * 64, 525825, 3674625,
                                "parabolic FEM diffusion", _parabolic_fem_like),
    "qa8fm": MatrixInfo("qa8fm", 16 ** 3, 66127, 1660579,
                        "3-D acoustics mass matrix", _qa8fm_like),
    "thermal2": MatrixInfo("thermal2", 96 * 43, 1228045, 8580313,
                           "unstructured steady-state thermal", _thermal2_like),
    "thermomech": MatrixInfo("thermomech", 15 ** 3, 204316, 1423116,
                             "thermomechanical FEM (thermomech_dM)", _thermomech_like),
}


def make_matrix(name: str) -> sp.csr_matrix:
    """Build the synthetic analogue for one of the paper's matrices."""
    try:
        info = PAPER_MATRICES[name]
    except KeyError:
        raise KeyError(f"unknown matrix {name!r}; available: "
                       f"{sorted(PAPER_MATRICES)}") from None
    return info.build()


def load_suite(names: Optional[List[str]] = None
               ) -> List[Tuple[MatrixInfo, sp.csr_matrix]]:
    """Materialise (info, matrix) pairs for the requested suite entries."""
    selected = list(PAPER_MATRICES) if names is None else list(names)
    out: List[Tuple[MatrixInfo, sp.csr_matrix]] = []
    for name in selected:
        info = PAPER_MATRICES[name]
        out.append((info, info.build()))
    return out


def scaling_matrix(points_per_dim: int = 48) -> sp.csr_matrix:
    """The 27-point Poisson operator used for the Figure 5 scaling study.

    The paper uses 512^3 unknowns; the default here is far smaller so the
    simulated-cluster benchmark stays laptop-sized.  The cost model of the
    distributed layer extrapolates timing to the paper's problem size.
    """
    return poisson_3d_27pt(points_per_dim)
