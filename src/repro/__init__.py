"""repro — reproduction of "Exploiting Asynchrony from Exact Forward Recovery
for DUE in Iterative Solvers" (Jaulmes et al., SC 2015).

The package provides:

* page-blocked Krylov solvers (CG, PCG, BiCGStab, GMRES) and a
  task-decomposed resilient CG (:class:`repro.solvers.ResilientCG`),
* the forward exact interpolation recoveries FEIR and AFEIR, plus the
  Lossy Restart, checkpoint/rollback and trivial baselines
  (:mod:`repro.core`),
* a software-paged memory + DUE fault-injection substrate
  (:mod:`repro.memory`, :mod:`repro.faults`),
* a deterministic discrete-event task runtime standing in for OmpSs
  (:mod:`repro.runtime`) and a simulated MPI layer (:mod:`repro.distributed`),
* workload generators (:mod:`repro.matrices`), preconditioners
  (:mod:`repro.precond`) and experiment drivers reproducing every table
  and figure of the paper's evaluation (:mod:`repro.experiments`).

Quick start::

    import numpy as np
    from repro import ResilientCG, SolverConfig, make_strategy
    from repro.matrices import poisson_2d_5pt
    from repro.matrices.stencil import stencil_rhs

    A = poisson_2d_5pt(64)
    b = stencil_rhs(A)
    solver = ResilientCG(A, b, strategy=make_strategy("FEIR"),
                         config=SolverConfig(num_workers=8))
    result = solver.solve()
    print(result.record.summary())
"""

from repro.config import PAGE_BYTES, PAGE_DOUBLES
from repro.core import (AFEIRStrategy, CheckpointStrategy, FEIRStrategy,
                        LossyRestartStrategy, RecoveryStrategy, TrivialStrategy,
                        make_strategy)
from repro.faults import ErrorScenario, single_error_scenario
from repro.memory import MemoryManager, PagedVector
from repro.precond import (BlockJacobiPreconditioner, IdentityPreconditioner,
                           JacobiPreconditioner)
from repro.runtime import CostModel
from repro.solvers import (ResilientCG, SolverConfig, bicgstab,
                           conjugate_gradient, gmres,
                           preconditioned_conjugate_gradient)

__version__ = "1.0.0"

__all__ = [
    "AFEIRStrategy",
    "BlockJacobiPreconditioner",
    "CheckpointStrategy",
    "CostModel",
    "ErrorScenario",
    "FEIRStrategy",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "LossyRestartStrategy",
    "MemoryManager",
    "PAGE_BYTES",
    "PAGE_DOUBLES",
    "PagedVector",
    "RecoveryStrategy",
    "ResilientCG",
    "SolverConfig",
    "TrivialStrategy",
    "bicgstab",
    "conjugate_gradient",
    "gmres",
    "make_strategy",
    "preconditioned_conjugate_gradient",
    "single_error_scenario",
    "__version__",
]
