"""Resilient, task-decomposed Conjugate Gradient (Sections 3.3 and 5).

This is the paper's implementation target: a page-blocked CG (optionally
block-Jacobi preconditioned) whose iterations are strip-mined into tasks
executed by the discrete-event runtime, with

* double-buffered search direction ``d`` (Listing 2), so the in-place
  update never destroys the only copy of recoverable data,
* a per-page skip protocol for reduction contributions of pages known to
  be lost (Section 3.3.2),
* fault injection according to an :class:`~repro.faults.ErrorScenario`,
* a pluggable recovery strategy (FEIR, AFEIR, Lossy Restart,
  checkpoint/rollback, trivial); FEIR/AFEIR add r1/r2/r3 recovery tasks
  to every iteration, either in the critical path or overlapped.

Execution model
---------------
Numerical work is performed eagerly with NumPy, while *time* is
simulated: each iteration's task graph is scheduled on ``num_workers``
workers by the list scheduler and the makespan advances the simulated
clock.  Fault injection times are interpreted on that clock.  With
``SolverConfig(backend="threaded")`` the same graphs are *additionally*
executed for real on worker threads each iteration — recovery tasks
genuinely overlap the reductions, wall-clock time and per-state shares
are measured, and the vulnerable-window monitor records the gap between
each recovery task and its dependent scalar — while the simulated
timeline stays authoritative for every clock-dependent decision, so the
two backends agree bit-for-bit.  Within an iteration, faults are
materialised at four check points:

=====  ==============================  =========================
point  position in the iteration       covering recovery task
=====  ==============================  =========================
``A``  before the rho/beta scalar      ``r2``
``B``  after the d update, before A*d  (handled eagerly)
``C``  before the alpha scalar         ``r1``
``D``  end of the iteration            ``r3``
=====  ==============================  =========================

With FEIR the recovery tasks are barriers, so every fault detected
before a scalar is repaired in time.  With AFEIR a fault injected after
the covering recovery task has started but before the scalar runs cannot
be repaired in time: the affected page's contribution to that reduction
is *skipped*, the dependent per-page update is deferred, and the page is
repaired exactly at point ``D`` (the relations ``g = b - Ax`` and
``q = A d`` still hold there), after which the skipped update is
re-executed.  This reproduces the coverage/overhead trade-off of
Section 5.4: AFEIR never loses exactness of the data, but high error
rates pollute the reductions and slow convergence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np
import scipy.sparse as sp

from repro.analysis.convergence import ConvergenceRecord, ResidualHistory
from repro.config import (DEFAULT_MAX_ITERATIONS, DEFAULT_TOLERANCE,
                          DEFAULT_WORKERS, PAGE_DOUBLES)
from repro.core.checkpoint import CheckpointStrategy
from repro.core.relations import MatVecRelation, ResidualRelation
from repro.core.strategy import RecoveryStats, RecoveryStrategy
from repro.faults.injector import Injection
from repro.faults.scenarios import ErrorScenario
from repro.matrices.blocked import PageBlockedMatrix
from repro.matrices.sparse import SparseOperator
from repro.memory.manager import MemoryManager
from repro.memory.pages import PagedVector
from repro.precond.base import Preconditioner
from repro.runtime.async_exec import VulnerableWindowMonitor
from repro.runtime.backend import ExecutionResult
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.runtime.runtime import make_runtime
from repro.runtime.graph import TaskGraph
from repro.runtime.scheduler import ScheduleResult
from repro.runtime.task import TaskKind
from repro.runtime.trace import ExecutionTrace


@dataclass
class SolverConfig:
    """Configuration of the resilient CG run."""

    tolerance: float = DEFAULT_TOLERANCE
    max_iterations: int = DEFAULT_MAX_ITERATIONS
    num_workers: int = DEFAULT_WORKERS
    page_size: int = PAGE_DOUBLES
    cost_model: CostModel = DEFAULT_COST_MODEL
    #: Scale factor applied to compute-task durations (and checkpoint
    #: volume) so the scaled-down test matrices are *timed* as if they
    #: had the paper's problem sizes.  Purely a timing device; the
    #: numerics are untouched.
    work_scale: float = 200.0
    #: Record the per-iteration residual history.
    record_history: bool = True
    #: Injection schedule horizon, as a multiple of the ideal solve time.
    horizon_factor: float = 50.0
    #: Extra simulated cost of servicing one page fault (signal delivery,
    #: page re-mapping by the OS), charged per detected DUE.
    fault_service_time: float = 0.5e-3
    #: Deprecated alias for the runtime's (scheduler, clock) axes:
    #: ``"simulated"`` resolves to (list, simulated), ``"threaded"`` to
    #: (threaded, wall).  A legacy name only fills in axes not given
    #: explicitly below.  The simulated timeline — and therefore every
    #: clock-dependent decision — is bit-identical across all cells.
    backend: str = "simulated"
    #: Cap on the threaded scheduler's real thread count (``None``: one
    #: thread per simulated worker, capped by ``REPRO_MAX_WORKERS``).
    max_threads: Optional[int] = None
    #: Wall-clock pacing of the threaded scheduler: each task occupies
    #: its thread for at least ``duration * pace`` real seconds, so
    #: schedule effects (overlap, barriers) are physically measurable.
    #: 0 disables.
    pace: float = 1.0
    #: Rank-parallel execution (``repro.distributed.ranks``): with
    #: ``ranks > 1`` the numerical kernels are strip-partitioned over
    #: that many rank workers with real halo exchange, tree allreduces
    #: and owner-local recovery.  The reductions are reproducibly
    #: ordered, so results are bit-identical to ``ranks=1``; the
    #: simulated timeline is unaffected either way.  ``ranks > 1``
    #: implies ``placement="ranks"``.
    ranks: int = 1
    #: Runtime axes (:func:`repro.runtime.runtime.make_runtime`).  Each
    #: ``None`` is filled in from the deprecated ``backend``/``ranks``
    #: aliases above: scheduler "list"/"threaded" (how graphs run),
    #: placement "local"/"ranks" (where kernels run), clock
    #: "simulated"/"wall" (which timeline is reported).
    scheduler: Optional[str] = None
    placement: Optional[str] = None
    clock: Optional[str] = None


@dataclass
class CGState:
    """Solver state handed to recovery strategies (see ``core.strategy``)."""

    blocked: PageBlockedMatrix
    b: np.ndarray
    vectors: Dict[str, PagedVector]
    memory: MemoryManager
    residual_relation: ResidualRelation
    matvec_relation: MatVecRelation
    preconditioner: Optional[Preconditioner]
    current_d_name: str = "d0"
    previous_d_name: str = "d1"
    #: Where in the iteration we are ("A", "B", "C" or "D").
    point: str = "A"
    #: Scalars available for relation-based recovery (e.g. ``beta``).
    scalars: Dict[str, float] = field(default_factory=dict)


@dataclass
class SolveResult:
    """Everything produced by one resilient solve."""

    x: np.ndarray
    record: ConvergenceRecord
    trace: ExecutionTrace
    stats: RecoveryStats
    ideal_iteration_time: float = 0.0
    #: Measured wall-clock seconds of real graph execution (threaded
    #: backend only; 0.0 under pure simulation).
    wall_clock: float = 0.0
    #: Measured per-state accounting of the real execution, mirroring
    #: the simulated ``trace`` (threaded backend only).
    wall_trace: Optional[ExecutionTrace] = None
    #: Digest of the vulnerable-window monitor: recovery scans executed,
    #: measured windows, observed real overlap, DUEs landing in-window.
    window_summary: Optional[Dict[str, object]] = None
    #: Measured inter-rank communication of the rank-parallel engine
    #: (:class:`~repro.distributed.ranks.RankCommStats`); ``None`` for
    #: single-rank solves.
    rank_stats: Optional[object] = None

    @property
    def converged(self) -> bool:
        return self.record.converged

    @property
    def solve_time(self) -> float:
        return self.record.solve_time


@dataclass
class _IterationTemplate:
    """Cached schedule of a fault-free iteration (reused while no faults)."""

    makespan: float
    rel_point_times: Dict[str, float]
    trace: ExecutionTrace


class ResilientCG:
    """Page-blocked, task-scheduled CG/PCG with pluggable DUE recovery."""

    PROTECTED = ("x", "g", "d0", "d1", "q")

    def __init__(self, A: "sp.spmatrix | SparseOperator | np.ndarray",
                 b: np.ndarray, *,
                 strategy: Optional[RecoveryStrategy] = None,
                 preconditioner: Optional[Preconditioner] = None,
                 scenario: Optional[ErrorScenario] = None,
                 config: Optional[SolverConfig] = None,
                 matrix_name: str = ""):
        self.config = config or SolverConfig()
        self.blocked = PageBlockedMatrix(A, page_size=self.config.page_size)
        self.A = self.blocked.A
        self.n = self.blocked.n
        self.b = np.asarray(b, dtype=np.float64)
        if self.b.shape[0] != self.n:
            raise ValueError(f"b has length {self.b.shape[0]}, expected {self.n}")
        self.strategy = strategy
        self.preconditioner = preconditioner
        self.scenario = scenario
        self.matrix_name = matrix_name
        #: The composed runtime: one object owning the graph executor
        #: (scheduler + clock axes) and the kernel engine (placement
        #: axis).  All cells share one deterministic list scheduler for
        #: the simulated timeline and reduce in fixed page order, so
        #: every (scheduler x placement x clock) cell produces
        #: bit-identical iterates, solve times and recovery decisions.
        self.runtime = make_runtime(self.blocked,
                                    num_workers=self.config.num_workers,
                                    cost_model=self.config.cost_model,
                                    max_threads=self.config.max_threads,
                                    pace=self.config.pace,
                                    backend=self.config.backend,
                                    scheduler=self.config.scheduler,
                                    placement=self.config.placement,
                                    clock=self.config.clock,
                                    ranks=self.config.ranks)
        self.backend = self.runtime.executor
        self.scheduler = self.backend.scheduler
        self.engine = self.runtime.engine
        self.monitor = VulnerableWindowMonitor()
        self._wall_clock = 0.0
        self._wall_trace: Optional[ExecutionTrace] = None
        self._chunk_bounds = self._compute_chunks()
        self._template: Optional[_IterationTemplate] = None
        if self.strategy is not None and hasattr(self.strategy, "work_scale"):
            # Conflict fallbacks recompute a full vector; charge them at the
            # same simulated problem scale as the solver's compute tasks.
            self.strategy.work_scale = self.config.work_scale

    # ==================================================================
    # public API
    # ==================================================================
    def close(self) -> None:
        """Release the runtime's real resources (idempotent)."""
        self.runtime.close()

    def __enter__(self) -> "ResilientCG":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def ideal_iteration_time(self) -> float:
        """Makespan of one fault-free iteration without resilience tasks."""
        graph = self._build_iteration_graph(iteration=0, resilient=False,
                                            recovery_durations=None,
                                            checkpoint=False)
        return self.backend.simulate(graph).makespan

    def estimate_ideal_time(self, iterations_hint: Optional[int] = None) -> float:
        """Ideal solve time: iteration makespan times the iteration count.

        With no hint, a fault-free reference CG is run (NumPy only) to
        count iterations.
        """
        t_iter = self.ideal_iteration_time()
        if iterations_hint is None:
            from repro.solvers.reference import preconditioned_conjugate_gradient
            ref = preconditioned_conjugate_gradient(
                self.A, self.b, preconditioner=self.preconditioner,
                tol=self.config.tolerance,
                max_iterations=self.config.max_iterations)
            iterations_hint = max(ref.record.iterations, 1)
        return t_iter * iterations_hint

    def solve(self, x0: Optional[np.ndarray] = None,
              ideal_time: Optional[float] = None) -> SolveResult:
        """Run the solver; returns the solution, record, trace and stats."""
        cfg = self.config
        stats = RecoveryStats()
        history = ResidualHistory()
        self.monitor = VulnerableWindowMonitor()
        self._wall_clock = 0.0
        self._wall_trace = None
        memory = MemoryManager()
        vectors = self._allocate_vectors(memory, x0)
        state = CGState(
            blocked=self.blocked, b=self.b, vectors=vectors, memory=memory,
            residual_relation=ResidualRelation(self.blocked, self.b),
            matvec_relation=MatVecRelation(self.blocked),
            preconditioner=self.preconditioner)

        b_norm = float(np.linalg.norm(self.b))
        if b_norm == 0.0:
            record = ConvergenceRecord(converged=True, iterations=0,
                                       solve_time=0.0, final_residual=0.0,
                                       method=self._method_name(),
                                       matrix=self.matrix_name)
            return SolveResult(x=np.zeros(self.n), record=record,
                               trace=ExecutionTrace(cfg.num_workers),
                               stats=stats,
                               window_summary=self.monitor.summary())

        injections = self._build_injection_schedule(memory, ideal_time)
        pending = list(injections)
        faults_injected = len(pending)

        t_iter_ideal = self.ideal_iteration_time()
        if isinstance(self.strategy, CheckpointStrategy):
            if self.strategy.interval is None:
                mtbe = self._scenario_mtbe(ideal_time)
                self.strategy.configure_interval(
                    mtbe, t_iter_ideal,
                    self.strategy.checkpoint_bytes(self.n) * cfg.work_scale)
        if self.strategy is not None:
            self.strategy.on_solve_start(state)

        x = vectors["x"].array
        g = vectors["g"].array
        self.engine.residual(x, self.b, g)
        rel = float(np.linalg.norm(g) / b_norm)
        clock = 0.0
        history.append(0, clock, rel)

        trace_total = ExecutionTrace(cfg.num_workers)
        rho_old = 0.0
        restart_next = True       # first iteration behaves like a restart
        converged = rel <= cfg.tolerance
        iteration = 0

        while not converged and iteration < cfg.max_iterations:
            iteration += 1
            this_d, last_d = (("d0", "d1") if iteration % 2 == 1
                              else ("d1", "d0"))
            d_cur = vectors[this_d].array
            d_prev = vectors[last_d].array
            q = vectors["q"].array

            checkpoint_now = (isinstance(self.strategy, CheckpointStrategy)
                              and self.strategy.should_checkpoint(iteration))

            # -------- timing pass 1 (cached for fault-free iterations) ------
            next_time = pending[0].time if pending else math.inf
            template = self._iteration_template()
            use_template = (not checkpoint_now
                            and next_time > clock + template.makespan)
            if use_template:
                graph1 = None
                makespan1 = template.makespan
                point_times = {k: clock + v
                               for k, v in template.rel_point_times.items()}
                trace1 = template.trace
            else:
                graph1 = self._build_iteration_graph(
                    iteration, resilient=self._uses_recovery_tasks(),
                    recovery_durations=None, checkpoint=checkpoint_now)
                sched1 = self.backend.simulate(graph1, start_time=clock)
                makespan1 = sched1.makespan
                point_times = {k: clock + v
                               for k, v in self._point_times(sched1, iteration).items()}
                trace1 = sched1.trace

            horizon_end = clock + makespan1
            batch = [inj for inj in pending if inj.time <= horizon_end]
            pending = [inj for inj in pending if inj.time > horizon_end]
            by_point = self._assign_to_points(batch, point_times)

            late: Dict[str, Set[int]] = {"g": set(), "x": set(),
                                         "d": set(), "q": set()}
            recovery_work = {"r1": 0.0, "r2": 0.0, "r3": 0.0}
            fault_service = 0.0
            restart_requested = False
            rolled_back = False

            def finish_restart():
                nonlocal clock, rel, rho_old, restart_next, converged
                # Unprocessed injections of this iteration go back to pending.
                self._apply_restart(state)
                clock2 = self._advance_clock(
                    clock, iteration, makespan1, trace1, recovery_work,
                    fault_service, checkpoint_now, trace_total,
                    faults=bool(batch), state=state, this_d=this_d,
                    graph1=graph1)
                clock = clock2
                rel = float(np.linalg.norm(g) / b_norm)
                if cfg.record_history:
                    history.append(iteration, clock, rel)
                rho_old = 0.0
                restart_next = True
                converged = rel <= cfg.tolerance

            # ---------------- point A: before rho ---------------------------
            state.point = "A"
            state.current_d_name, state.previous_d_name = last_d, this_d
            outcome_a = self._handle_point(state, by_point["A"], point_times,
                                           "A", iteration, this_d, late, stats)
            recovery_work["r2"] += outcome_a["work"]
            fault_service += outcome_a["service"]
            restart_requested |= outcome_a["restart"]
            rolled_back |= outcome_a["rollback"]
            skip_rho: Set[int] = set(late["g"])
            if self._uses_recovery_tasks():
                skip_rho |= outcome_a["skip"]
            if restart_requested:
                pending = sorted(by_point["B"] + by_point["C"] + by_point["D"]
                                 + pending, key=lambda i: i.time)
                if rolled_back:
                    stats.rollbacks += 1
                finish_restart()
                continue

            # ---------------- rho / beta ------------------------------------
            z = self.preconditioner.apply(g) if self.preconditioner else g
            rho = self._masked_dot(g, z, skip_rho)
            stats.contributions_skipped += len(skip_rho)
            norm_g_sq = self._masked_dot(g, g, skip_rho)
            rel_recursive = math.sqrt(max(norm_g_sq, 0.0)) / b_norm
            if rel_recursive <= cfg.tolerance:
                true_rel = float(np.linalg.norm(self.b - self.A @ x) / b_norm)
                clock = self._advance_clock(
                    clock, iteration, makespan1, trace1, recovery_work,
                    fault_service, checkpoint_now, trace_total,
                    faults=bool(batch), state=state, this_d=this_d,
                    graph1=graph1)
                if true_rel <= cfg.tolerance * 10:
                    converged = True
                    rel = true_rel
                    history.append(iteration, clock, rel)
                    break
                self.engine.residual(x, self.b, g)  # resynchronise
                restart_next = True
                rho_old = 0.0
                rel = float(np.linalg.norm(g) / b_norm)
                history.append(iteration, clock, rel)
                continue

            beta = 0.0 if (restart_next or rho_old == 0.0) else rho / rho_old
            state.scalars["beta"] = beta
            restart_next = False

            # ---------------- d update (double buffered) --------------------
            state.current_d_name, state.previous_d_name = this_d, last_d
            self.engine.update_direction(d_cur, z, beta, d_prev)
            for page in range(vectors[this_d].num_pages):
                memory.overwrite(this_d, page)

            # ---------------- point B: before the mat-vec -------------------
            state.point = "B"
            outcome_b = self._handle_point(state, by_point["B"], point_times,
                                           "B", iteration, this_d, late, stats,
                                           z=z, beta=beta)
            recovery_work["r1"] += outcome_b["work"]
            fault_service += outcome_b["service"]
            restart_requested |= outcome_b["restart"]
            rolled_back |= outcome_b["rollback"]
            if restart_requested:
                pending = sorted(by_point["C"] + by_point["D"] + pending,
                                 key=lambda i: i.time)
                if rolled_back:
                    stats.rollbacks += 1
                finish_restart()
                continue

            # ---------------- q = A d (halo exchange of d in rank mode) -----
            self.engine.spmv(d_cur, q)
            for page in range(vectors["q"].num_pages):
                memory.overwrite("q", page)

            # ---------------- point C: before alpha -------------------------
            state.point = "C"
            outcome_c = self._handle_point(state, by_point["C"], point_times,
                                           "C", iteration, this_d, late, stats)
            recovery_work["r1"] += outcome_c["work"]
            fault_service += outcome_c["service"]
            restart_requested |= outcome_c["restart"]
            rolled_back |= outcome_c["rollback"]
            if restart_requested:
                pending = sorted(by_point["D"] + pending, key=lambda i: i.time)
                if rolled_back:
                    stats.rollbacks += 1
                finish_restart()
                continue

            skip_dq: Set[int] = set(late["d"]) | set(late["q"])
            if self._uses_recovery_tasks():
                skip_dq |= outcome_c["skip"]
            dq = self._masked_dot(d_cur, q, skip_dq)
            stats.contributions_skipped += len(skip_dq)
            if dq <= 0.0:
                # Breakdown after unrecovered corruption: resynchronise.
                self.engine.residual(x, self.b, g)
                restart_next = True
                rho_old = 0.0
                clock = self._advance_clock(
                    clock, iteration, makespan1, trace1, recovery_work,
                    fault_service, checkpoint_now, trace_total,
                    faults=bool(batch), state=state, this_d=this_d,
                    graph1=graph1)
                rel = float(np.linalg.norm(g) / b_norm)
                history.append(iteration, clock, rel)
                continue
            alpha = rho / dq

            # ---------------- x and g updates --------------------------------
            self._masked_axpy(x, alpha, d_cur, skip_pages=late["x"] | late["d"])
            self._masked_axpy(g, -alpha, q, skip_pages=late["g"] | late["q"])
            rho_old = rho

            # ---------------- point D: end of the iteration ------------------
            state.point = "D"
            outcome_d = self._handle_point(state, by_point["D"], point_times,
                                           "D", iteration, this_d, late, stats)
            recovery_work["r3"] += outcome_d["work"]
            fault_service += outcome_d["service"]
            restart_requested |= outcome_d["restart"]
            rolled_back |= outcome_d["rollback"]

            deferred_work, deferred_restart = self._repair_deferred(
                state, late, this_d, alpha, stats)
            recovery_work["r3"] += deferred_work
            restart_requested |= deferred_restart

            if checkpoint_now and isinstance(self.strategy, CheckpointStrategy):
                self.strategy.save(state, iteration, {"rho_old": rho_old})
                stats.checkpoints_written += 1

            clock = self._advance_clock(
                clock, iteration, makespan1, trace1, recovery_work,
                fault_service, checkpoint_now, trace_total, faults=bool(batch),
                state=state, this_d=this_d, graph1=graph1)

            if restart_requested:
                if rolled_back:
                    stats.rollbacks += 1
                self._apply_restart(state)
                restart_next = True
                rho_old = 0.0

            rel = float(np.linalg.norm(g) / b_norm)
            if cfg.record_history:
                history.append(iteration, clock, rel)
            if rel <= cfg.tolerance:
                true_rel = float(np.linalg.norm(self.b - self.A @ x) / b_norm)
                if true_rel <= cfg.tolerance * 10:
                    converged = True
                    rel = true_rel
                else:
                    self.engine.residual(x, self.b, g)
                    restart_next = True
                    rho_old = 0.0

        final_residual = float(np.linalg.norm(self.b - self.A @ x) / b_norm)
        record = ConvergenceRecord(
            converged=converged, iterations=iteration, solve_time=clock,
            final_residual=final_residual, history=history,
            method=self._method_name(), matrix=self.matrix_name,
            faults_injected=faults_injected,
            faults_detected=memory.fault_count(),
            restarts=stats.restarts, rollbacks=stats.rollbacks)
        return SolveResult(x=np.array(x, copy=True), record=record,
                           trace=trace_total, stats=stats,
                           ideal_iteration_time=t_iter_ideal,
                           wall_clock=self._wall_clock,
                           wall_trace=self._wall_trace,
                           window_summary=self.monitor.summary(),
                           rank_stats=self.engine.comm_stats())

    # ==================================================================
    # construction helpers
    # ==================================================================
    def _method_name(self) -> str:
        base = "PCG" if self.preconditioner is not None else "CG"
        if self.strategy is None:
            return f"{base}-ideal"
        return f"{base}-{self.strategy.name}"

    def _uses_recovery_tasks(self) -> bool:
        return self.strategy is not None and self.strategy.uses_recovery_tasks

    def _allocate_vectors(self, memory: MemoryManager,
                          x0: Optional[np.ndarray]) -> Dict[str, PagedVector]:
        vectors: Dict[str, PagedVector] = {}
        for name in self.PROTECTED:
            vec = PagedVector(self.n, name=name, page_size=self.config.page_size)
            if name == "x" and x0 is not None:
                vec.fill_from(np.asarray(x0, dtype=np.float64))
            vectors[name] = memory.register(vec)
        return vectors

    def _compute_chunks(self) -> List[Tuple[int, int]]:
        """Strip-mine the row range into one chunk per worker."""
        workers = self.config.num_workers
        bounds = np.linspace(0, self.n, workers + 1).astype(int)
        return [(int(bounds[i]), int(bounds[i + 1])) for i in range(workers)
                if bounds[i + 1] > bounds[i]]

    def _scenario_mtbe(self, ideal_time: Optional[float]) -> float:
        if (self.scenario is None or self.scenario.is_fault_free
                or ideal_time is None or self.scenario.normalized_rate <= 0):
            return float("inf")
        return ideal_time / self.scenario.normalized_rate

    def _build_injection_schedule(self, memory: MemoryManager,
                                  ideal_time: Optional[float]) -> List[Injection]:
        if self.scenario is None or self.scenario.is_fault_free:
            return []
        if self.scenario.fixed_injections:
            return sorted(self.scenario.fixed_injections, key=lambda i: i.time)
        if ideal_time is None:
            raise ValueError("a rate-based ErrorScenario needs ideal_time to "
                             "normalise the MTBE (pass ideal_time to solve())")
        horizon = ideal_time * self.config.horizon_factor
        return self.scenario.schedule(ideal_time, horizon, memory.page_universe())

    # ==================================================================
    # task graph construction and timing
    # ==================================================================
    def _chunk_cost(self, kind: str) -> List[float]:
        """Durations of the strip-mined chunk tasks for one operation."""
        cm = self.config.cost_model
        scale = self.config.work_scale
        costs: List[float] = []
        for (start, stop) in self._chunk_bounds:
            rows = stop - start
            if kind == "spmv":
                nnz = int(self.A.indptr[stop] - self.A.indptr[start])
                costs.append(cm.kernel_time(2.0 * nnz, nnz * 12.0 + rows * 8.0)
                             * scale)
            elif kind == "axpy":
                costs.append(cm.kernel_time(2.0 * rows, 24.0 * rows) * scale)
            elif kind == "dot":
                costs.append(cm.kernel_time(2.0 * rows, 16.0 * rows) * scale)
            elif kind == "precond":
                # Block-Jacobi triangular solves: ~2 * page_size flops/row.
                flops = 2.0 * self.config.page_size * rows
                costs.append(cm.kernel_time(flops, 24.0 * rows) * scale)
            else:
                raise ValueError(f"unknown chunk kind {kind!r}")
        return costs

    def _build_iteration_graph(self, iteration: int, *, resilient: bool,
                               recovery_durations: Optional[Dict[str, float]],
                               checkpoint: bool) -> TaskGraph:
        """One CG iteration as a task graph (Figure 1 of the paper)."""
        cm = self.config.cost_model
        graph = TaskGraph()
        t = iteration
        critical = (self.strategy.recovery_in_critical_path
                    if self.strategy is not None else False)
        rec_priority = (self.strategy.recovery_task_priority
                        if self.strategy is not None else 0)
        rec = recovery_durations or {}
        check = cm.recovery_check()

        precond_names: List[str] = []
        if self.preconditioner is not None:
            for c, dur in enumerate(self._chunk_cost("precond")):
                name = f"z{t}:{c}"
                graph.add_task(name, dur, kind=TaskKind.COMPUTE,
                               reads={f"seg:g[{c}]"},
                               writes={f"seg:z[{c}]"})
                precond_names.append(name)

        # --- rho partial dots + r2 + scalar (beta task) ----------------------
        rho_parts: List[str] = []
        for c, dur in enumerate(self._chunk_cost("dot")):
            name = f"rho{t}:{c}"
            rho_reads = {f"seg:g[{c}]"}
            if precond_names:
                rho_reads.add(f"seg:z[{c}]")
            graph.add_task(name, dur, kind=TaskKind.REDUCTION,
                           deps=precond_names, reads=rho_reads,
                           writes={f"part:rho[{c}]"})
            rho_parts.append(name)
        scalar_rho_deps = list(rho_parts)
        if resilient:
            r2_deps = rho_parts if critical else precond_names
            graph.add_task(f"r2_{t}", rec.get("r2", check),
                           kind=TaskKind.RECOVERY,
                           priority=rec_priority, deps=r2_deps)
            scalar_rho_deps.append(f"r2_{t}")
        graph.add_task(f"beta{t}", cm.scalar_task(), kind=TaskKind.REDUCTION,
                       deps=scalar_rho_deps,
                       reads={f"part:rho[{c}]" for c in range(len(rho_parts))},
                       writes={"scalar:beta"})

        # --- d update ---------------------------------------------------------
        d_parts: List[str] = []
        for c, dur in enumerate(self._chunk_cost("axpy")):
            name = f"d{t}:{c}"
            d_reads = {"scalar:beta", f"seg:d[{c}]",
                       f"seg:z[{c}]" if precond_names else f"seg:g[{c}]"}
            graph.add_task(name, dur, kind=TaskKind.COMPUTE,
                           deps=[f"beta{t}"], reads=d_reads,
                           writes={f"seg:d[{c}]"})
            d_parts.append(name)

        # --- q = A d (lattice: every chunk needs every d chunk) ---------------
        q_parts: List[str] = []
        for c, dur in enumerate(self._chunk_cost("spmv")):
            name = f"q{t}:{c}"
            graph.add_task(name, dur, kind=TaskKind.COMPUTE, deps=d_parts,
                           reads={f"seg:d[{k}]"
                                  for k in range(len(d_parts))},
                           writes={f"seg:q[{c}]"})
            q_parts.append(name)

        # --- <d, q> partial dots + r1 + alpha ----------------------------------
        dq_parts: List[str] = []
        for c, dur in enumerate(self._chunk_cost("dot")):
            name = f"dq{t}:{c}"
            graph.add_task(name, dur, kind=TaskKind.REDUCTION,
                           deps=[f"q{t}:{c}"],
                           reads={f"seg:d[{c}]", f"seg:q[{c}]"},
                           writes={f"part:dq[{c}]"})
            dq_parts.append(name)
        scalar_alpha_deps = list(dq_parts)
        if resilient:
            r1_deps = dq_parts if critical else q_parts
            graph.add_task(f"r1_{t}", rec.get("r1", check),
                           kind=TaskKind.RECOVERY,
                           priority=rec_priority, deps=r1_deps)
            scalar_alpha_deps.append(f"r1_{t}")
        graph.add_task(f"alpha{t}", cm.scalar_task(), kind=TaskKind.REDUCTION,
                       deps=scalar_alpha_deps,
                       reads={f"part:dq[{c}]" for c in range(len(dq_parts))},
                       writes={"scalar:alpha"})

        # --- x and g updates ----------------------------------------------------
        update_parts: List[str] = []
        for c, dur in enumerate(self._chunk_cost("axpy")):
            name = f"x{t}:{c}"
            graph.add_task(name, dur, kind=TaskKind.COMPUTE,
                           deps=[f"alpha{t}"],
                           reads={"scalar:alpha", f"seg:d[{c}]",
                                  f"seg:x[{c}]"},
                           writes={f"seg:x[{c}]"})
            update_parts.append(name)
        for c, dur in enumerate(self._chunk_cost("axpy")):
            name = f"g{t}:{c}"
            graph.add_task(name, dur, kind=TaskKind.COMPUTE,
                           deps=[f"alpha{t}"],
                           reads={"scalar:alpha", f"seg:q[{c}]",
                                  f"seg:g[{c}]"},
                           writes={f"seg:g[{c}]"})
            update_parts.append(name)
        if resilient:
            r3_deps = update_parts if critical else [f"alpha{t}"]
            graph.add_task(f"r3_{t}", rec.get("r3", check),
                           kind=TaskKind.RECOVERY,
                           priority=rec_priority, deps=r3_deps)

        # --- checkpoint write ----------------------------------------------------
        if checkpoint and isinstance(self.strategy, CheckpointStrategy):
            volume = (self.strategy.checkpoint_bytes(self.n)
                      * self.config.work_scale)
            graph.add_task(f"ckpt{t}", cm.checkpoint_write(volume),
                           kind=TaskKind.CHECKPOINT, deps=update_parts,
                           reads={f"seg:{v}[{c}]"
                                  for v in ("x", "g")
                                  for c in range(len(self._chunk_bounds))})
        return graph

    def _iteration_template(self) -> _IterationTemplate:
        """Schedule of a fault-free iteration, cached across iterations."""
        if self._template is None:
            graph = self._build_iteration_graph(
                iteration=0, resilient=self._uses_recovery_tasks(),
                recovery_durations=None, checkpoint=False)
            sched = self.backend.simulate(graph)
            rel_times = self._point_times(sched, 0)
            self._template = _IterationTemplate(
                makespan=sched.makespan, rel_point_times=rel_times,
                trace=sched.trace)
        return self._template

    # ==================================================================
    # real (threaded) graph execution
    # ==================================================================
    def _execute_iteration_for_real(self, iteration: int, checkpoint_now: bool,
                                    state: CGState, this_d: str,
                                    graph: Optional[TaskGraph] = None,
                                    recovery_durations: Optional[
                                        Dict[str, float]] = None) -> None:
        """Re-enact this iteration's task graph for real (read-only).

        The graph structure is the one the simulator timed — including
        the enlarged recovery durations when this iteration repaired
        faults, so pacing charges the same recovery work the simulated
        timeline does.  ``graph`` is the iteration's already-built graph
        when one exists; with the ``ranks`` placement a fresh copy is
        always built here, because the re-enactment rewires dependencies
        (the halo task, the r1 overlap) and must never mutate a graph
        the pass-2 simulate will time.  Every task carries a real
        (read-only, bitwise-neutral) action: partial dot products for
        the reduction chunks, memory touches for the vector-update
        chunks, and the strategy's recovery scan for the r1/r2/r3 tasks
        — shipped to the owning rank under the ranks placement.
        Measured wall intervals feed the vulnerable-window monitor and
        the wall-clock overhead accounting; cells with the simulated
        clock discard them (the execution still happens, so races and
        ordering are exercised, but wall time is not an output).
        """
        distributed = self.runtime.spec.placement == "ranks"
        if graph is None or distributed:
            graph = self._build_iteration_graph(
                iteration, resilient=self._uses_recovery_tasks(),
                recovery_durations=recovery_durations,
                checkpoint=checkpoint_now)
        if distributed:
            self._add_halo_reenactment(graph, iteration, state, this_d)
        self._attach_real_actions(graph, iteration, state, this_d)
        # execute(), not run(): the simulated timeline of this iteration
        # is already known (pass 1 / template), so only the measured side
        # is computed here.
        result = self.backend.execute(graph)
        if not self.runtime.measures_wall:
            result.wall_intervals = {}
            result.wall_time = 0.0
        pairs = (tuple(self.strategy.vulnerable_pairs(iteration))
                 if self._uses_recovery_tasks() else ())
        self.monitor.observe(result, pairs)
        if self.runtime.measures_wall:
            self._accumulate_wall(result)

    def _add_halo_reenactment(self, graph: TaskGraph, iteration: int,
                              state: CGState, this_d: str) -> None:
        """Splice the rank halo exchange into the re-enactment graph.

        The ``halo{t}`` task really moves the halo of the current search
        direction over the rank channels (a read-only probe: it writes
        the same ``d`` values the preceding spmv already exchanged), so
        it has a measurable wall interval of :class:`TaskKind.COMMUNICATION`.
        It is given duration 0.0 and lives only in this re-enactment
        graph — the simulated timeline never sees it, which is what
        keeps every runtime cell's simulated decisions bit-identical.

        For strategies with off-critical-path recovery (AFEIR), ``r1``
        is re-wired from the spmv chunks back to the d-update chunks so
        it becomes *ready* at the same moment the halo exchange starts:
        the paper's claim that exact forward recovery overlaps the
        neighbour communication.  Critical-path strategies (FEIR) keep
        their reduction-chain dependencies, so they structurally cannot
        overlap the halo — the measured contrast the monitor reports.
        """
        t = iteration
        d_parts = [name for name in
                   (f"d{t}:{c}" for c in range(len(self._chunk_bounds)))
                   if name in graph]
        if not d_parts:
            return
        engine = self.engine
        d_cur = state.vectors[this_d].array
        halo_name = f"halo{t}"
        graph.add_task(halo_name, 0.0, kind=TaskKind.COMMUNICATION,
                       deps=list(d_parts),
                       action=lambda: engine.halo_exchange(d_cur),
                       reads={f"seg:d[{c}]"
                              for c in range(len(self._chunk_bounds))},
                       writes={"halo:d"})
        for c in range(len(self._chunk_bounds)):
            name = f"q{t}:{c}"
            if name in graph:
                task = graph.task(name).depends_on(halo_name)
                # the spmv consumes the freshly-exchanged halo values
                task.reads = task.reads | {"halo:d"}
        if (self._uses_recovery_tasks()
                and not self.strategy.recovery_in_critical_path
                and f"r1_{t}" in graph):
            graph.task(f"r1_{t}").deps = list(d_parts)

    def _attach_real_actions(self, graph: TaskGraph, iteration: int,
                             state: CGState, this_d: str) -> None:
        """Give every task of one iteration graph a real executable body."""
        t = iteration
        vectors = state.vectors
        g = vectors["g"].array
        x = vectors["x"].array
        q = vectors["q"].array
        d_cur = vectors[this_d].array

        def dot_chunk(u: np.ndarray, v: np.ndarray, sl: slice):
            def action(u=u, v=v, sl=sl) -> float:
                return float(u[sl] @ v[sl])  # repro-lint: allow[paged-reduction] single-chunk dot; one page, order already fixed
            return action

        def touch_chunk(u: np.ndarray, sl: slice):
            def action(u=u, sl=sl) -> float:
                return float(np.sum(u[sl]))  # repro-lint: allow[paged-reduction] single-chunk touch probe; value discarded
            return action

        for c, (start, stop) in enumerate(self._chunk_bounds):
            sl = slice(start, stop)
            chunk_actions = {
                f"z{t}:{c}": touch_chunk(g, sl),
                f"rho{t}:{c}": dot_chunk(g, g, sl),
                f"d{t}:{c}": touch_chunk(d_cur, sl),
                f"q{t}:{c}": touch_chunk(q, sl),
                f"dq{t}:{c}": dot_chunk(d_cur, q, sl),
                f"x{t}:{c}": touch_chunk(x, sl),
                f"g{t}:{c}": touch_chunk(g, sl),
            }
            for name, action in chunk_actions.items():
                if name in graph:
                    graph.task(name).action = action
        if self.strategy is not None:
            distributed = self.runtime.spec.placement == "ranks"
            num_pages = vectors["x"].num_pages
            for key in ("r1", "r2", "r3"):
                name = f"{key}_{t}"
                if name in graph:
                    probe = self.strategy.recovery_probe(
                        state.memory, self.monitor, label=name)
                    if distributed:
                        # The paper's locality rule: the recovery scan
                        # runs on the rank owning the (potentially) lost
                        # page.  run_on_rank ships the probe without
                        # counting it as a recovery dispatch.
                        def shipped(probe=probe, memory=state.memory,
                                    t=t, num_pages=num_pages):
                            lost = memory.lost_pages()
                            page = lost[0][1] if lost else t % num_pages
                            return self.engine.run_on_rank(
                                self.engine.page_owner(page), probe)
                        graph.task(name).action = shipped
                    else:
                        graph.task(name).action = probe
        ckpt_name = f"ckpt{t}"
        if ckpt_name in graph:
            graph.task(ckpt_name).action = touch_chunk(x, slice(0, self.n))

    def _accumulate_wall(self, result: ExecutionResult) -> None:
        self._wall_clock += result.wall_time
        threads = getattr(self.backend, "thread_count",
                          self.backend.num_workers)
        step = ExecutionTrace(num_workers=threads)
        step.breakdown.add(result.measured_breakdown(threads))
        step.wall_time = result.wall_time
        step.task_count = len(result.wall_intervals)
        if self._wall_trace is None:
            self._wall_trace = step
        else:
            self._wall_trace.accumulate(step)

    def _point_times(self, sched: ScheduleResult, iteration: int
                     ) -> Dict[str, float]:
        """Check-point times relative to the schedule's start time."""
        t = iteration
        base = sched.start_time
        times: Dict[str, float] = {}
        times["A"] = sched.start_of(f"beta{t}") - base
        times["B"] = min(sched.start_of(f"q{t}:{c}")
                         for c in range(len(self._chunk_bounds))) - base
        times["C"] = sched.start_of(f"alpha{t}") - base
        times["D"] = sched.makespan
        times["r1"] = (sched.start_of(f"r1_{t}") - base
                       if f"r1_{t}" in sched.scheduled else times["C"])
        times["r2"] = (sched.start_of(f"r2_{t}") - base
                       if f"r2_{t}" in sched.scheduled else times["A"])
        times["r3"] = (sched.start_of(f"r3_{t}") - base
                       if f"r3_{t}" in sched.scheduled else times["D"])
        return times

    def _assign_to_points(self, batch: List[Injection],
                          point_times: Dict[str, float]
                          ) -> Dict[str, List[Injection]]:
        out: Dict[str, List[Injection]] = {"A": [], "B": [], "C": [], "D": []}
        for inj in batch:
            if inj.time <= point_times["A"]:
                out["A"].append(inj)
            elif inj.time <= point_times["B"]:
                out["B"].append(inj)
            elif inj.time <= point_times["C"]:
                out["C"].append(inj)
            else:
                out["D"].append(inj)
        return out

    def _advance_clock(self, clock: float, iteration: int, makespan1: float,
                       trace1: ExecutionTrace, recovery_work: Dict[str, float],
                       fault_service: float, checkpoint_now: bool,
                       trace_total: ExecutionTrace, faults: bool,
                       state: CGState, this_d: str,
                       graph1: Optional[TaskGraph] = None) -> float:
        """Second timing pass with the actual recovery durations.

        This is the single per-iteration choke point, so the threaded
        backend's real execution also runs here — with the *actual*
        recovery durations when faults enlarged the recovery tasks, so
        the measured wall clock and state shares account for the same
        recovery work the simulated timeline charges.  ``graph1`` (the
        pass-1 graph, when one was built this iteration) is reused for
        the real execution in the common no-extra-recovery case instead
        of constructing an identical graph again.
        """
        extra_work = sum(recovery_work.values())
        cm = self.config.cost_model
        rec_graph = None
        durations: Optional[Dict[str, float]] = None
        if (faults or extra_work != 0.0) and self._uses_recovery_tasks():
            durations = {key: cm.recovery_check() + value
                         for key, value in recovery_work.items()}
            rec_graph = self._build_iteration_graph(
                iteration, resilient=True, recovery_durations=durations,
                checkpoint=checkpoint_now)
        if self.runtime.runs_reenactment:
            # Reuse whichever graph this iteration already has; attaching
            # actions is invisible to the pass-2 simulate below (it never
            # executes them).  The ranks placement ignores the reused
            # graph and rebuilds from ``durations`` (its re-enactment
            # rewires dependencies and must not touch these graphs).
            self._execute_iteration_for_real(
                iteration, checkpoint_now, state, this_d,
                graph=rec_graph if rec_graph is not None else graph1,
                recovery_durations=durations)
        if not faults and extra_work == 0.0:
            trace_total.accumulate(trace1)
            return clock + makespan1
        if rec_graph is not None:
            sched = self.backend.simulate(rec_graph, start_time=clock)
            trace_total.accumulate(sched.trace)
            return clock + sched.makespan + fault_service
        # Signal-handler methods (Lossy/ckpt/Trivial): the recovery work is
        # done in the handler, serialising the faulting worker.
        trace_total.accumulate(trace1)
        return clock + makespan1 + extra_work + fault_service

    # ==================================================================
    # fault handling
    # ==================================================================
    def _handle_point(self, state: CGState, injections: List[Injection],
                      point_times: Dict[str, float], point: str,
                      iteration: int, this_d: str,
                      late: Dict[str, Set[int]], stats: RecoveryStats,
                      z: Optional[np.ndarray] = None,
                      beta: float = 0.0) -> Dict[str, object]:
        """Materialise and handle the faults assigned to one check point."""
        result: Dict[str, object] = {"work": 0.0, "service": 0.0,
                                     "restart": False, "rollback": False,
                                     "skip": set()}
        if not injections:
            return result
        memory = state.memory
        detect_time = point_times[point]
        in_time: List[Tuple[str, int]] = []
        for inj in injections:
            memory.poison(inj.vector, inj.page, time=inj.time,
                          iteration=iteration)
            event = memory.touch(inj.vector, inj.page, time=detect_time)
            if event is None:
                continue
            result["service"] += self.config.fault_service_time
            if self._fault_is_late(point, inj, point_times, this_d):
                key = "d" if inj.vector == this_d else inj.vector
                if key in late:
                    late[key].add(inj.page)
                    memory.mark_recovered(inj.vector, inj.page)
                    stats.contributions_skipped += 1
                    self.monitor.note_due(inj.vector, inj.page, inj.time,
                                          point, in_window=True)
                    continue
            self.monitor.note_due(inj.vector, inj.page, inj.time,
                                  point, in_window=False)
            in_time.append((inj.vector, inj.page))

        if not in_time:
            return result

        if self.strategy is None:
            for vector, page in in_time:
                state.vectors[vector].zero_page(page)
                memory.mark_recovered(vector, page)
            return result

        # Point B: a lost page of the freshly updated d is rebuilt from the
        # linear-combination relation d = z + beta * d_prev (Table 1, middle
        # row) because q does not yet reflect the new d.
        if point == "B" and z is not None:
            remaining: List[Tuple[str, int]] = []
            for vector, page in in_time:
                if vector == this_d:
                    def rebuild(page=page) -> None:
                        d_vec = state.vectors[this_d]
                        sl = d_vec.page_slice(page)
                        d_prev = state.vectors[state.previous_d_name].array
                        d_vec.set_page(page, z[sl] + beta * d_prev[sl])
                    self.engine.run_on_owner(page, rebuild)
                    memory.mark_recovered(this_d, page)
                    stats.pages_recovered += 1
                    sl = state.vectors[this_d].page_slice(page)
                    result["work"] += self.config.cost_model.axpy_block(
                        sl.stop - sl.start)
                else:
                    remaining.append((vector, page))
            in_time = remaining
            if not in_time:
                return result

        # Recovery executes on the rank owning the first corrupted page
        # (rank engines; local engines run inline).  The whole batch goes
        # to one rank because simultaneous losses may need a *coupled*
        # solve over the union of the pages (Section 2.4 case 1), which
        # cannot be split along ownership lines; for the common
        # single-page event this is exactly the paper's owner-local rule.
        outcome = self.engine.run_on_owner(
            in_time[0][1],
            lambda: self.strategy.handle_lost_pages(state, in_time,
                                                    iteration))
        stats.pages_recovered += len(outcome.recovered)
        stats.pages_unrecoverable += len(outcome.unrecoverable)
        stats.recovery_work_time += outcome.work_time
        result["work"] = float(result["work"]) + outcome.work_time
        result["restart"] = outcome.restart_required
        result["rollback"] = outcome.rolled_back
        if outcome.restart_required:
            stats.restarts += 1
        result["skip"] = {page for _, page in outcome.unrecoverable}
        return result

    def _fault_is_late(self, point: str, inj: Injection,
                       point_times: Dict[str, float], this_d: str) -> bool:
        """AFEIR vulnerability window: repaired too late for the next scalar?"""
        if self.strategy is None or not self.strategy.uses_recovery_tasks:
            return False
        if self.strategy.recovery_in_critical_path:
            return False
        if point == "A" and inj.vector == "g":
            return inj.time > point_times["r2"]
        if point == "C" and inj.vector in (this_d, "q"):
            return inj.time > point_times["r1"]
        return False

    def _repair_deferred(self, state: CGState, late: Dict[str, Set[int]],
                         this_d: str, alpha: float,
                         stats: RecoveryStats) -> Tuple[float, bool]:
        """Exactly repair AFEIR late pages at point D and redo skipped updates.

        Returns the simulated recovery work time and whether a restart of the
        Krylov recurrence is needed (related-data conflicts only).
        """
        if not any(late.values()):
            return 0.0, False
        cm = self.config.cost_model
        work = 0.0
        vectors = state.vectors
        blocked = state.blocked
        x = vectors["x"].array
        g = vectors["g"].array
        d_cur = vectors[this_d].array
        q = vectors["q"].array

        # q first (needed to repair d), then d (+ redo the x update), then g,
        # then x; all relations hold exactly at the end of the iteration.
        # Each relation-based repair executes on the rank owning the page
        # (the owner holds the strip of A and the slices the relation
        # reads); local engines run the same closures inline.
        need_residual_resync = False
        for page in sorted(late["q"]):
            if page in late["d"]:
                continue                     # related-data conflict, below

            def repair_q(page=page) -> None:
                values = state.matvec_relation.recover_lhs_page(page, d_cur)
                vectors["q"].set_page(page, values)
                sl = vectors["q"].page_slice(page)
                g[sl] -= alpha * values                  # redo skipped g update
            self.engine.run_on_owner(page, repair_q)
            state.memory.mark_recovered("q", page)
            work += cm.spmv_block(blocked.nnz_of_block(page))
            stats.pages_recovered += 1
        for page in sorted(late["d"]):
            if page in late["q"]:
                # Related data lost together: blank the direction page and
                # resynchronise the residual afterwards so the invariants hold.
                vectors[this_d].zero_page(page)
                state.memory.mark_recovered(this_d, page)
                state.memory.mark_recovered("q", page)
                stats.pages_unrecoverable += 1
                need_residual_resync = True
                continue

            def repair_d(page=page) -> None:
                values = state.matvec_relation.recover_rhs_page(page, q, d_cur)
                vectors[this_d].set_page(page, values)
                sl = vectors[this_d].page_slice(page)
                x[sl] += alpha * values                  # redo skipped x update
            self.engine.run_on_owner(page, repair_d)
            state.memory.mark_recovered(this_d, page)
            work += cm.block_solve(blocked.block_size(page),
                                   factorized=blocked.has_cached_factor(page))
            stats.pages_recovered += 1
        for page in sorted(late["g"]):
            if page in late["x"]:
                continue                     # related-data conflict, below

            def repair_g(page=page) -> None:
                values = state.residual_relation.recover_residual_page(page, x)
                vectors["g"].set_page(page, values)
            self.engine.run_on_owner(page, repair_g)
            state.memory.mark_recovered("g", page)
            work += cm.spmv_block(blocked.nnz_of_block(page))
            stats.pages_recovered += 1
        for page in sorted(late["x"]):
            if page in late["g"]:
                vectors["x"].zero_page(page)
                state.memory.mark_recovered("x", page)
                state.memory.mark_recovered("g", page)
                stats.pages_unrecoverable += 1
                need_residual_resync = True
                continue

            def repair_x(page=page) -> None:
                values = state.residual_relation.recover_iterate_page(page, g, x)
                vectors["x"].set_page(page, values)
            self.engine.run_on_owner(page, repair_x)
            state.memory.mark_recovered("x", page)
            work += cm.block_solve(blocked.block_size(page),
                                   factorized=blocked.has_cached_factor(page))
            stats.pages_recovered += 1
        if need_residual_resync:
            self.engine.residual(x, self.b, g)
            work += cm.kernel_time(2.0 * self.A.nnz,
                                   12.0 * self.A.nnz + 8.0 * self.n) \
                * self.config.work_scale
        for key in late:
            late[key].clear()
        stats.recovery_work_time += work
        return work, need_residual_resync

    def _apply_restart(self, state: CGState) -> None:
        """Recompute the residual from the iterate after a restart/rollback."""
        x = state.vectors["x"].array
        g = state.vectors["g"].array
        self.engine.residual(x, self.b, g)
        for page in range(state.vectors["g"].num_pages):
            state.memory.overwrite("g", page)

    # ==================================================================
    # numerics helpers
    # ==================================================================
    def _masked_dot(self, u: np.ndarray, v: np.ndarray,
                    skip_pages: Set[int]) -> float:
        """Dot product excluding the contributions of ``skip_pages``.

        Delegated to the kernel engine: the reduction is page-partitioned
        and combined in fixed page order (skipped pages are zeroed before
        the reduction, making the Section 3.3.2 skip protocol exact), so
        single-rank and N-rank solves produce the same bits.
        """
        return self.engine.dot(u, v, skip_pages)

    def _masked_axpy(self, y: np.ndarray, a: float, v: np.ndarray,
                     skip_pages: Set[int]) -> None:
        """``y += a * v`` skipping the pages whose update must be deferred."""
        self.engine.axpy(y, a, v, skip_pages)
