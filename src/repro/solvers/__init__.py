"""Krylov subspace solvers.

Two layers:

* :mod:`repro.solvers.reference` — textbook CG / PCG / BiCGStab / GMRES
  implementations (Listings 1, 3, 4, 5, 6, 7 of the paper), used as the
  "ideal" baseline and to validate the resilient variants numerically.
* :mod:`repro.solvers.resilient_cg` — the task-decomposed, page-blocked
  CG/PCG with double-buffered ``d``, fault injection hooks, bitmask skip
  protocol and pluggable recovery strategies (the paper's implementation
  target, Section 3.3).
"""

from repro.solvers.reference import (bicgstab, conjugate_gradient, gmres,
                                     preconditioned_conjugate_gradient)
from repro.solvers.resilient_cg import ResilientCG, SolverConfig

__all__ = [
    "ResilientCG",
    "SolverConfig",
    "bicgstab",
    "conjugate_gradient",
    "gmres",
    "preconditioned_conjugate_gradient",
]
