"""Reference (non-resilient) Krylov solvers.

These follow the pseudo-code listings of the paper:

* Listing 1 — Conjugate Gradient,
* Listing 3 — BiCGStab,
* Listing 4 — GMRES (restarted, with Givens-rotation QR),
* Listings 5–7 — their preconditioned versions.

They are deliberately straightforward NumPy/SciPy implementations used
as ground truth for the resilient variants, and to measure the number of
iterations the "ideal" solver needs for the cost model's ideal time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

from repro.analysis.convergence import ConvergenceRecord, ResidualHistory
from repro.config import DEFAULT_MAX_ITERATIONS, DEFAULT_TOLERANCE
from repro.precond.base import Preconditioner
from repro.precond.identity import IdentityPreconditioner


def _as_linear_operator(A):
    """Normalise the input matrix: SciPy CSR, or a SparseOperator as-is.

    The reference solvers only need ``A @ v``, which both backends
    provide; dense arrays are converted to CSR like before.
    """
    from repro.matrices.sparse import SparseOperator
    if isinstance(A, SparseOperator):
        return A
    return sp.csr_matrix(A)


@dataclass
class ReferenceResult:
    """Solution plus convergence record for a reference solve."""

    x: np.ndarray
    record: ConvergenceRecord

    @property
    def converged(self) -> bool:
        return self.record.converged

    @property
    def iterations(self) -> int:
        return self.record.iterations


def _relative_residual(A: sp.spmatrix, x: np.ndarray, b: np.ndarray,
                       b_norm: float) -> float:
    return float(np.linalg.norm(b - A @ x) / b_norm)


def conjugate_gradient(A: sp.spmatrix, b: np.ndarray,
                       x0: Optional[np.ndarray] = None, *,
                       tol: float = DEFAULT_TOLERANCE,
                       max_iterations: int = DEFAULT_MAX_ITERATIONS,
                       callback: Optional[Callable[[int, float], None]] = None
                       ) -> ReferenceResult:
    """Plain CG (Listing 1): requires ``A`` symmetric positive definite."""
    return preconditioned_conjugate_gradient(
        A, b, x0, preconditioner=IdentityPreconditioner(), tol=tol,
        max_iterations=max_iterations, callback=callback,
        method_name="CG (reference)")


def preconditioned_conjugate_gradient(
        A: sp.spmatrix, b: np.ndarray, x0: Optional[np.ndarray] = None, *,
        preconditioner: Optional[Preconditioner] = None,
        tol: float = DEFAULT_TOLERANCE,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        callback: Optional[Callable[[int, float], None]] = None,
        method_name: str = "PCG (reference)") -> ReferenceResult:
    """Preconditioned CG (Listing 5).

    Convergence is declared on the true relative residual
    ``||b - Ax|| / ||b|| <= tol`` to match the paper's threshold of 1e-10.
    """
    A = _as_linear_operator(A)
    n = A.shape[0]
    b = np.asarray(b, dtype=np.float64)
    if b.shape[0] != n:
        raise ValueError(f"b has length {b.shape[0]}, expected {n}")
    M = preconditioner if preconditioner is not None else IdentityPreconditioner()
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64, copy=True)
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        record = ConvergenceRecord(converged=True, iterations=0, solve_time=0.0,
                                   final_residual=0.0, method=method_name)
        return ReferenceResult(x=np.zeros(n), record=record)

    history = ResidualHistory()
    g = b - A @ x
    z = M.apply(g)
    d = z.copy()
    rho = float(g @ z)
    rel = float(np.linalg.norm(g) / b_norm)
    history.append(0, 0.0, rel)

    converged = rel <= tol
    iteration = 0
    while not converged and iteration < max_iterations:
        iteration += 1
        q = A @ d
        dq = float(d @ q)
        if dq <= 0:
            # Not SPD (or breakdown): report failure honestly.
            break
        alpha = rho / dq
        x += alpha * d
        g -= alpha * q
        rel = float(np.linalg.norm(g) / b_norm)
        history.append(iteration, float(iteration), rel)
        if callback is not None:
            callback(iteration, rel)
        if rel <= tol:
            converged = True
            break
        z = M.apply(g)
        rho_new = float(g @ z)
        beta = rho_new / rho
        rho = rho_new
        d = z + beta * d

    record = ConvergenceRecord(
        converged=converged, iterations=iteration, solve_time=float(iteration),
        final_residual=_relative_residual(A, x, b, b_norm), history=history,
        method=method_name)
    return ReferenceResult(x=x, record=record)


def bicgstab(A: sp.spmatrix, b: np.ndarray, x0: Optional[np.ndarray] = None, *,
             preconditioner: Optional[Preconditioner] = None,
             tol: float = DEFAULT_TOLERANCE,
             max_iterations: int = DEFAULT_MAX_ITERATIONS,
             callback: Optional[Callable[[int, float], None]] = None
             ) -> ReferenceResult:
    """BiCGStab (Listing 3 / Listing 6 when a preconditioner is given)."""
    A = _as_linear_operator(A)
    n = A.shape[0]
    b = np.asarray(b, dtype=np.float64)
    if b.shape[0] != n:
        raise ValueError(f"b has length {b.shape[0]}, expected {n}")
    M = preconditioner if preconditioner is not None else IdentityPreconditioner()
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64, copy=True)
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        record = ConvergenceRecord(converged=True, iterations=0, solve_time=0.0,
                                   final_residual=0.0, method="BiCGStab (reference)")
        return ReferenceResult(x=np.zeros(n), record=record)

    history = ResidualHistory()
    g = b - A @ x          # residual
    r = g.copy()           # shadow residual (constant, as in the paper)
    d = g.copy()
    rho = float(g @ r)
    rel = float(np.linalg.norm(g) / b_norm)
    history.append(0, 0.0, rel)

    converged = rel <= tol
    iteration = 0
    while not converged and iteration < max_iterations:
        iteration += 1
        p = M.apply(d)
        q = A @ p
        qr = float(q @ r)
        if qr == 0.0 or rho == 0.0:
            break  # breakdown
        alpha = rho / qr
        s_vec = g - alpha * q
        s_hat = M.apply(s_vec)
        t = A @ s_hat
        tt = float(t @ t)
        if tt == 0.0:
            x += alpha * p
            g = s_vec
        else:
            omega = float(t @ s_vec) / tt
            x += alpha * p + omega * s_hat
            g = s_vec - omega * t
        rel = float(np.linalg.norm(g) / b_norm)
        history.append(iteration, float(iteration), rel)
        if callback is not None:
            callback(iteration, rel)
        if rel <= tol:
            converged = True
            break
        if tt == 0.0:
            break
        rho_old = rho
        rho = float(g @ r)
        beta = (rho / rho_old) * (alpha / omega)
        d = g + beta * (d - omega * q)

    record = ConvergenceRecord(
        converged=converged, iterations=iteration, solve_time=float(iteration),
        final_residual=_relative_residual(A, x, b, b_norm), history=history,
        method="BiCGStab (reference)")
    return ReferenceResult(x=x, record=record)


def gmres(A: sp.spmatrix, b: np.ndarray, x0: Optional[np.ndarray] = None, *,
          restart: int = 30, preconditioner: Optional[Preconditioner] = None,
          tol: float = DEFAULT_TOLERANCE,
          max_iterations: int = DEFAULT_MAX_ITERATIONS,
          callback: Optional[Callable[[int, float], None]] = None
          ) -> ReferenceResult:
    """Restarted GMRES(m) with Givens rotations (Listings 4 and 7)."""
    A = _as_linear_operator(A)
    n = A.shape[0]
    b = np.asarray(b, dtype=np.float64)
    if b.shape[0] != n:
        raise ValueError(f"b has length {b.shape[0]}, expected {n}")
    if restart < 1:
        raise ValueError("restart length must be >= 1")
    M = preconditioner if preconditioner is not None else IdentityPreconditioner()
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64, copy=True)
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        record = ConvergenceRecord(converged=True, iterations=0, solve_time=0.0,
                                   final_residual=0.0, method="GMRES (reference)")
        return ReferenceResult(x=np.zeros(n), record=record)

    history = ResidualHistory()
    total_iterations = 0
    rel = float(np.linalg.norm(b - A @ x) / b_norm)
    history.append(0, 0.0, rel)
    converged = rel <= tol

    while not converged and total_iterations < max_iterations:
        g = b - A @ x
        z = M.apply(g)
        beta = float(np.linalg.norm(z))
        if beta == 0.0:
            converged = True
            break
        m = restart
        V = np.zeros((n, m + 1))
        H = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        e1 = np.zeros(m + 1)
        e1[0] = beta
        V[:, 0] = z / beta
        k_used = 0
        for k in range(m):
            total_iterations += 1
            k_used = k + 1
            w = M.apply(A @ V[:, k])
            for i in range(k + 1):
                H[i, k] = float(w @ V[:, i])
                w -= H[i, k] * V[:, i]
            H[k + 1, k] = float(np.linalg.norm(w))
            if H[k + 1, k] > 1e-300:
                V[:, k + 1] = w / H[k + 1, k]
            # Apply previous Givens rotations to the new column.
            for i in range(k):
                temp = cs[i] * H[i, k] + sn[i] * H[i + 1, k]
                H[i + 1, k] = -sn[i] * H[i, k] + cs[i] * H[i + 1, k]
                H[i, k] = temp
            # New rotation annihilating H[k+1, k].
            denom = float(np.hypot(H[k, k], H[k + 1, k]))
            if denom == 0.0:
                cs[k], sn[k] = 1.0, 0.0
            else:
                cs[k], sn[k] = H[k, k] / denom, H[k + 1, k] / denom
            H[k, k] = cs[k] * H[k, k] + sn[k] * H[k + 1, k]
            H[k + 1, k] = 0.0
            e1[k + 1] = -sn[k] * e1[k]
            e1[k] = cs[k] * e1[k]
            rel_inner = abs(e1[k + 1]) / b_norm
            if callback is not None:
                callback(total_iterations, rel_inner)
            if rel_inner <= tol or total_iterations >= max_iterations:
                break
        # Solve the small triangular system and update x.
        y = np.linalg.solve(H[:k_used, :k_used], e1[:k_used])
        x = x + V[:, :k_used] @ y
        rel = float(np.linalg.norm(b - A @ x) / b_norm)
        history.append(total_iterations, float(total_iterations), rel)
        if rel <= tol:
            converged = True

    record = ConvergenceRecord(
        converged=converged, iterations=total_iterations,
        solve_time=float(total_iterations),
        final_residual=_relative_residual(A, x, b, b_norm), history=history,
        method="GMRES (reference)")
    return ReferenceResult(x=x, record=record)
