"""The campaign service daemon.

A long-running process that amortises campaign startup cost across
submissions: built matrices, fault-free ideal baselines and completed
trial results stay warm in memory (keyed by the same content tokens the
:class:`~repro.campaign.store.CampaignStore` uses on disk), submitted
campaigns are multiplexed over a local worker pool as round-robin shard
jobs, and per-trial progress streams to ``watch`` clients as chunked
JSONL.

Robustness model (asynchronous-HPC serving practice: worker loss is
routine, not fatal):

* every finished trial is persisted to the store *and* the in-memory
  warm cache the moment it completes, so nothing a worker finished is
  ever recomputed;
* a worker that dies mid-shard (:class:`WorkerDied` — real crashes in
  a thread worker surface the same way) gets its shard re-queued; the
  retry consults the warm cache first, so only the genuinely lost
  in-flight trial re-executes;
* a daemon crash loses only in-flight trials: the store journal and
  per-trial persistence make a restarted daemon (or an offline
  ``python -m repro.campaign run``) resume from the last persisted
  trial;
* graceful shutdown (``/shutdown``) stops accepting submissions, then
  either drains every queued/running job or cancels them after their
  current trial, journalling an ``interrupted`` event either way.

Correctness anchor: a campaign executed through the daemon produces a
fingerprint **byte-identical** to the same spec run offline, because
trials are self-contained deterministic units (content-keyed seeds) and
:class:`~repro.campaign.results.CampaignResult` aggregation is
order-independent.  The service tests and the ``campaign-service`` CI
job assert it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.campaign.engine import run_trial
from repro.campaign.results import CampaignResult, TrialResult
from repro.campaign.spec import CampaignSpec, TrialSpec
from repro.campaign.store import CampaignStore
from repro.config import resolve_worker_count
from repro.sanitize import (make_condition, make_event, make_lock,
                            make_queue, make_rlock)
from repro.service.protocol import (PROTOCOL_VERSION, TERMINAL_STATES,
                                    ProtocolError, describe_states,
                                    event_line, job_status_payload,
                                    spec_from_payload, validate_job_id)

#: Environment variables of the service (documented in the README's
#: ``REPRO_*`` table).
SERVICE_HOST_ENV = "REPRO_SERVICE_HOST"
SERVICE_PORT_ENV = "REPRO_SERVICE_PORT"
SERVICE_URL_ENV = "REPRO_SERVICE_URL"
SERVICE_CHAOS_ENV = "REPRO_SERVICE_CHAOS"

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642

#: A shard is re-queued at most this many times before its job fails.
MAX_SHARD_RETRIES = 3


def default_host() -> str:
    return os.environ.get(SERVICE_HOST_ENV, "").strip() or DEFAULT_HOST


def default_port() -> int:
    raw = os.environ.get(SERVICE_PORT_ENV, "").strip()
    if not raw:
        return DEFAULT_PORT
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{SERVICE_PORT_ENV} must be an integer, "
                         f"got {raw!r}") from None


class WorkerDied(RuntimeError):
    """A worker was lost mid-shard (chaos hook, or a real crash)."""


class ChaosMonkey:
    """Deterministic worker-loss injection for tests and the CI job.

    ``REPRO_SERVICE_CHAOS=kill-worker:N`` makes the first worker that
    has executed N trials die (once) when it picks up its next trial —
    exercising the shard-retry path end to end.
    """

    def __init__(self, kill_after: int):
        if kill_after <= 0:
            raise ValueError(f"chaos kill-after must be positive, "
                             f"got {kill_after}")
        self.kill_after = kill_after
        self._fired = False
        self._lock = make_lock("ChaosMonkey.lock")

    @classmethod
    def from_env(cls) -> Optional["ChaosMonkey"]:
        raw = os.environ.get(SERVICE_CHAOS_ENV, "").strip()
        if not raw:
            return None
        kind, _, arg = raw.partition(":")
        if kind != "kill-worker":
            raise ValueError(f"{SERVICE_CHAOS_ENV} must look like "
                             f"kill-worker:N, got {raw!r}")
        return cls(int(arg))

    def __call__(self, worker_id: int, executed: int) -> None:
        with self._lock:
            if self._fired or executed < self.kill_after:
                return
            self._fired = True
        raise WorkerDied(f"chaos: worker {worker_id} killed after "
                         f"{executed} executed trial(s)")


# ----------------------------------------------------------------------
# warm cache
# ----------------------------------------------------------------------
class _KindStats:
    __slots__ = ("hits", "misses")

    def __init__(self):
        self.hits = 0
        self.misses = 0

    def payload(self) -> Dict[str, object]:
        total = self.hits + self.misses
        return {"hits": self.hits, "misses": self.misses,
                "hit_rate_percent":
                    round(100.0 * self.hits / total, 1) if total else 0.0}


class WarmCache:
    """In-memory artifact cache fronting an optional on-disk store.

    Implements the store interface the campaign engine consumes
    (``get/put`` for matrices, baselines and trials), so it can be
    passed wherever a :class:`CampaignStore` is expected.  Entries are
    keyed by the same content hashes as the store; a RAM miss falls
    through to the store (when present) and a store hit is promoted
    into RAM.  Hit/miss counters feed ``/metrics``.
    """

    def __init__(self, store: Optional[CampaignStore] = None):
        self.store = store
        self._matrices: Dict[str, tuple] = {}
        self._baselines: Dict[str, float] = {}
        self._trials: Dict[str, TrialResult] = {}
        self._lock = make_lock("WarmCache.lock")
        self.stats = {"matrices": _KindStats(), "baselines": _KindStats(),
                      "trials": _KindStats()}

    def _record(self, kind: str, hit: bool) -> None:
        with self._lock:
            stats = self.stats[kind]
            if hit:
                stats.hits += 1
            else:
                stats.misses += 1

    # -- matrices ------------------------------------------------------
    def get_matrix(self, key: str):
        cached = self._matrices.get(key)
        if cached is None and self.store is not None:
            cached = self.store.get_matrix(key)
            if cached is not None:
                self._matrices[key] = cached
        self._record("matrices", cached is not None)
        return cached

    def put_matrix(self, key: str, A, b) -> None:
        self._matrices[key] = (A, b)
        if self.store is not None:
            self.store.put_matrix(key, A, b)

    # -- baselines -----------------------------------------------------
    def get_baseline(self, key: str) -> Optional[float]:
        cached = self._baselines.get(key)
        if cached is None and self.store is not None:
            cached = self.store.get_baseline(key)
            if cached is not None:
                self._baselines[key] = cached
        self._record("baselines", cached is not None)
        return cached

    def put_baseline(self, key: str, ideal_time: float) -> None:
        self._baselines[key] = float(ideal_time)
        if self.store is not None:
            self.store.put_baseline(key, ideal_time)

    # -- trials --------------------------------------------------------
    def get_trial(self, key: str) -> Optional[TrialResult]:
        cached = self._trials.get(key)
        if cached is None and self.store is not None:
            cached = self.store.get_trial(key)
            if cached is not None:
                self._trials[key] = cached
        self._record("trials", cached is not None)
        return cached

    def put_trial(self, key: str, result: TrialResult) -> None:
        self._trials[key] = result
        if self.store is not None:
            self.store.put_trial(key, result)

    # -- journal (delegates; RAM-only daemons skip journalling) --------
    def journal_append(self, campaign_key: str, event: dict) -> None:
        if self.store is not None:
            self.store.journal_append(campaign_key, event)

    def metrics_payload(self) -> Dict[str, object]:
        return {kind: stats.payload() for kind, stats in self.stats.items()}


# ----------------------------------------------------------------------
# jobs
# ----------------------------------------------------------------------
@dataclass
class Job:
    """One submitted campaign and its live progress."""

    id: str
    spec: CampaignSpec
    state: str = "queued"
    total: int = 0
    cached: int = 0
    executed: int = 0
    completed: int = 0
    shards: int = 0
    shard_retries: int = 0
    fingerprint: Optional[str] = None
    error: Optional[str] = None
    results: List[TrialResult] = field(default_factory=list)
    #: Trial indices already folded into ``results`` — a retried shard
    #: must not double-count what the dead worker persisted.
    recorded: set = field(default_factory=set)
    events: List[dict] = field(default_factory=list)
    pending_shards: int = 0
    finalizing: bool = False
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    cancel_event: threading.Event = field(default_factory=make_event)
    cond: threading.Condition = field(default_factory=make_condition)

    @property
    def spec_key(self) -> str:
        return self.spec.store_key()

    @property
    def name(self) -> str:
        return self.spec.name

    def emit(self, event: dict) -> None:
        """Append an event and wake every watcher."""
        with self.cond:
            self.events.append({"job": self.id, **event})
            self.cond.notify_all()

    def set_state(self, state: str) -> None:
        with self.cond:
            self.state = state
            self.cond.notify_all()


@dataclass
class _ShardTask:
    job_id: str
    shard_no: int
    trials: List[TrialSpec]
    attempt: int = 0


# ----------------------------------------------------------------------
# the daemon
# ----------------------------------------------------------------------
class CampaignService:
    """The long-running campaign daemon (HTTP server + worker pool).

    ``port=0`` binds an ephemeral port (tests); the bound port is in
    ``self.port`` after :meth:`start`.  ``store=None`` runs with the
    in-memory warm cache only — nothing persists, but warm-resubmission
    semantics are identical.
    """

    def __init__(self, host: Optional[str] = None, port: Optional[int] = None,
                 workers: Optional[int] = None,
                 store: Optional[CampaignStore] = None,
                 chaos: Optional[ChaosMonkey] = None):
        self.host = host if host is not None else default_host()
        self.port = port if port is not None else default_port()
        self.workers = resolve_worker_count(workers)
        self.warm = WarmCache(store)
        self.chaos = chaos if chaos is not None else ChaosMonkey.from_env()
        self.started = time.time()
        self.accepting = True
        self.worker_deaths = 0
        self.executed_total = 0
        self.cached_total = 0
        self.executed_wall = 0.0
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._counter = 0
        self._lock = make_rlock("CampaignService.lock")
        self._drained = make_condition(self._lock,
                                       name="CampaignService.drained")
        self._job_queue = make_queue("CampaignService.job_queue")
        self._shard_queue = make_queue("CampaignService.shard_queue")
        self._threads: List[threading.Thread] = []
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._stopping = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind the HTTP server and start scheduler + worker threads."""
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self.host, self.port), handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._threads = [
            threading.Thread(target=self._serve_http, name="service-http",
                             daemon=True),
            threading.Thread(target=self._scheduler_loop,
                             name="service-scheduler", daemon=True),
        ]
        for i in range(self.workers):
            self._threads.append(threading.Thread(
                target=self._worker_loop, args=(i,),
                name=f"service-worker-{i}", daemon=True))
        for thread in self._threads:
            thread.start()

    def _serve_http(self) -> None:
        self._httpd.serve_forever(poll_interval=0.1)

    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Block until the daemon is shut down (CLI foreground mode)."""
        try:
            while not self._stopping:
                time.sleep(0.2)
        except KeyboardInterrupt:
            self.shutdown(drain=False)

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop the daemon.

        ``drain=True`` finishes every queued and running job first;
        ``drain=False`` cancels them after their current trial.  Either
        way in-flight jobs are journalled, so a subsequent daemon (or an
        offline run) resumes from the last persisted trial.
        """
        with self._lock:
            if self._stopping:
                return
            self.accepting = False
        if not drain:
            for job in self._snapshot_jobs():
                if job.state not in TERMINAL_STATES:
                    job.cancel_event.set()
        deadline = None if timeout is None else time.time() + timeout
        with self._drained:
            while any(j.state not in TERMINAL_STATES
                      for j in self._jobs.values()):
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.time()
                    if remaining <= 0:
                        break
                self._drained.wait(timeout=remaining if remaining is not None
                                   else 0.5)
        self._stopping = True
        self._job_queue.put(None)
        for _ in range(self.workers):
            self._shard_queue.put(None)
        if self._httpd is not None:
            threading.Thread(target=self._httpd.shutdown,
                             daemon=True).start()
        for job in self._snapshot_jobs():
            if job.state not in TERMINAL_STATES:
                self._journal(job, {"event": "interrupted",
                                    "completed": job.completed,
                                    "state": job.state})

    # ------------------------------------------------------------------
    # submission + queries
    # ------------------------------------------------------------------
    def submit_payload(self, payload: dict) -> Job:
        spec = spec_from_payload(payload)
        return self.submit(spec)

    def submit(self, spec: CampaignSpec) -> Job:
        with self._lock:
            if not self.accepting:
                raise ProtocolError("daemon is shutting down; "
                                    "not accepting submissions")
            self._counter += 1
            job = Job(id=f"j{self._counter}-{spec.store_key()[:8]}",
                      spec=spec, total=spec.num_trials)
            self._jobs[job.id] = job
            self._order.append(job.id)
        job.emit({"event": "queued", "spec": spec.describe(),
                  "spec_key": job.spec_key})
        self._job_queue.put(job.id)
        return job

    def job(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """All jobs, newest first."""
        with self._lock:
            return [self._jobs[jid] for jid in reversed(self._order)]

    def _snapshot_jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> Optional[Job]:
        job = self.job(job_id)
        if job is None:
            return None
        if job.state not in TERMINAL_STATES:
            job.cancel_event.set()
            if job.state == "queued":
                self._finalize(job, "cancelled")
        return job

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, object]:
        jobs = self._snapshot_jobs()
        store = self.warm.store
        per_sec = (self.executed_total / self.executed_wall
                   if self.executed_wall > 0 else 0.0)
        return {
            "version": PROTOCOL_VERSION,
            "uptime_s": round(time.time() - self.started, 3),
            "accepting": self.accepting,
            "workers": self.workers,
            "worker_deaths": self.worker_deaths,
            "shard_retries": sum(j.shard_retries for j in jobs),
            "queue_depth": sum(1 for j in jobs if j.state == "queued"),
            "jobs": describe_states(jobs),
            "cache": self.warm.metrics_payload(),
            "trials": {
                "executed": self.executed_total,
                "cached": self.cached_total,
                "completed": self.executed_total + self.cached_total,
                "executed_wall_s": round(self.executed_wall, 3),
                "per_worker_per_sec": round(per_sec, 3),
            },
            "store": str(store.root) if store is not None else None,
            "jobs_detail": {
                j.id: {"state": j.state, "completed": j.completed,
                       "total": j.total} for j in jobs},
        }

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _journal(self, job: Job, event: dict) -> None:
        self.warm.journal_append(job.spec_key, {
            "key": job.spec_key, "source": "service", "job": job.id,
            **event})

    def _scheduler_loop(self) -> None:
        while True:
            job_id = self._job_queue.get()
            if job_id is None:
                return
            job = self._jobs[job_id]
            if job.state in TERMINAL_STATES:  # cancelled while queued
                continue
            try:
                self._prepare(job)
            except Exception as exc:  # noqa: BLE001 - job-fatal, not daemon-fatal
                job.error = f"{type(exc).__name__}: {exc}"
                self._finalize(job, "failed")

    def _prepare(self, job: Job) -> None:
        """Expand the grid, serve cached trials, shard out the rest."""
        job.started_at = time.time()
        job.set_state("running")
        trials = job.spec.expand()
        pending: List[TrialSpec] = []
        for trial in trials:
            if job.cancel_event.is_set():
                self._finalize(job, "cancelled")
                return
            cached = self.warm.get_trial(trial.store_key())
            if cached is not None:
                self._record_result(job, cached, cached_hit=True)
            else:
                pending.append(trial)
        shards = max(1, min(self.workers, len(pending)))
        job.shards = shards if pending else 0
        self._journal(job, {"event": "start", "spec": job.spec.describe(),
                            "total": job.total, "shard": None,
                            "cached": job.cached, "pending": len(pending)})
        job.emit({"event": "start", "total": job.total, "cached": job.cached,
                  "pending": len(pending), "shards": job.shards})
        if not pending:
            self._finalize(job, "done")
            return
        with self._lock:
            job.pending_shards = shards
        for shard_no in range(shards):
            # Round-robin over the pending list: balanced cell mix per
            # shard, same policy as the offline --shard i/N partition.
            shard = pending[shard_no::shards]
            self._shard_queue.put(_ShardTask(job.id, shard_no, shard))

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _worker_loop(self, worker_id: int) -> None:
        executed = 0
        while True:
            task = self._shard_queue.get()
            if task is None:
                return
            job = self._jobs[task.job_id]
            try:
                executed += self._run_shard(job, task, worker_id, executed)
            except WorkerDied as exc:
                with self._lock:
                    self.worker_deaths += 1
                self._retry_shard(job, task, str(exc))
            except Exception as exc:  # noqa: BLE001 - fail the job, keep the pool
                job.error = f"{type(exc).__name__}: {exc}"
                job.cancel_event.set()
                self._shard_done(job)
                continue

    def _run_shard(self, job: Job, task: _ShardTask, worker_id: int,
                   executed_before: int) -> int:
        """Run one shard's trials; returns how many this call executed.

        The retry path re-enters here with the same trial list: trials a
        previous attempt already finished come back as warm-cache hits,
        so only genuinely lost work re-executes.
        """
        executed = 0
        for trial in task.trials:
            if job.cancel_event.is_set():
                break
            with self._lock:
                already_recorded = trial.index in job.recorded
            if already_recorded:
                continue  # retry path: the dead worker finished this one
            key = trial.store_key()
            cached = self.warm.get_trial(key)
            if cached is not None:
                # Persisted by a lost worker before it was recorded, or
                # warmed by a duplicate submission running concurrently.
                self._record_result(job, cached, cached_hit=False,
                                    recovered=True)
                continue
            if self.chaos is not None:
                self.chaos(worker_id, executed_before + executed)
            result = run_trial(trial, store=self.warm)
            self.warm.put_trial(key, result)
            executed += 1
            with self._lock:
                self.executed_total += 1
                self.executed_wall += result.wall_time
            self._journal(job, {"event": "trial", "index": result.index})
            self._record_result(job, result, cached_hit=False)
        self._shard_done(job)
        return executed

    def _retry_shard(self, job: Job, task: _ShardTask, reason: str) -> None:
        if task.attempt + 1 > MAX_SHARD_RETRIES:
            job.error = (f"shard {task.shard_no} lost its worker "
                         f"{task.attempt + 1} times; giving up ({reason})")
            job.cancel_event.set()
            self._shard_done(job)
            return
        with self._lock:
            job.shard_retries += 1
        job.emit({"event": "shard-retry", "shard": task.shard_no,
                  "attempt": task.attempt + 1, "reason": reason})
        self._shard_queue.put(_ShardTask(job.id, task.shard_no, task.trials,
                                         attempt=task.attempt + 1))

    def _record_result(self, job: Job, result: TrialResult,
                       cached_hit: bool, recovered: bool = False) -> None:
        with self._lock:
            if result.index in job.recorded:  # pragma: no cover - raced retry
                return
            job.recorded.add(result.index)
            job.results.append(result)
            job.completed += 1
            if cached_hit:
                job.cached += 1
                self.cached_total += 1
            else:
                job.executed += 1
            completed, total = job.completed, job.total
        job.emit({"event": "trial", "index": result.index,
                  "matrix": result.matrix, "method": result.method,
                  "rate": result.rate, "repetition": result.repetition,
                  "converged": result.converged,
                  "iterations": result.iterations,
                  "cached": cached_hit, "recovered": recovered,
                  "completed": completed, "total": total})

    def _shard_done(self, job: Job) -> None:
        with self._lock:
            job.pending_shards -= 1
            last = job.pending_shards <= 0
        if not last:
            return
        if job.error is not None:
            self._finalize(job, "failed")
        elif job.cancel_event.is_set():
            self._finalize(job, "cancelled")
        elif job.completed == job.total:
            self._finalize(job, "done")
        else:  # pragma: no cover - defensive: lost results are a bug
            job.error = (f"job finished its shards with "
                         f"{job.completed}/{job.total} trials accounted for")
            self._finalize(job, "failed")

    def _finalize(self, job: Job, state: str) -> None:
        with self._lock:
            # A cancel racing the scheduler may reach here twice; the
            # first transition wins.
            if job.finalizing:
                return
            job.finalizing = True
        job.finished_at = time.time()
        if state == "done":
            job.fingerprint = self.result_of(job).fingerprint()
            self._journal(job, {"event": "done", "executed": job.executed,
                                "cached": job.cached,
                                "fingerprint": job.fingerprint})
            job.emit({"event": "done", "fingerprint": job.fingerprint,
                      "executed": job.executed, "cached": job.cached,
                      "wall_s": round(job.finished_at - job.submitted_at, 3)})
        else:
            self._journal(job, {"event": state, "completed": job.completed,
                                "error": job.error})
            job.emit({"event": state, "error": job.error,
                      "completed": job.completed})
        job.set_state(state)
        with self._drained:
            self._drained.notify_all()

    def result_of(self, job: Job) -> CampaignResult:
        """The job's :class:`CampaignResult` (order-independent, so the
        fingerprint is byte-identical to the offline runner's)."""
        result = CampaignResult(name=job.spec.name,
                                executor=f"service({self.workers} workers)",
                                spec_key=job.spec_key,
                                total_trials=job.total,
                                cache_hits=job.cached,
                                executed=job.executed)
        with self._lock:
            result.extend(list(job.results))
        if job.finished_at is not None:
            result.wall_time = job.finished_at - job.submitted_at
        return result


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
def _make_handler(service: CampaignService):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # Silence per-request stderr lines; the daemon has /metrics.
        def log_message(self, format, *args):  # noqa: A002
            pass

        # -- helpers ---------------------------------------------------
        def _send_json(self, payload: dict, status: int = 200) -> None:
            body = (json.dumps({"version": PROTOCOL_VERSION, **payload},
                               sort_keys=True) + "\n").encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_error(self, message: str, status: int = 400) -> None:
            self._send_json({"error": message}, status=status)

        def _read_body(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            try:
                payload = json.loads(raw.decode("utf-8") or "{}")
            except ValueError as exc:
                raise ProtocolError(f"request body is not JSON: {exc}") \
                    from None
            if not isinstance(payload, dict):
                raise ProtocolError("request body must be a JSON object")
            return payload

        def _job_or_404(self, job_id: str):
            try:
                validate_job_id(job_id)
            except ProtocolError as exc:
                self._send_error(str(exc), status=400)
                return None
            job = service.job(job_id)
            if job is None:
                self._send_error(f"no such job {job_id!r}", status=404)
            return job

        # -- routes ----------------------------------------------------
        def do_GET(self):  # noqa: N802 - http.server API
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == "/healthz":
                self._send_json({"ok": True, "uptime_s": round(
                    time.time() - service.started, 3)})
            elif path == "/metrics":
                self._send_json(service.metrics())
            elif path == "/jobs":
                self._send_json({"jobs": [job_status_payload(j)
                                          for j in service.jobs()]})
            elif path.startswith("/jobs/") and path.endswith("/watch"):
                self._watch(path.split("/")[2])
            elif path.startswith("/jobs/"):
                parts = path.split("/")
                if len(parts) == 3:
                    job = self._job_or_404(parts[2])
                    if job is not None:
                        self._send_json({"job": job_status_payload(job)})
                else:
                    self._send_error(f"unknown path {path!r}", status=404)
            else:
                self._send_error(f"unknown path {path!r}", status=404)

        def do_POST(self):  # noqa: N802 - http.server API
            path = self.path.split("?", 1)[0].rstrip("/")
            try:
                if path == "/jobs":
                    body = self._read_body()
                    job = service.submit_payload(body.get("spec"))
                    self._send_json({"job": job_status_payload(job)},
                                    status=202)
                elif path.startswith("/jobs/") and path.endswith("/cancel"):
                    job = self._job_or_404(path.split("/")[2])
                    if job is not None:
                        service.cancel(job.id)
                        self._send_json({"job": job_status_payload(job)})
                elif path == "/shutdown":
                    body = self._read_body()
                    drain = bool(body.get("drain", True))
                    self._send_json({"shutting_down": True, "drain": drain})
                    threading.Thread(target=service.shutdown,
                                     kwargs={"drain": drain},
                                     daemon=True).start()
                else:
                    self._send_error(f"unknown path {path!r}", status=404)
            except ProtocolError as exc:
                self._send_error(str(exc), status=400)

        # -- watch streaming -------------------------------------------
        def _send_chunk(self, data: bytes) -> None:
            self.wfile.write(f"{len(data):X}\r\n".encode("ascii"))
            self.wfile.write(data + b"\r\n")
            self.wfile.flush()

        def _watch(self, job_id: str) -> None:
            job = self._job_or_404(job_id)
            if job is None:
                return
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
            index = 0
            try:
                while True:
                    with job.cond:
                        while (index >= len(job.events)
                               and job.state not in TERMINAL_STATES):
                            job.cond.wait(timeout=5.0)
                        fresh = job.events[index:]
                        index += len(fresh)
                        finished = (job.state in TERMINAL_STATES
                                    and index >= len(job.events))
                    for event in fresh:
                        self._send_chunk(
                            (event_line(event) + "\n").encode("utf-8"))
                    if not fresh and not finished:
                        self._send_chunk(b"\n")  # keep-alive
                    if finished:
                        break
                self.wfile.write(b"0\r\n\r\n")
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                pass  # watcher went away; the job does not care

    return Handler
