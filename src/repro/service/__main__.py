"""Command-line interface of the campaign service.

Usage::

    # start the daemon (foreground; Ctrl-C = non-drain shutdown)
    python -m repro.service serve --port 8642 --workers 4

    # submit a campaign and stream its progress until done
    python -m repro.service submit --matrix laplacian2d:45 \
        --methods FEIR AFEIR --rates 1 10 --trials 8 --watch

    # observe / manage
    python -m repro.service status            # all jobs
    python -m repro.service status j1-ab12cd34
    python -m repro.service watch j1-ab12cd34
    python -m repro.service metrics
    python -m repro.service cancel j1-ab12cd34
    python -m repro.service shutdown          # drains, then exits
    python -m repro.service shutdown --now    # cancels in-flight jobs

The submitted spec is identical to ``python -m repro.campaign run``'s:
the daemon prints the same fingerprint an offline run of the same spec
produces, byte for byte (the ``campaign-service`` CI job asserts it).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.campaign.spec import CampaignSpec, SolverKnobs
from repro.campaign.store import CampaignStore, StoreSchemaError, \
    default_store_root
from repro.config import DEFAULT_SEED
from repro.runtime.backend import BACKEND_NAMES
from repro.runtime.runtime import (CLOCK_NAMES, PLACEMENT_NAMES,
                                   SCHEDULER_NAMES)
from repro.service.client import ServiceClient, ServiceError, default_url
from repro.service.server import CampaignService, default_host, default_port

SUBCOMMANDS = ("serve", "submit", "status", "watch", "cancel", "shutdown",
               "metrics")


def add_client_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--url", default=None,
                        help=f"daemon URL (default: REPRO_SERVICE_URL or "
                             f"{default_url()})")


def add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    """The campaign-grid arguments, mirroring ``repro.campaign run``."""
    parser.add_argument("--matrix", nargs="+", default=["laplacian2d:45"],
                        help="matrix specs (qa8fm, laplacian2d:45, ...)")
    parser.add_argument("--methods", nargs="+", default=["FEIR"],
                        help="recovery methods (FEIR AFEIR Lossy ckpt "
                             "Trivial)")
    parser.add_argument("--rates", nargs="+", type=float, default=[1.0],
                        help="normalised error rates")
    parser.add_argument("--trials", type=int, default=1,
                        help="repetitions per (matrix, method, rate) cell")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--tolerance", type=float, default=1e-8)
    parser.add_argument("--max-iterations", type=int, default=20000)
    parser.add_argument("--page-size", type=int, default=128)
    parser.add_argument("--preconditioned", action="store_true")
    parser.add_argument("--backend", choices=BACKEND_NAMES,
                        default="simulated")
    parser.add_argument("--ranks", type=int, default=1)
    parser.add_argument("--scheduler", choices=SCHEDULER_NAMES, default=None)
    parser.add_argument("--placement", choices=PLACEMENT_NAMES, default=None)
    parser.add_argument("--clock", choices=CLOCK_NAMES, default=None)


def spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    return CampaignSpec(
        matrices=list(args.matrix), methods=list(args.methods),
        rates=list(args.rates), repetitions=args.trials, seed=args.seed,
        knobs=SolverKnobs(tolerance=args.tolerance,
                          max_iterations=args.max_iterations,
                          page_size=args.page_size,
                          preconditioned=args.preconditioned,
                          backend=args.backend, ranks=args.ranks,
                          scheduler=args.scheduler,
                          placement=args.placement, clock=args.clock),
        name="service-cli")


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service serve",
        description="Run the campaign daemon in the foreground.")
    parser.add_argument("--host", default=None,
                        help=f"bind address (default: REPRO_SERVICE_HOST "
                             f"or {default_host()})")
    parser.add_argument("--port", type=int, default=None,
                        help=f"bind port, 0 = ephemeral (default: "
                             f"REPRO_SERVICE_PORT or {default_port()})")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker-thread count (default: all cores, "
                             "capped by REPRO_MAX_WORKERS)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="content-addressed store directory (default: "
                             "REPRO_CAMPAIGN_STORE or "
                             "~/.cache/repro-campaign)")
    parser.add_argument("--no-store", action="store_true",
                        help="serve from the in-memory warm cache only; "
                             "nothing persists across daemon restarts")
    return parser


def main_serve(argv) -> int:
    args = build_serve_parser().parse_args(argv)
    store = None
    if not args.no_store:
        try:
            store = CampaignStore(args.store if args.store is not None
                                  else default_store_root())
        except StoreSchemaError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        service = CampaignService(host=args.host, port=args.port,
                                  workers=args.workers, store=store)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    service.start()
    print(f"campaign service listening on {service.url()} "
          f"({service.workers} workers, "
          f"store={store.root if store else 'none (RAM only)'})",
          flush=True)
    service.serve_forever()
    print("campaign service stopped")
    return 0


def _print_status(status: dict) -> None:
    line = (f"{status['id']}: {status['state']} "
            f"[{status['completed']}/{status['total']}] "
            f"cached={status['cached']} executed={status['executed']}")
    if status.get("shard_retries"):
        line += f" shard-retries={status['shard_retries']}"
    if status.get("fingerprint"):
        line += f"\n  fingerprint: {status['fingerprint']}"
    if status.get("error"):
        line += f"\n  error: {status['error']}"
    print(line)


def _print_event(event: dict) -> None:
    kind = event.get("event")
    if kind == "trial":
        status = "ok" if event.get("converged") else "DIVERGED"
        origin = "cache" if event.get("cached") else "run"
        print(f"  [{event['completed']}/{event['total']}] "
              f"{event['matrix']} {event['method']} "
              f"rate={event['rate']:g} rep={event['repetition']}: "
              f"{status} ({event['iterations']} it, {origin})")
    elif kind == "start":
        print(f"start: {event['total']} trial(s), {event['cached']} cached, "
              f"{event['pending']} pending over {event['shards']} shard(s)")
    elif kind == "shard-retry":
        print(f"shard {event['shard']} retry #{event['attempt']}: "
              f"{event.get('reason', '')}")
    elif kind == "done":
        print(f"done: executed={event['executed']} cached={event['cached']} "
              f"wall={event.get('wall_s', 0):g}s")
        print(f"fingerprint: {event['fingerprint']}")
    elif kind in ("failed", "cancelled"):
        print(f"{kind}: {event.get('error') or ''}".rstrip(": "))
    elif kind == "queued":
        print(f"queued: job {event.get('job')} "
              f"(spec key {event.get('spec_key', '')[:12]})")


def main_submit(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service submit",
        description="Submit a campaign to the daemon.")
    add_client_arguments(parser)
    add_spec_arguments(parser)
    parser.add_argument("--watch", action="store_true",
                        help="stream the job's progress until it finishes")
    args = parser.parse_args(argv)
    try:
        spec = spec_from_args(args)
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    client = ServiceClient(args.url)
    job = client.submit(spec)
    print(f"submitted: {job['id']} ({job['total']} trials, "
          f"spec key {job['spec_key'][:12]})")
    if not args.watch:
        return 0
    final = None
    for event in client.watch(job["id"]):
        _print_event(event)
        final = event
    return 0 if final is not None and final.get("event") == "done" else 1


def main_status(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service status",
        description="Show one job's status, or all jobs.")
    add_client_arguments(parser)
    parser.add_argument("job", nargs="?", default=None)
    args = parser.parse_args(argv)
    client = ServiceClient(args.url)
    if args.job is not None:
        _print_status(client.status(args.job))
        return 0
    jobs = client.jobs()
    if not jobs:
        print("no jobs")
        return 0
    for status in jobs:
        _print_status(status)
    return 0


def main_watch(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service watch",
        description="Stream a job's progress events (chunked JSONL).")
    add_client_arguments(parser)
    parser.add_argument("job")
    parser.add_argument("--raw", action="store_true",
                        help="print the JSONL lines instead of a summary")
    args = parser.parse_args(argv)
    client = ServiceClient(args.url)
    final = None
    for event in client.watch(args.job):
        if args.raw:
            print(json.dumps(event, sort_keys=True), flush=True)
        else:
            _print_event(event)
        final = event
    return 0 if final is not None and final.get("event") == "done" else 1


def main_cancel(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service cancel",
        description="Cancel a queued or running job.")
    add_client_arguments(parser)
    parser.add_argument("job")
    args = parser.parse_args(argv)
    _print_status(ServiceClient(args.url).cancel(args.job))
    return 0


def main_shutdown(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service shutdown",
        description="Shut the daemon down (drains by default).")
    add_client_arguments(parser)
    parser.add_argument("--now", action="store_true",
                        help="cancel in-flight jobs instead of draining")
    args = parser.parse_args(argv)
    response = ServiceClient(args.url).shutdown(drain=not args.now)
    print(f"shutting down (drain={response['drain']})")
    return 0


def main_metrics(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service metrics",
        description="Print the daemon's /metrics payload as JSON.")
    add_client_arguments(parser)
    args = parser.parse_args(argv)
    metrics = ServiceClient(args.url).metrics()
    print(json.dumps(metrics, indent=2, sort_keys=True))
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    command, rest = argv[0], argv[1:]
    handlers = {
        "serve": main_serve, "submit": main_submit, "status": main_status,
        "watch": main_watch, "cancel": main_cancel,
        "shutdown": main_shutdown, "metrics": main_metrics,
    }
    handler = handlers.get(command)
    if handler is None:
        print(f"error: unknown subcommand {command!r}; expected one of "
              f"{', '.join(SUBCOMMANDS)}", file=sys.stderr)
        return 2
    try:
        return handler(rest)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
