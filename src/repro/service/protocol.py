"""Wire protocol of the campaign service.

The daemon and its clients exchange JSON over HTTP; this module pins
down the payload shapes so both sides agree on them and so the crucial
invariant is testable in isolation: **a spec that crosses the wire must
reconstruct with a byte-identical content token**.  Content tokens
determine store keys, trial seeds and therefore every result bit, so
``spec_from_payload(spec_to_payload(s)).store_key() == s.store_key()``
is the property the whole service rests on.  JSON is safe for it:
Python serialises floats via ``repr`` (shortest exact round-trip), and
every other token ingredient is integral or textual.

Endpoints (all request/response bodies are JSON; ``watch`` streams
newline-delimited JSON with chunked transfer encoding):

========  ======================  =====================================
method    path                    meaning
========  ======================  =====================================
GET       ``/healthz``            liveness probe (also proves schema)
GET       ``/metrics``            queue depth, cache hit rates, rates
GET       ``/jobs``               all jobs, newest first
POST      ``/jobs``               submit ``{"spec": <spec payload>}``
GET       ``/jobs/<id>``          one job's status
POST      ``/jobs/<id>/cancel``   stop dispatching that job's trials
GET       ``/jobs/<id>/watch``    stream the job's event log as JSONL
POST      ``/shutdown``           ``{"drain": bool}`` — stop the daemon
========  ======================  =====================================
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.campaign.spec import CampaignSpec, MatrixSpec, SolverKnobs
from repro.runtime.cost_model import DEFAULT_COST_MODEL, CostModel

#: Version of the request/response shapes.  The server embeds it in
#: every response envelope; clients refuse to talk across versions
#: rather than mis-parse half-compatible payloads.
PROTOCOL_VERSION = 1

#: Job lifecycle states.  ``queued -> running -> done`` is the happy
#: path; ``failed`` and ``cancelled`` are terminal too.  A shard whose
#: worker dies does *not* fail the job — it is retried with the
#: already-persisted trials skipped (see ``service.server``).
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States in which a job will make no further progress.
TERMINAL_STATES = ("done", "failed", "cancelled")


class ProtocolError(ValueError):
    """A payload did not match the protocol (bad shape, bad version)."""


# ----------------------------------------------------------------------
# spec serialization
# ----------------------------------------------------------------------
def _matrix_to_payload(matrix: MatrixSpec) -> Dict[str, object]:
    return {
        "family": matrix.family,
        "name": matrix.name,
        "params": [[k, v] for k, v in matrix.params],
        "sparse": matrix.sparse,
        "rhs_seed": matrix.rhs_seed,
    }


def _matrix_from_payload(payload: Dict[str, object]) -> MatrixSpec:
    try:
        return MatrixSpec(
            family=str(payload["family"]),
            name=str(payload["name"]),
            params=tuple((str(k), int(v)) for k, v in payload["params"]),
            sparse=bool(payload["sparse"]),
            rhs_seed=int(payload["rhs_seed"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad matrix payload {payload!r}: {exc}") \
            from None


def _knobs_to_payload(knobs: SolverKnobs) -> Dict[str, object]:
    payload = {f.name: getattr(knobs, f.name)
               for f in dataclasses.fields(knobs)
               if f.name != "cost_model"}
    if knobs.cost_model != DEFAULT_COST_MODEL:
        payload["cost_model"] = dataclasses.asdict(knobs.cost_model)
    return payload


def _knobs_from_payload(payload: Dict[str, object]) -> SolverKnobs:
    known = {f.name for f in dataclasses.fields(SolverKnobs)}
    unknown = set(payload) - known
    if unknown:
        raise ProtocolError(f"unknown solver knob(s) "
                            f"{', '.join(sorted(unknown))}")
    kwargs = dict(payload)
    if "cost_model" in kwargs:
        try:
            kwargs["cost_model"] = CostModel(**kwargs["cost_model"])
        except TypeError as exc:
            raise ProtocolError(f"bad cost model: {exc}") from None
    try:
        return SolverKnobs(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad solver knobs: {exc}") from None


def spec_to_payload(spec: CampaignSpec) -> Dict[str, object]:
    """JSON-safe payload of ``spec`` (content-token exact, see module
    docstring).  Scenario overrides are not wire-expressible in v1 —
    the service runs rate-based campaigns, which is every CLI-reachable
    campaign today."""
    if spec.scenario is not None:
        raise ProtocolError(
            "campaign specs with a scenario override cannot be submitted "
            "to the service (protocol v1 carries rate-based grids only)")
    return {
        "version": PROTOCOL_VERSION,
        "name": spec.name,
        "matrices": [_matrix_to_payload(m) for m in spec.matrices],
        "methods": list(spec.methods),
        "rates": [float(r) for r in spec.rates],
        "repetitions": spec.repetitions,
        "seed": spec.seed,
        "knobs": _knobs_to_payload(spec.knobs),
    }


def spec_from_payload(payload: Dict[str, object]) -> CampaignSpec:
    """Reconstruct a :class:`CampaignSpec` from its wire payload.

    Raises :class:`ProtocolError` on shape or version mismatches; the
    reconstructed spec's ``store_key()`` equals the submitting side's
    (asserted by ``tests/service/test_protocol.py``).
    """
    if not isinstance(payload, dict):
        raise ProtocolError(f"spec payload must be an object, "
                            f"got {type(payload).__name__}")
    version = payload.get("version")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"spec payload carries protocol v{version}, "
                            f"this side speaks v{PROTOCOL_VERSION}")
    try:
        matrices = [_matrix_from_payload(m) for m in payload["matrices"]]
        return CampaignSpec(
            matrices=matrices,
            methods=tuple(str(m) for m in payload["methods"]),
            rates=tuple(float(r) for r in payload["rates"]),
            repetitions=int(payload["repetitions"]),
            seed=int(payload["seed"]),
            knobs=_knobs_from_payload(payload.get("knobs", {})),
            name=str(payload.get("name", "service")))
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad campaign spec payload: {exc}") from None


# ----------------------------------------------------------------------
# job status
# ----------------------------------------------------------------------
def job_status_payload(job) -> Dict[str, object]:
    """The JSON status shape of one job (server side builds it from a
    ``server.Job``; duck-typed so tests can feed stand-ins)."""
    return {
        "id": job.id,
        "state": job.state,
        "spec_key": job.spec_key,
        "name": job.name,
        "total": job.total,
        "cached": job.cached,
        "executed": job.executed,
        "completed": job.completed,
        "shards": job.shards,
        "shard_retries": job.shard_retries,
        "fingerprint": job.fingerprint,
        "error": job.error,
    }


def validate_job_id(job_id: str) -> str:
    """Reject path-traversal-shaped job ids before they hit any lookup."""
    if not job_id or not all(c.isalnum() or c in "-_" for c in job_id):
        raise ProtocolError(f"malformed job id {job_id!r}")
    return job_id


# ----------------------------------------------------------------------
# watch events
# ----------------------------------------------------------------------
def event_line(event: Dict[str, object]) -> str:
    """One watch-stream event as a JSONL line (without the newline)."""
    import json
    return json.dumps(event, sort_keys=True)


def parse_event_line(line: str) -> Optional[Dict[str, object]]:
    """Parse one watch-stream line; blank lines (keep-alives) are None."""
    import json
    line = line.strip()
    if not line:
        return None
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"bad watch event line {line!r}: {exc}") \
            from None
    if not isinstance(payload, dict) or "event" not in payload:
        raise ProtocolError(f"watch event without an 'event' field: "
                            f"{line!r}")
    return payload


def describe_states(jobs: List[object]) -> Dict[str, int]:
    """Job-count-by-state summary for ``/metrics``."""
    counts = {state: 0 for state in JOB_STATES}
    for job in jobs:
        counts[job.state] = counts.get(job.state, 0) + 1
    return counts
