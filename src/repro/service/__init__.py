"""Campaign service: a long-running daemon for fault-injection campaigns.

The paper's statistical workload — thousands of small solver trials per
figure — amortises beautifully behind a persistent server: matrices,
ideal baselines and finished trials stay warm in memory across
submissions, a worker pool multiplexes shard jobs, and progress streams
to clients as chunked JSONL.  See :mod:`repro.service.server` for the
daemon, :mod:`repro.service.client` for the client library and
``python -m repro.service`` for the CLI.

The correctness anchor is inherited from the campaign engine: a spec
submitted to the daemon yields a fingerprint byte-identical to the same
spec run offline through ``python -m repro.campaign run``.
"""

from repro.service.client import ServiceClient, ServiceError, default_url
from repro.service.protocol import (JOB_STATES, PROTOCOL_VERSION,
                                    TERMINAL_STATES, ProtocolError,
                                    spec_from_payload, spec_to_payload)
from repro.service.server import (DEFAULT_HOST, DEFAULT_PORT,
                                  SERVICE_CHAOS_ENV, SERVICE_HOST_ENV,
                                  SERVICE_PORT_ENV, SERVICE_URL_ENV,
                                  CampaignService, ChaosMonkey, WarmCache,
                                  WorkerDied)

__all__ = [
    "CampaignService",
    "ChaosMonkey",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "JOB_STATES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SERVICE_CHAOS_ENV",
    "SERVICE_HOST_ENV",
    "SERVICE_PORT_ENV",
    "SERVICE_URL_ENV",
    "ServiceClient",
    "ServiceError",
    "TERMINAL_STATES",
    "WarmCache",
    "WorkerDied",
    "default_url",
    "spec_from_payload",
    "spec_to_payload",
]
