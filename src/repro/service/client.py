"""Client library for the campaign service daemon.

Stdlib-only (``http.client``): submit campaigns, poll status, stream
``watch`` events, cancel jobs and shut the daemon down.  The daemon URL
defaults to ``REPRO_SERVICE_URL`` and falls back to the daemon's own
host/port defaults, so a client on the daemon's machine needs no
configuration at all.

    from repro.service import ServiceClient
    client = ServiceClient()
    job = client.submit(spec)
    for event in client.watch(job["id"]):
        ...
    assert client.status(job["id"])["fingerprint"] == offline_fingerprint
"""

from __future__ import annotations

import http.client
import json
import os
import time
import urllib.parse
from typing import Dict, Iterator, List, Optional

from repro.campaign.spec import CampaignSpec
from repro.service.protocol import (PROTOCOL_VERSION, TERMINAL_STATES,
                                    ProtocolError, parse_event_line,
                                    spec_to_payload, validate_job_id)
from repro.service.server import (DEFAULT_HOST, DEFAULT_PORT,
                                  SERVICE_URL_ENV, default_host,
                                  default_port)


class ServiceError(RuntimeError):
    """The daemon rejected a request or could not be reached."""


def default_url() -> str:
    override = os.environ.get(SERVICE_URL_ENV, "").strip()
    if override:
        return override
    return f"http://{default_host()}:{default_port()}"


class ServiceClient:
    """Thin HTTP client speaking the service protocol.

    ``timeout`` bounds every non-streaming request; ``watch`` uses its
    own generous per-read timeout because a trial may legitimately take
    a while.
    """

    def __init__(self, url: Optional[str] = None, timeout: float = 30.0):
        parsed = urllib.parse.urlsplit(url or default_url())
        if parsed.scheme not in ("http", ""):
            raise ServiceError(f"campaign service URLs are http:// only, "
                               f"got {parsed.scheme!r}")
        self.host = parsed.hostname or DEFAULT_HOST
        self.port = parsed.port or DEFAULT_PORT
        self.timeout = timeout

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[dict] = None,
                 timeout: Optional[float] = None) -> Dict[str, object]:
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=timeout if timeout is not None else self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except OSError as exc:
                raise ServiceError(
                    f"cannot reach campaign service at "
                    f"http://{self.host}:{self.port}{path}: {exc}") from None
            try:
                parsed = json.loads(raw.decode("utf-8"))
            except ValueError:
                raise ServiceError(
                    f"non-JSON response from {path} "
                    f"(HTTP {response.status})") from None
            if response.status >= 400:
                raise ServiceError(parsed.get("error")
                                   or f"HTTP {response.status} from {path}")
            found = parsed.get("version")
            if found != PROTOCOL_VERSION:
                raise ServiceError(
                    f"daemon speaks protocol v{found}, this client "
                    f"v{PROTOCOL_VERSION} — upgrade one of them")
            return parsed
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def wait_until_up(self, timeout: float = 10.0,
                      interval: float = 0.1) -> Dict[str, object]:
        """Poll ``/healthz`` until the daemon answers (startup races)."""
        deadline = time.time() + timeout
        while True:
            try:
                return self.health()
            except ServiceError:
                if time.time() >= deadline:
                    raise
                time.sleep(interval)

    def metrics(self) -> Dict[str, object]:
        return self._request("GET", "/metrics")

    def submit(self, spec: CampaignSpec) -> Dict[str, object]:
        """Submit ``spec``; returns the job status payload (``id`` …)."""
        try:
            payload = spec_to_payload(spec)
        except ProtocolError as exc:
            raise ServiceError(str(exc)) from None
        return self._request("POST", "/jobs", body={"spec": payload})["job"]

    def jobs(self) -> List[Dict[str, object]]:
        return self._request("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/jobs/{validate_job_id(job_id)}")["job"]

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._request(
            "POST", f"/jobs/{validate_job_id(job_id)}/cancel")["job"]

    def shutdown(self, drain: bool = True) -> Dict[str, object]:
        return self._request("POST", "/shutdown", body={"drain": drain})

    def watch(self, job_id: str,
              read_timeout: float = 600.0) -> Iterator[Dict[str, object]]:
        """Stream the job's event log as it grows.

        Yields each JSONL event dict; returns after the job's terminal
        event.  Blank keep-alive lines are swallowed.
        """
        job_id = validate_job_id(job_id)
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=read_timeout)
        try:
            try:
                conn.request("GET", f"/jobs/{job_id}/watch")
                response = conn.getresponse()
            except OSError as exc:
                raise ServiceError(
                    f"cannot reach campaign service at "
                    f"http://{self.host}:{self.port}: {exc}") from None
            if response.status >= 400:
                raw = response.read()
                try:
                    message = json.loads(raw.decode("utf-8")).get("error")
                except ValueError:
                    message = f"HTTP {response.status}"
                raise ServiceError(message or f"HTTP {response.status}")
            while True:
                line = response.readline()
                if not line:
                    return
                event = parse_event_line(line.decode("utf-8"))
                if event is None:
                    continue
                yield event
                if event.get("event") in TERMINAL_STATES \
                        or event.get("event") == "done":
                    return
        finally:
            conn.close()

    def wait(self, job_id: str, timeout: float = 600.0,
             interval: float = 0.1) -> Dict[str, object]:
        """Poll ``status`` until the job reaches a terminal state."""
        deadline = time.time() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if time.time() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']!r} after "
                    f"{timeout:g}s")
            time.sleep(interval)
