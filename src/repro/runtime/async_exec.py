"""Real asynchronous execution of task graphs on worker threads.

This module is the "for real" counterpart of the discrete-event
simulator: the same :class:`~repro.runtime.graph.TaskGraph` the list
scheduler times is executed on a persistent pool of OS threads with

* a dependency-tracking event loop — a task is dispatched only when all
  of its dependencies have finished, and ready tasks are handed to free
  threads in priority order (recovery tasks carry the paper's lower
  priority, so reductions really start first, Section 3.3.2);
* per-page locks — tasks that declare a ``page`` serialise against other
  tasks touching the same page.  This is the thread-safety backstop
  *mutating* recovery actions will need once repairs run concurrently
  with consumers; the resilient solver's current task actions are
  deliberately read-only (bitwise neutrality across backends) and
  declare no page, so today the locks are exercised by the backend's
  own tests and by any custom graphs that opt in;
* measured wall-clock intervals per task, from which the backend reports
  real overlap (did recovery actually run while reductions ran?) and a
  measured per-state breakdown next to the simulated one;
* an explicit :class:`VulnerableWindowMonitor` recording AFEIR's trade
  window — the wall-clock gap between a recovery task finishing and the
  dependent scalar starting — and every DUE that lands *after* its
  page's recovery already ran (the paper's Section 5.4 coverage loss).

The simulated timeline is still produced by the shared deterministic
scheduler (see :class:`~repro.runtime.backend.ExecutionBackend`), so a
solver configured with this backend makes bit-identical clock-dependent
decisions to the simulated backend while its task system genuinely runs
concurrently.
"""

from __future__ import annotations

import heapq
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import resolve_worker_count
from repro.runtime.backend import (ExecutionBackend, ExecutionResult,
                                   WallInterval)
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.runtime.graph import TaskGraph, maybe_verify_graph
from repro.sanitize import (make_condition, make_lock,
                            record_task_accesses, sanitizer_enabled)


class PageLockTable:
    """Lazily-created per-page locks for tasks that declare a page.

    Concurrency contract: :meth:`lock_for` is the **single audited
    access path** to the underlying table — creation and lookup both
    happen under the guard, so two workers racing on a fresh page can
    never observe (or create) two different locks for it.  Nothing else
    may touch ``_locks``: an unguarded read would race the dict resize
    a concurrent insert can trigger.  Enforced by the regression test
    ``tests/sanitize/test_page_lock_table.py``.
    """

    def __init__(self) -> None:
        self._locks: Dict[int, threading.Lock] = {}
        self._guard = make_lock("PageLockTable.guard")

    def lock_for(self, page: int) -> threading.Lock:
        """The page's lock (created on first use, under the guard)."""
        with self._guard:
            lock = self._locks.get(page)
            if lock is None:
                lock = self._locks[page] = make_lock(f"page:{page}.lock")
            return lock

    @contextmanager
    def holding(self, page: Optional[int]):
        """Context manager: hold the page's lock, or nothing for ``None``."""
        if page is None:
            yield
            return
        lock = self.lock_for(int(page))
        with lock:
            yield

    def __len__(self) -> int:
        with self._guard:
            return len(self._locks)


@dataclass(frozen=True)
class WindowRecord:
    """One measured vulnerable window (wall-clock, seconds)."""

    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class DueRecord:
    """One DUE observation relative to the vulnerable window."""

    vector: str
    page: int
    sim_time: float
    point: str
    #: True when the DUE landed after its covering recovery task had
    #: already run — too late to be repaired before the next scalar.
    in_window: bool


@dataclass
class MonitorSummary:
    """Picklable digest of one solve's monitor observations."""

    runs: int = 0
    recovery_scans: int = 0
    pages_seen_by_scans: int = 0
    overlapped_recoveries: int = 0
    #: Recovery tasks whose measured interval overlapped the re-enacted
    #: halo exchange of the ranks placement (0 without a halo task, and
    #: structurally 0 for FEIR, whose recovery barriers the reduction).
    halo_overlapped_recoveries: int = 0
    windows: int = 0
    total_window: float = 0.0
    dues_observed: int = 0
    dues_in_window: int = 0

    @property
    def mean_window(self) -> float:
        return self.total_window / self.windows if self.windows else 0.0

    @property
    def concurrency_observed(self) -> bool:
        """True when recovery measurably ran while other tasks ran."""
        return self.overlapped_recoveries > 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "runs": self.runs,
            "recovery_scans": self.recovery_scans,
            "pages_seen_by_scans": self.pages_seen_by_scans,
            "overlapped_recoveries": self.overlapped_recoveries,
            "halo_overlapped_recoveries": self.halo_overlapped_recoveries,
            "windows": self.windows,
            "total_window": self.total_window,
            "mean_window": self.mean_window,
            "dues_observed": self.dues_observed,
            "dues_in_window": self.dues_in_window,
            "concurrency_observed": self.concurrency_observed,
        }


class VulnerableWindowMonitor:
    """Thread-safe recorder of AFEIR's asynchrony and its cost.

    The monitor collects three kinds of evidence:

    * **scans** — every recovery task that really executed reports in
      (how many poisoned pages it found), proving recovery ran at all;
    * **windows / overlaps** — from the measured wall intervals of a real
      execution: the gap between a recovery task finishing and its
      dependent scalar starting (the vulnerable window), and whether the
      recovery interval overlapped other tasks on other threads (the
      asynchrony the paper claims);
    * **DUEs** — every materialised fault, flagged ``in_window`` when it
      landed after its page's recovery already ran, i.e. exactly the
      losses Section 5.4 attributes to the asynchronous schedule.
    """

    def __init__(self) -> None:
        self._lock = make_lock("VulnerableWindowMonitor.lock")
        self.window_records: List[WindowRecord] = []
        self.due_records: List[DueRecord] = []
        self._summary = MonitorSummary()

    # -- recording (called from worker threads and the solver) ----------
    def record_scan(self, label: str, pages_found: int = 0) -> None:
        with self._lock:
            self._summary.recovery_scans += 1
            self._summary.pages_seen_by_scans += int(pages_found)

    def record_window(self, label: str, start: float, end: float) -> None:
        if end <= start:
            return
        with self._lock:
            self.window_records.append(WindowRecord(label, start, end))
            self._summary.windows += 1
            self._summary.total_window += end - start

    def note_due(self, vector: str, page: int, sim_time: float,
                 point: str, in_window: bool) -> None:
        with self._lock:
            self.due_records.append(DueRecord(vector, page, sim_time,
                                              point, in_window))
            self._summary.dues_observed += 1
            if in_window:
                self._summary.dues_in_window += 1

    def observe(self, result: ExecutionResult,
                pairs: Tuple[Tuple[str, str], ...] = ()) -> None:
        """Digest one real execution: overlap counts plus the measured
        window of every (recovery task, dependent scalar) pair."""
        with self._lock:
            self._summary.runs += 1
        if not result.wall_intervals:
            return
        overlaps = result.recovery_overlaps()
        halo_overlaps = result.recovery_halo_overlaps()
        if overlaps or halo_overlaps:
            with self._lock:
                self._summary.overlapped_recoveries += overlaps
                self._summary.halo_overlapped_recoveries += halo_overlaps
        for recovery_name, scalar_name in pairs:
            rec = result.wall_intervals.get(recovery_name)
            scal = result.wall_intervals.get(scalar_name)
            if rec is not None and scal is not None:
                self.record_window(f"{recovery_name}->{scalar_name}",
                                   rec.end, scal.start)

    # -- queries --------------------------------------------------------
    @property
    def dues_in_window(self) -> int:
        with self._lock:
            return self._summary.dues_in_window

    @property
    def overlapped_recoveries(self) -> int:
        with self._lock:
            return self._summary.overlapped_recoveries

    @property
    def halo_overlapped_recoveries(self) -> int:
        with self._lock:
            return self._summary.halo_overlapped_recoveries

    def summary(self) -> Dict[str, object]:
        with self._lock:
            return self._summary.as_dict()


@dataclass
class _RunState:
    """Mutable bookkeeping of one in-flight graph execution."""

    tasks: Dict[str, object]
    remaining: Dict[str, int]
    successors: Dict[str, List[str]]
    ready: List[Tuple[int, int, str]] = field(default_factory=list)
    intervals: Dict[str, WallInterval] = field(default_factory=dict)
    values: Dict[str, object] = field(default_factory=dict)
    n_done: int = 0
    inflight: int = 0
    error: Optional[BaseException] = None
    t0: float = 0.0
    #: Monotone tie-break counter so equal-priority ready tasks dispatch
    #: in the order they became ready (mirrors the simulator's tie-break).
    seq: int = 0


class ThreadedBackend(ExecutionBackend):
    """Thread-pool execution backend (real concurrency, measured time).

    ``num_workers`` is the *simulated* worker count (paper semantics);
    the real thread count defaults to the same number capped by the
    ``REPRO_MAX_WORKERS`` environment override, or ``max_threads`` when
    given.  Worker threads are started lazily on the first :meth:`run`
    and persist across runs (a resilient solve executes one graph per
    iteration); :meth:`close` joins them.
    """

    name = "threaded"
    executes_real = True

    def __init__(self, num_workers: int,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 charge_overhead: bool = True,
                 max_threads: Optional[int] = None,
                 pace: float = 1.0):
        super().__init__(num_workers, cost_model=cost_model,
                         charge_overhead=charge_overhead)
        if pace < 0:
            raise ValueError(f"pace must be non-negative, got {pace}")
        #: Wall-clock pacing: every task occupies its thread for at least
        #: ``duration * pace`` real seconds (the remainder is slept,
        #: releasing the GIL).  1.0 replays the cost model's durations in
        #: real time, so scheduling effects — recovery overlapping the
        #: reductions, FEIR's barrier serialisation — are physically
        #: measurable; 0.0 runs actions back-to-back as fast as possible.
        self.pace = float(pace)
        self.thread_count = resolve_worker_count(
            max_threads if max_threads is not None else num_workers)
        self.page_locks = PageLockTable()
        self._cond = make_condition(name="ThreadedBackend.cond")
        self._threads: List[threading.Thread] = []
        self._state: Optional[_RunState] = None
        self._shutdown = False
        #: Serialises whole-graph runs (one graph in flight at a time).
        self._run_lock = make_lock("ThreadedBackend.run_lock")

    def describe(self) -> str:
        return (f"{self.name}({self.num_workers} simulated workers, "
                f"{self.thread_count} threads)")

    # ------------------------------------------------------------------
    def run(self, graph: TaskGraph, start_time: float = 0.0
            ) -> ExecutionResult:
        """Simulate the graph's timeline, then execute it for real."""
        schedule = self.simulate(graph, start_time=start_time)
        result = self.execute(graph)
        result.schedule = schedule
        return result

    def execute(self, graph: TaskGraph) -> ExecutionResult:
        """Execute the graph for real without re-deriving its simulated
        timeline (``result.schedule`` is ``None``).

        This is the hot path of the resilient solver, which has already
        scheduled (or template-cached) the iteration's timeline and only
        needs the measured side: paying a second ``O(V log V)`` list
        schedule per iteration here would double the campaign cost.
        """
        graph.validate()
        maybe_verify_graph(graph)  # opt-in REPRO_VERIFY_GRAPHS=1 assertion
        state = self._execute(graph)
        wall_time = 0.0
        if state.intervals:
            wall_time = (max(i.end for i in state.intervals.values())
                         - min(i.start for i in state.intervals.values()))
        return ExecutionResult(backend=self.name,
                               executed_real=True, wall_time=wall_time,
                               wall_intervals=dict(state.intervals),
                               values=dict(state.values),
                               kinds={t.name: t.kind for t in graph.tasks})

    def close(self) -> None:
        with self._cond:
            self._shutdown = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> None:
        if self._threads:
            return
        if self._shutdown:
            raise RuntimeError("backend is closed")
        for idx in range(self.thread_count):
            thread = threading.Thread(target=self._worker, args=(idx,),
                                      name=f"repro-exec-{idx}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def _execute(self, graph: TaskGraph) -> _RunState:
        with self._run_lock:
            tasks = {t.name: t for t in graph.tasks}
            remaining = {name: sum(1 for d in t.deps if d in tasks)
                         for name, t in tasks.items()}
            successors: Dict[str, List[str]] = {name: [] for name in tasks}
            for t in tasks.values():
                for dep in t.deps:
                    if dep in successors:
                        successors[dep].append(t.name)
            state = _RunState(tasks=tasks, remaining=remaining,
                              successors=successors)
            for name, ndeps in remaining.items():
                if ndeps == 0:
                    heapq.heappush(state.ready,
                                   (-tasks[name].priority, state.seq, name))
                    state.seq += 1
            state.t0 = time.perf_counter()  # repro-lint: allow[wall-clock] wall-interval origin for the overlap monitor, never fingerprinted
            total = len(tasks)
            if total == 0:
                return state
            self._ensure_pool()
            with self._cond:
                self._state = state
                self._cond.notify_all()
                # On error the recording worker clears the ready queue, so
                # this loop just drains the in-flight tasks and returns.
                while (state.n_done < total
                       and not (state.error is not None
                                and state.inflight == 0 and not state.ready)):
                    self._cond.wait(timeout=1.0)
                self._state = None
            if state.error is not None:
                raise state.error
            return state

    def _worker(self, idx: int) -> None:
        while True:
            with self._cond:
                while not self._shutdown and not (
                        self._state is not None and self._state.ready):
                    self._cond.wait()
                if self._shutdown:
                    return
                state = self._state
                _, _, name = heapq.heappop(state.ready)
                task = state.tasks[name]
                state.inflight += 1
            value: object = None
            error: Optional[BaseException] = None
            began = ended = None
            try:
                with self.page_locks.holding(task.page):
                    # The interval starts once the page lock is held, so
                    # lock-wait time is not mistaken for concurrent work.
                    began = time.perf_counter() - state.t0  # repro-lint: allow[wall-clock] measured task interval, reported not fingerprinted
                    if sanitizer_enabled():
                        # Bridge the task's declared resource sets into
                        # dynamic accesses, from the thread that really
                        # runs it and inside the page-lock critical
                        # section so locksets include the page lock.
                        record_task_accesses(task.reads,
                                             task.resources_written(),
                                             task=name)
                    try:
                        if task.action is not None:
                            value = task.action()
                        if self.pace > 0.0 and task.duration > 0.0:
                            budget = task.duration * self.pace
                            remaining = budget - (time.perf_counter()  # repro-lint: allow[wall-clock] pacing only shapes wall intervals, not iterates
                                                  - state.t0 - began)
                            if remaining > 0:
                                time.sleep(remaining)
                    finally:
                        ended = time.perf_counter() - state.t0  # repro-lint: allow[wall-clock] measured task interval, reported not fingerprinted
            except BaseException as exc:  # propagate to the caller
                error = exc
            if began is None or ended is None:
                began = ended = time.perf_counter() - state.t0  # repro-lint: allow[wall-clock] measured task interval, reported not fingerprinted
            with self._cond:
                state.intervals[name] = WallInterval(start=began, end=ended,
                                                     worker=idx)
                state.values[name] = value
                state.inflight -= 1
                state.n_done += 1
                if error is not None and state.error is None:
                    state.error = error
                if state.error is not None:
                    # Stop the pipeline immediately — this thread already
                    # holds the lock, so no other worker can pop a task
                    # between the error being recorded and the clear.
                    state.ready.clear()
                if state.error is None:
                    for nxt in state.successors[name]:
                        state.remaining[nxt] -= 1
                        if state.remaining[nxt] == 0:
                            heapq.heappush(state.ready,
                                           (-state.tasks[nxt].priority,
                                            state.seq, nxt))
                            state.seq += 1
                self._cond.notify_all()
