"""Deterministic priority list scheduler over ``P`` workers.

This is the discrete-event core of the OmpSs stand-in.  It executes a
:class:`~repro.runtime.graph.TaskGraph` on a fixed number of workers
using a work-conserving greedy policy:

* a task becomes *ready* when all its dependencies have finished;
* whenever a worker is free and ready tasks exist, the highest-priority
  ready task (ties broken by readiness time, then insertion order) is
  started on that worker;
* starting a task charges the per-task runtime overhead of the cost
  model on that worker, in addition to the task's duration.

The scheduler also replays task ``action`` callables in the order the
tasks *start* in simulated time, so numerical side effects observe the
same ordering the schedule implies.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.runtime.graph import TaskGraph
from repro.runtime.task import ScheduledTask
from repro.runtime.trace import ExecutionTrace


@dataclass
class ScheduleResult:
    """Outcome of scheduling one task graph."""

    makespan: float
    scheduled: Dict[str, ScheduledTask]
    trace: ExecutionTrace
    num_workers: int
    start_time: float = 0.0
    #: Task names in the exact order the scheduler launched them.  This is
    #: the order action replay uses; ``order_started()`` returns the same
    #: sequence so the trace and the numerical replay can never disagree.
    started: Optional[List[str]] = None
    #: Return values of replayed task actions, keyed by task name
    #: (populated only when the run executed actions).
    values: Dict[str, object] = field(default_factory=dict)

    def start_of(self, name: str) -> float:
        return self.scheduled[name].start

    def end_of(self, name: str) -> float:
        return self.scheduled[name].end

    def order_started(self) -> List[str]:
        """Task names ordered by simulated start time.

        Ties (equal start times) are broken by launch order — the same
        tie-break the action replay uses — not by task name, so the two
        orderings agree for equal-priority, equal-start tasks.
        """
        if self.started is not None:
            return list(self.started)
        return [t.name for t in sorted(self.scheduled.values(),
                                       key=lambda s: (s.start, s.seq))]


class ListScheduler:
    """Greedy priority list scheduler (deterministic)."""

    def __init__(self, num_workers: int,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 charge_overhead: bool = True):
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        self.num_workers = int(num_workers)
        self.cost_model = cost_model
        self.charge_overhead = charge_overhead

    # ------------------------------------------------------------------
    def run(self, graph: TaskGraph, start_time: float = 0.0,
            execute_actions: bool = True) -> ScheduleResult:
        """Schedule ``graph`` and (optionally) replay its task actions."""
        graph.validate()
        tasks = {t.name: t for t in graph.tasks}
        order_index = {name: i for i, name in enumerate(tasks)}

        remaining_deps = {name: sum(1 for d in t.deps if d in tasks)
                          for name, t in tasks.items()}
        successors: Dict[str, List[str]] = {name: [] for name in tasks}
        for t in tasks.values():
            for d in t.deps:
                successors[d].append(t.name)

        # ready heap: (-priority, ready_time, insertion_order, name)
        ready: List = []
        counter = itertools.count()
        for name, ndeps in remaining_deps.items():
            if ndeps == 0:
                heapq.heappush(ready, (-tasks[name].priority, start_time,
                                       order_index[name], name))

        # worker availability heap: (free_time, worker_id)
        workers = [(start_time, w) for w in range(self.num_workers)]
        heapq.heapify(workers)

        # event heap of task completions: (end_time, seq, name, worker)
        completions: List = []
        scheduled: Dict[str, ScheduledTask] = {}
        started_order: List[str] = []
        now = start_time
        overhead = self.cost_model.task_overhead if self.charge_overhead else 0.0

        n_done = 0
        total = len(tasks)
        while n_done < total:
            # Launch as many ready tasks as there are free workers at `now`.
            launched = True
            while launched:
                launched = False
                if ready and workers and workers[0][0] <= now + 1e-18:
                    free_time, worker = heapq.heappop(workers)
                    _, ready_time, _, name = heapq.heappop(ready)
                    task = tasks[name]
                    begin = max(now, free_time, ready_time)
                    end = begin + overhead + task.duration
                    scheduled[name] = ScheduledTask(
                        name=name, worker=worker, start=begin, end=end,
                        kind=task.kind, overhead=overhead,
                        seq=len(started_order))
                    started_order.append(name)
                    heapq.heappush(completions, (end, next(counter), name, worker))
                    launched = True
            if n_done >= total:
                break
            if not completions:
                # No running tasks but not all done: either tasks are ready
                # and a worker frees later, or the graph is inconsistent.
                if not ready:
                    missing = [n for n, d in remaining_deps.items()
                               if d > 0 and n not in scheduled]
                    raise RuntimeError(
                        f"scheduler deadlock; unfinished tasks: {missing[:5]}")
                # Advance time to the next worker availability.
                now = workers[0][0]
                continue
            # Advance to next completion.
            end, _, name, worker = heapq.heappop(completions)
            now = max(now, end)
            heapq.heappush(workers, (end, worker))
            n_done += 1
            for nxt in successors[name]:
                remaining_deps[nxt] -= 1
                if remaining_deps[nxt] == 0:
                    heapq.heappush(ready, (-tasks[nxt].priority, end,
                                           order_index[nxt], nxt))

        makespan = max((s.end for s in scheduled.values()), default=start_time)

        values: Dict[str, object] = {}
        if execute_actions:
            for name in started_order:
                action = tasks[name].action
                if action is not None:
                    values[name] = action()

        trace = ExecutionTrace.from_schedule(
            list(scheduled.values()), num_workers=self.num_workers,
            start=start_time, end=makespan)
        return ScheduleResult(makespan=makespan - start_time,
                              scheduled=scheduled, trace=trace,
                              num_workers=self.num_workers,
                              start_time=start_time,
                              started=started_order,
                              values=values)
