"""Task-based data-flow runtime (OmpSs stand-in).

The paper parallelises CG by strip-mining each vector operation into
tasks and letting the OmpSs runtime schedule them according to data-flow
dependencies (Figure 1).  The central claims — that recovery tasks can
be placed either in the critical path (FEIR) or overlapped with the
reduction tasks (AFEIR, Figure 2) and that this changes load imbalance
and overhead — are claims about *task scheduling*.

The runtime is one composition of three orthogonal axes
(:mod:`repro.runtime.runtime`), built with :func:`make_runtime`:

* **scheduler** — how iteration task graphs run: ``"list"`` is the
  deterministic discrete-event priority list scheduler over ``P``
  workers with durations from a calibrated
  :class:`~repro.runtime.cost_model.CostModel`; ``"threaded"``
  (:mod:`repro.runtime.async_exec`) additionally executes every graph
  for real on a dependency-tracked priority thread pool with per-page
  locks.
* **placement** — where the numerical kernels run: ``"local"`` is the
  single-address-space NumPy engine
  (:class:`~repro.runtime.kernels.LocalKernelEngine`); ``"ranks"``
  strip-partitions every kernel over N rank workers with real halo
  exchange and tree allreduces
  (:class:`~repro.distributed.ranks.RankKernelEngine`).
* **clock** — which timeline is reported: ``"simulated"`` only the
  discrete-event timeline (makespans, Table 3 state breakdowns);
  ``"wall"`` additionally measured wall intervals of the re-enacted
  execution (task overlap, vulnerable windows).

The simulated timeline is authoritative for every clock-dependent
decision in all cells, and every engine reduces dot products in fixed
page order (:func:`~repro.runtime.kernels.paged_dot`), so each
(scheduler x placement x clock) cell produces bit-identical results.
``backend="simulated"``/``"threaded"`` remain as deprecated aliases for
the (scheduler, clock) pairs in
:data:`~repro.runtime.backend.BACKEND_ALIASES`.
"""

from repro.runtime.backend import (BACKEND_ALIASES, BACKEND_NAMES,
                                   ExecutionBackend, ExecutionResult,
                                   SimulatedBackend, WallInterval,
                                   make_backend)
from repro.runtime.async_exec import (PageLockTable, ThreadedBackend,
                                      VulnerableWindowMonitor)
from repro.runtime.kernels import (KernelEngine, LocalKernelEngine,
                                   make_kernel_engine, paged_dot)
from repro.runtime.runtime import (CLOCK_NAMES, PLACEMENT_NAMES, Runtime,
                                   RuntimeSpec, SCHEDULER_NAMES,
                                   make_runtime, resolve_runtime_spec)
from repro.runtime.cost_model import CostModel
from repro.runtime.graph import (GraphRace, GraphRaceError, TaskGraph,
                                 VERIFY_GRAPHS_ENV, find_races,
                                 verification_enabled, verify_graph)
from repro.runtime.scheduler import ListScheduler, ScheduleResult
from repro.runtime.task import Task, TaskKind
from repro.runtime.trace import ExecutionTrace, StateBreakdown

__all__ = [
    "BACKEND_ALIASES",
    "BACKEND_NAMES",
    "CLOCK_NAMES",
    "CostModel",
    "ExecutionBackend",
    "ExecutionResult",
    "ExecutionTrace",
    "GraphRace",
    "GraphRaceError",
    "KernelEngine",
    "ListScheduler",
    "LocalKernelEngine",
    "PLACEMENT_NAMES",
    "PageLockTable",
    "Runtime",
    "RuntimeSpec",
    "SCHEDULER_NAMES",
    "ScheduleResult",
    "SimulatedBackend",
    "StateBreakdown",
    "Task",
    "TaskGraph",
    "TaskKind",
    "ThreadedBackend",
    "VERIFY_GRAPHS_ENV",
    "VulnerableWindowMonitor",
    "WallInterval",
    "make_backend",
    "make_kernel_engine",
    "find_races",
    "make_runtime",
    "paged_dot",
    "resolve_runtime_spec",
    "verification_enabled",
    "verify_graph",
]
