"""Task-based data-flow runtime (OmpSs stand-in).

The paper parallelises CG by strip-mining each vector operation into
tasks and letting the OmpSs runtime schedule them according to data-flow
dependencies (Figure 1).  The central claims — that recovery tasks can
be placed either in the critical path (FEIR) or overlapped with the
reduction tasks (AFEIR, Figure 2) and that this changes load imbalance
and overhead — are claims about *task scheduling*.

Pure Python cannot run such tasks truly concurrently (GIL), so this
package provides a deterministic discrete-event simulator of a work-
conserving priority list scheduler over ``P`` workers.  Task durations
come from a calibrated :class:`~repro.runtime.cost_model.CostModel`
(flops, memory traffic, per-task runtime overhead).  The simulator
produces the same observable quantities the paper reports: makespan,
and the per-state time breakdown (useful / runtime / idle) of Table 3.
"""

from repro.runtime.cost_model import CostModel
from repro.runtime.graph import TaskGraph
from repro.runtime.scheduler import ListScheduler, ScheduleResult
from repro.runtime.task import Task, TaskKind
from repro.runtime.trace import ExecutionTrace, StateBreakdown

__all__ = [
    "CostModel",
    "ExecutionTrace",
    "ListScheduler",
    "ScheduleResult",
    "StateBreakdown",
    "Task",
    "TaskGraph",
    "TaskKind",
]
