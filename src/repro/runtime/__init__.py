"""Task-based data-flow runtime (OmpSs stand-in).

The paper parallelises CG by strip-mining each vector operation into
tasks and letting the OmpSs runtime schedule them according to data-flow
dependencies (Figure 1).  The central claims — that recovery tasks can
be placed either in the critical path (FEIR) or overlapped with the
reduction tasks (AFEIR, Figure 2) and that this changes load imbalance
and overhead — are claims about *task scheduling*.

Two execution backends realise those claims behind one protocol
(:class:`~repro.runtime.backend.ExecutionBackend`):

* ``simulated`` — a deterministic discrete-event simulator of a work-
  conserving priority list scheduler over ``P`` workers.  Task durations
  come from a calibrated :class:`~repro.runtime.cost_model.CostModel`
  (flops, memory traffic, per-task runtime overhead), and the simulator
  produces the observable quantities the paper reports: makespan, and
  the per-state time breakdown (useful / runtime / idle) of Table 3.
* ``threaded`` (:mod:`repro.runtime.async_exec`) — the same graphs
  additionally *execute for real* on a pool of worker threads with
  dependency tracking, priority dispatch and per-page locks, measuring
  wall-clock overlap and AFEIR's vulnerable window directly.

A second, orthogonal protocol decides *where the numerical kernels
execute* (:class:`~repro.runtime.kernels.KernelEngine`): in this address
space (:class:`~repro.runtime.kernels.LocalKernelEngine`) or strip-
partitioned over rank workers with real halo exchange and tree
allreduces (:class:`~repro.distributed.ranks.RankKernelEngine`).  Every
engine reduces dot products in fixed page order
(:func:`~repro.runtime.kernels.paged_dot`), so results are bit-identical
across engines and rank counts.
"""

from repro.runtime.backend import (BACKEND_NAMES, ExecutionBackend,
                                   ExecutionResult, SimulatedBackend,
                                   WallInterval, make_backend)
from repro.runtime.async_exec import (PageLockTable, ThreadedBackend,
                                      VulnerableWindowMonitor)
from repro.runtime.kernels import (KernelEngine, LocalKernelEngine,
                                   make_kernel_engine, paged_dot)
from repro.runtime.cost_model import CostModel
from repro.runtime.graph import TaskGraph
from repro.runtime.scheduler import ListScheduler, ScheduleResult
from repro.runtime.task import Task, TaskKind
from repro.runtime.trace import ExecutionTrace, StateBreakdown

__all__ = [
    "BACKEND_NAMES",
    "CostModel",
    "ExecutionBackend",
    "ExecutionResult",
    "ExecutionTrace",
    "KernelEngine",
    "ListScheduler",
    "LocalKernelEngine",
    "PageLockTable",
    "ScheduleResult",
    "SimulatedBackend",
    "StateBreakdown",
    "Task",
    "TaskGraph",
    "TaskKind",
    "ThreadedBackend",
    "VulnerableWindowMonitor",
    "WallInterval",
    "make_backend",
    "make_kernel_engine",
    "paged_dot",
]
