"""The composable runtime: scheduler x placement x clock.

PR 2 introduced the :class:`~repro.runtime.backend.ExecutionBackend`
seam (how a task graph runs) and PR 3 the
:class:`~repro.runtime.kernels.KernelEngine` seam (where the numerical
kernels run).  They composed by convention — ``backend=`` and ``ranks=``
were separate knobs whose combinations were partly forbidden — which
made two cells of the design space unexpressible: the threaded task
system over rank-sharded kernels, and AFEIR recovery overlapping the
*halo exchange* on the owning rank.  This module replaces the
convention with a single composition of three orthogonal axes:

scheduler
    How the iteration task graphs run.  ``"list"`` is the deterministic
    discrete-event list scheduler; ``"threaded"`` additionally executes
    every graph for real on a dependency-tracked priority thread pool.
placement
    Where the numerical kernels run.  ``"local"`` is the single-address-
    space NumPy engine; ``"ranks"`` strip-partitions every kernel over
    N rank workers with a load-bearing halo exchange and tree
    allreduces (:mod:`repro.distributed.ranks`).
clock
    Which timeline is *reported*.  ``"simulated"`` reports only the
    deterministic discrete-event timeline; ``"wall"`` additionally
    reports measured wall-clock intervals of the re-enacted execution
    (task overlap, vulnerable windows, per-state wall shares).

The simulated timeline is authoritative for every clock-dependent
decision in **all** cells, and kernels reduce in fixed page order in
all placements, so every (scheduler x placement x clock) cell produces
bit-identical iterates, solve times, recovery decisions and campaign
fingerprints — the repo's central invariant.

``backend="simulated"``/``backend="threaded"`` and ``ranks=N`` remain
accepted as deprecated aliases: a legacy backend name fills in whichever
axes were not given explicitly (see :data:`~repro.runtime.backend.BACKEND_ALIASES`),
and ``ranks > 1`` implies ``placement="ranks"``.  Existing configs,
stored campaign keys and CLI invocations therefore keep working and keep
their content addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.runtime.backend import (BACKEND_ALIASES, BACKEND_NAMES,
                                   ExecutionBackend, ExecutionResult,
                                   SimulatedBackend)
from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.runtime.graph import TaskGraph
from repro.runtime.kernels import KernelEngine, make_kernel_engine
from repro.runtime.scheduler import ScheduleResult

#: Values of the scheduler axis.
SCHEDULER_NAMES = ("list", "threaded")
#: Values of the placement axis.
PLACEMENT_NAMES = ("local", "ranks")
#: Values of the clock axis.
CLOCK_NAMES = ("simulated", "wall")


@dataclass(frozen=True)
class RuntimeSpec:
    """One resolved (scheduler x placement x clock) cell."""

    scheduler: str = "list"
    placement: str = "local"
    clock: str = "simulated"
    ranks: int = 1

    def __post_init__(self):
        if self.scheduler not in SCHEDULER_NAMES:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; the scheduler axis "
                f"of make_runtime takes {' or '.join(SCHEDULER_NAMES)}")
        if self.placement not in PLACEMENT_NAMES:
            raise ValueError(
                f"unknown placement {self.placement!r}; the placement axis "
                f"of make_runtime takes {' or '.join(PLACEMENT_NAMES)}")
        if self.clock not in CLOCK_NAMES:
            raise ValueError(
                f"unknown clock {self.clock!r}; the clock axis of "
                f"make_runtime takes {' or '.join(CLOCK_NAMES)}")
        if self.ranks < 1:
            raise ValueError(f"ranks must be >= 1, got {self.ranks}")
        if self.placement == "local" and self.ranks > 1:
            raise ValueError(
                f"placement='local' is a single address space and cannot "
                f"host ranks={self.ranks}; use "
                f"make_runtime(placement='ranks', ranks={self.ranks}) or "
                f"drop the ranks axis")

    # ------------------------------------------------------------------
    @property
    def executes_real(self) -> bool:
        """True when iteration graphs additionally run on real threads."""
        return self.scheduler == "threaded"

    @property
    def measures_wall(self) -> bool:
        """True when measured wall intervals are reported to the caller."""
        return self.clock == "wall"

    @property
    def runs_reenactment(self) -> bool:
        """True when the solver re-enacts each iteration graph for real
        (either to exercise real concurrency or to measure wall time)."""
        return self.executes_real or self.measures_wall

    def backend_alias(self) -> str:
        """The legacy ``backend=`` name of this (scheduler, clock) pair,
        or the explicit ``scheduler+clock`` composition when the pair has
        no legacy name.  Used by content tokens so every previously
        expressible cell keeps its store address byte-for-byte."""
        for name, (sched, clock) in BACKEND_ALIASES.items():
            if (sched, clock) == (self.scheduler, self.clock):
                return name
        return f"{self.scheduler}+{self.clock}"

    def describe(self) -> str:
        return (f"runtime(scheduler={self.scheduler}, "
                f"placement={self.placement}, clock={self.clock}, "
                f"ranks={self.ranks})")


def resolve_runtime_spec(backend: Optional[str] = None,
                         scheduler: Optional[str] = None,
                         placement: Optional[str] = None,
                         clock: Optional[str] = None,
                         ranks: Optional[int] = None) -> RuntimeSpec:
    """Resolve legacy aliases and axis overrides into a :class:`RuntimeSpec`.

    ``backend`` (deprecated alias) fills in whichever of ``scheduler``
    and ``clock`` were not given explicitly; an explicit axis always
    wins.  ``ranks > 1`` implies ``placement="ranks"``; an explicit
    ``placement="ranks"`` with ``ranks=1`` runs the rank runtime with a
    single strip.  Invalid combinations raise a :class:`ValueError`
    naming the factory axis to fix.
    """
    if backend is not None:
        key = str(backend).strip().lower()
        if key not in BACKEND_ALIASES:
            raise ValueError(
                f"unknown execution backend {backend!r}; known backends: "
                f"{', '.join(BACKEND_NAMES)} (or compose the runtime axes "
                f"directly: make_runtime(scheduler=..., placement=..., "
                f"clock=...))")
        alias_scheduler, alias_clock = BACKEND_ALIASES[key]
        scheduler = scheduler if scheduler is not None else alias_scheduler
        clock = clock if clock is not None else alias_clock
    scheduler = "list" if scheduler is None else str(scheduler).strip().lower()
    clock = "simulated" if clock is None else str(clock).strip().lower()
    ranks = 1 if ranks is None else int(ranks)
    if placement is None:
        placement = "ranks" if ranks > 1 else "local"
    else:
        placement = str(placement).strip().lower()
    return RuntimeSpec(scheduler=scheduler, placement=placement,
                       clock=clock, ranks=ranks)


class Runtime:
    """One composed runtime: a graph executor plus a kernel engine.

    The solver talks to exactly this object: ``simulate``/``execute``
    run the iteration task graphs (scheduler + clock axes), ``engine``
    runs the numerical kernels (placement axis), and ``spec`` answers
    the cell-dependent questions (does the re-enactment run?  is wall
    time reported?).
    """

    def __init__(self, spec: RuntimeSpec, executor: ExecutionBackend,
                 engine: KernelEngine):
        self.spec = spec
        self.executor = executor
        self.engine = engine

    # -- graph execution (scheduler/clock axes) -------------------------
    def simulate(self, graph: TaskGraph,
                 start_time: float = 0.0) -> ScheduleResult:
        return self.executor.simulate(graph, start_time=start_time)

    def run(self, graph: TaskGraph,
            start_time: float = 0.0) -> ExecutionResult:
        return self.executor.run(graph, start_time=start_time)

    def execute(self, graph: TaskGraph) -> ExecutionResult:
        return self.executor.execute(graph)

    # -- delegated spec queries -----------------------------------------
    @property
    def executes_real(self) -> bool:
        return self.spec.executes_real

    @property
    def measures_wall(self) -> bool:
        return self.spec.measures_wall

    @property
    def runs_reenactment(self) -> bool:
        return self.spec.runs_reenactment

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release real resources of both halves (idempotent)."""
        self.executor.close()
        self.engine.close()

    def describe(self) -> str:
        return (f"{self.spec.describe()} -> {self.executor.describe()} + "
                f"{self.engine.describe()}")

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def make_runtime(blocked, *,
                 num_workers: int,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 charge_overhead: bool = True,
                 max_threads: Optional[int] = None,
                 pace: float = 1.0,
                 timeout: Optional[float] = None,
                 backend: Optional[str] = None,
                 scheduler: Optional[str] = None,
                 placement: Optional[str] = None,
                 clock: Optional[str] = None,
                 ranks: Optional[int] = None,
                 spec: Optional[RuntimeSpec] = None) -> Runtime:
    """Build the composed runtime for one solve.

    ``blocked`` is the solve's :class:`~repro.matrices.blocked.PageBlockedMatrix`
    (the placement axis binds kernels to it); the remaining keyword
    arguments select the cell — either a pre-resolved ``spec`` or the
    axes/aliases :func:`resolve_runtime_spec` accepts.
    """
    if spec is None:
        spec = resolve_runtime_spec(backend=backend, scheduler=scheduler,
                                    placement=placement, clock=clock,
                                    ranks=ranks)
    if spec.scheduler == "threaded":
        from repro.runtime.async_exec import ThreadedBackend
        executor: ExecutionBackend = ThreadedBackend(
            num_workers, cost_model=cost_model,
            charge_overhead=charge_overhead, max_threads=max_threads,
            pace=pace)
    else:
        executor = SimulatedBackend(num_workers, cost_model=cost_model,
                                    charge_overhead=charge_overhead)
    engine = make_kernel_engine(blocked, ranks=spec.ranks,
                                timeout=timeout, placement=spec.placement)
    return Runtime(spec=spec, executor=executor, engine=engine)
