"""Execution backends: one task-graph contract, two ways to run it.

The discrete-event :class:`~repro.runtime.scheduler.ListScheduler` answers
*"how long would this graph take on P workers?"* deterministically; the
threaded backend (:mod:`repro.runtime.async_exec`) answers *"what happens
when the same graph actually runs concurrently?"*.  Both sit behind the
:class:`ExecutionBackend` protocol so the solver, campaign engine and
experiment drivers can switch between them with a config string:

* ``simulated`` — schedule with the list scheduler, then replay task
  actions sequentially in launch order.  Deterministic, zero concurrency.
* ``threaded`` — schedule with the list scheduler for the *simulated*
  timeline (keeping every clock-dependent decision bit-identical to the
  simulated backend), and additionally execute the graph for real on a
  pool of worker threads: dependency-tracked dispatch, priority ordering,
  per-page locks, measured wall-clock intervals per task.

Every backend returns an :class:`ExecutionResult` carrying the simulated
schedule plus (for real backends) the measured wall-clock data used by
the vulnerable-window monitor and the overhead reports.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.runtime.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.runtime.graph import TaskGraph, maybe_verify_graph
from repro.runtime.scheduler import ListScheduler, ScheduleResult
from repro.runtime.task import TaskKind
from repro.runtime.trace import StateBreakdown

#: Legacy backend names and the (scheduler, clock) composition each one
#: resolves to in the unified runtime (:mod:`repro.runtime.runtime`).
#: ``backend=`` is kept as a deprecated alias for these compositions so
#: existing configs and stored campaign keys keep working.
BACKEND_ALIASES = {
    "simulated": ("list", "simulated"),
    "threaded": ("threaded", "wall"),
}

#: Backend names understood by :func:`make_backend` — derived from the
#: registered alias compositions, not hand-kept.
BACKEND_NAMES = tuple(sorted(BACKEND_ALIASES))


@dataclass(frozen=True)
class WallInterval:
    """Measured wall-clock execution of one task (seconds, run-relative)."""

    start: float
    end: float
    worker: int

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "WallInterval") -> bool:
        """True if the two intervals intersect in wall-clock time."""
        return self.start < other.end and other.start < self.end


@dataclass
class ExecutionResult:
    """Simulated schedule plus (optionally) measured real execution.

    ``schedule`` is ``None`` for execution-only runs
    (:meth:`ThreadedBackend.execute <repro.runtime.async_exec.ThreadedBackend.execute>`),
    where the caller already holds the simulated timeline and only the
    measured data is new.
    """

    schedule: Optional[ScheduleResult] = None
    backend: str = "simulated"
    #: True when task actions ran concurrently on real threads.
    executed_real: bool = False
    #: Wall-clock span of the real execution (0 for pure simulation).
    wall_time: float = 0.0
    #: Per-task measured intervals, keyed by task name (real backends).
    wall_intervals: Dict[str, WallInterval] = field(default_factory=dict)
    #: Return values of the task actions, keyed by task name.
    values: Dict[str, object] = field(default_factory=dict)
    #: Task kinds by name (from the graph), used by the measured-data
    #: queries so they never need the simulated schedule.
    kinds: Dict[str, TaskKind] = field(default_factory=dict)

    # -- delegation to the simulated schedule ---------------------------
    def _schedule(self) -> ScheduleResult:
        if self.schedule is None:
            raise ValueError("execution-only result carries no simulated "
                             "schedule; use ExecutionBackend.run()")
        return self.schedule

    @property
    def makespan(self) -> float:
        return self._schedule().makespan

    @property
    def trace(self):
        return self._schedule().trace

    @property
    def scheduled(self):
        return self._schedule().scheduled

    @property
    def start_time(self) -> float:
        return self._schedule().start_time

    def start_of(self, name: str) -> float:
        return self._schedule().start_of(name)

    def end_of(self, name: str) -> float:
        return self._schedule().end_of(name)

    def order_started(self) -> List[str]:
        return self._schedule().order_started()

    # -- measured-execution queries -------------------------------------
    def overlapped(self, name_a: str, name_b: str) -> bool:
        """True if two tasks measurably executed at the same wall time."""
        a = self.wall_intervals.get(name_a)
        b = self.wall_intervals.get(name_b)
        return a is not None and b is not None and a.overlaps(b)

    def recovery_overlaps(self) -> int:
        """Recovery tasks whose wall interval overlapped a non-recovery
        task's interval on a different worker thread — the direct
        observation that recovery really ran off the critical path."""
        if not self.wall_intervals:
            return 0
        recovery: List[Tuple[str, WallInterval]] = []
        others: List[WallInterval] = []
        for name, interval in self.wall_intervals.items():
            if self.kinds.get(name) is TaskKind.RECOVERY:
                recovery.append((name, interval))
            else:
                others.append(interval)
        count = 0
        for _, rec in recovery:
            if any(rec.overlaps(o) and o.worker != rec.worker
                   for o in others):
                count += 1
        return count

    def recovery_halo_overlaps(self) -> int:
        """Recovery tasks whose measured wall interval overlapped a
        communication task's interval (the re-enacted halo exchange of
        the ranks placement) — the paper's asynchrony claim at
        distributed scale, observed directly."""
        comm = [interval for name, interval in self.wall_intervals.items()
                if self.kinds.get(name) is TaskKind.COMMUNICATION]
        if not comm:
            return 0
        count = 0
        for name, interval in self.wall_intervals.items():
            if self.kinds.get(name) is not TaskKind.RECOVERY:
                continue
            if any(interval.overlaps(c) for c in comm):
                count += 1
        return count

    def measured_breakdown(self, num_workers: int) -> StateBreakdown:
        """Per-state wall-clock accounting of the real execution,
        mirroring the simulated :class:`StateBreakdown` of Table 3."""
        breakdown = StateBreakdown()
        if not self.wall_intervals:
            return breakdown
        busy = 0.0
        for name, interval in self.wall_intervals.items():
            kind = self.kinds.get(name, TaskKind.COMPUTE)
            busy += interval.duration
            if kind is TaskKind.RECOVERY:
                breakdown.recovery += interval.duration
            elif kind is TaskKind.CHECKPOINT:
                breakdown.checkpoint += interval.duration
            elif kind is TaskKind.COMMUNICATION:
                breakdown.communication += interval.duration
            else:
                breakdown.useful += interval.duration
        breakdown.idle = max(num_workers * self.wall_time - busy, 0.0)
        return breakdown


class ExecutionBackend(abc.ABC):
    """Common contract of the simulated and threaded graph executors.

    Both backends share one deterministic :class:`ListScheduler`, so the
    *simulated* timeline (makespans, point times, traces) is bit-identical
    whichever backend a solver is configured with; they differ only in
    whether task actions additionally execute concurrently for real.
    """

    name: str = "abstract"
    #: True when :meth:`run` executes task actions on real threads.
    executes_real: bool = False

    def __init__(self, num_workers: int,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 charge_overhead: bool = True):
        self.num_workers = int(num_workers)
        self.cost_model = cost_model
        self.scheduler = ListScheduler(num_workers, cost_model=cost_model,
                                       charge_overhead=charge_overhead)

    # ------------------------------------------------------------------
    def simulate(self, graph: TaskGraph, start_time: float = 0.0
                 ) -> ScheduleResult:
        """Timing-only pass: schedule the graph, execute nothing."""
        return self.scheduler.run(graph, start_time=start_time,
                                  execute_actions=False)

    @abc.abstractmethod
    def run(self, graph: TaskGraph, start_time: float = 0.0
            ) -> ExecutionResult:
        """Schedule the graph and execute its task actions."""

    def execute(self, graph: TaskGraph) -> ExecutionResult:
        """Execute the graph's actions without re-deriving its simulated
        timeline (``result.schedule`` is ``None``); measured wall
        intervals are still recorded.  Subclasses must implement this to
        participate in the unified runtime's wall clock."""
        raise NotImplementedError(f"backend {self.name!r} cannot execute "
                                  f"without a schedule")

    def close(self) -> None:
        """Release any real resources (worker threads); idempotent."""

    def describe(self) -> str:
        return f"{self.name}({self.num_workers} workers)"

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SimulatedBackend(ExecutionBackend):
    """The discrete-event backend: schedule, then replay actions serially.

    Action replay is the scheduler's own (launch order, the same order
    :meth:`ScheduleResult.order_started` reports), so there is exactly
    one replay code path and the trace and numerical side effects can
    never disagree.
    """

    name = "simulated"
    executes_real = False

    def run(self, graph: TaskGraph, start_time: float = 0.0
            ) -> ExecutionResult:
        maybe_verify_graph(graph)  # opt-in REPRO_VERIFY_GRAPHS=1 assertion
        schedule = self.scheduler.run(graph, start_time=start_time,
                                      execute_actions=True)
        # wall_time stays 0.0: nothing executed concurrently, so there
        # is no measured span (the field's contract for pure simulation).
        return ExecutionResult(schedule=schedule, backend=self.name,
                               executed_real=False,
                               values=dict(schedule.values),
                               kinds={t.name: t.kind for t in graph.tasks})

    def execute(self, graph: TaskGraph) -> ExecutionResult:
        """Serial measured replay (the ``list`` scheduler's ``wall`` clock).

        Actions run back-to-back in the scheduler's launch order on the
        calling thread, each with a measured wall interval on worker 0.
        Nothing overlaps by construction — this is the serialised
        baseline the threaded scheduler's measured overlap is compared
        against.  The extra list schedule derives the launch order only;
        its timing is discarded (``result.schedule`` stays ``None``).
        """
        graph.validate()
        maybe_verify_graph(graph)  # opt-in REPRO_VERIFY_GRAPHS=1 assertion
        order = self.simulate(graph).order_started()
        tasks = {t.name: t for t in graph.tasks}
        intervals: Dict[str, WallInterval] = {}
        values: Dict[str, object] = {}
        t0 = time.perf_counter()  # repro-lint: allow[wall-clock] measured serial intervals, reported not fingerprinted
        for name in order:
            action = tasks[name].action
            began = time.perf_counter() - t0  # repro-lint: allow[wall-clock] measured serial intervals, reported not fingerprinted
            value = action() if action is not None else None
            ended = time.perf_counter() - t0  # repro-lint: allow[wall-clock] measured serial intervals, reported not fingerprinted
            intervals[name] = WallInterval(start=began, end=ended, worker=0)
            values[name] = value
        wall_time = (max(i.end for i in intervals.values())
                     - min(i.start for i in intervals.values())
                     if intervals else 0.0)
        return ExecutionResult(backend=self.name, executed_real=False,
                               wall_time=wall_time, wall_intervals=intervals,
                               values=values,
                               kinds={t.name: t.kind for t in graph.tasks})


def make_backend(name: str, num_workers: int,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 charge_overhead: bool = True,
                 max_threads: Optional[int] = None,
                 pace: float = 1.0) -> ExecutionBackend:
    """Build an execution backend from its registry name.

    ``max_threads`` caps the *real* thread count of the threaded backend
    (the simulated worker count stays ``num_workers`` so timing results
    are unaffected); it defaults to ``num_workers`` capped by the
    ``REPRO_MAX_WORKERS`` environment override.  ``pace`` is the threaded
    backend's wall-clock pacing factor (see
    :class:`~repro.runtime.async_exec.ThreadedBackend`).
    """
    key = name.strip().lower()
    if key == "simulated":
        return SimulatedBackend(num_workers, cost_model=cost_model,
                                charge_overhead=charge_overhead)
    if key == "threaded":
        from repro.runtime.async_exec import ThreadedBackend
        return ThreadedBackend(num_workers, cost_model=cost_model,
                               charge_overhead=charge_overhead,
                               max_threads=max_threads, pace=pace)
    raise ValueError(f"unknown execution backend {name!r}; "
                     f"known backends: {', '.join(BACKEND_NAMES)}")
