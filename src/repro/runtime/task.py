"""Task descriptions for the data-flow runtime."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Optional


class TaskKind(enum.Enum):
    """Classification of a task, used for trace accounting.

    The paper's Table 3 splits execution time into *useful* work (solver
    kernels), *runtime* work (task creation/scheduling) and *idle* time
    (load imbalance).  Recovery tasks are tracked separately so we can
    also report how much time recovery itself takes.
    """

    COMPUTE = "compute"        # solver kernels: spmv, axpy, dot blocks
    REDUCTION = "reduction"    # scalar tasks (alpha, beta, epsilon)
    RECOVERY = "recovery"      # r1/r2/r3 recovery tasks
    CHECKPOINT = "checkpoint"  # checkpoint write / rollback read
    COMMUNICATION = "comm"     # halo exchange / MPI reduction legs


@dataclass
class Task:
    """One schedulable unit of work.

    Attributes
    ----------
    name:
        Unique name within its graph (e.g. ``"q[3]"``).
    duration:
        Time the task occupies a worker, excluding runtime overhead.
    kind:
        Category used in trace accounting.
    priority:
        Larger runs earlier among ready tasks.  The paper schedules
        recovery tasks "with a lower priority as to start all reduction
        tasks first" (Section 3.3.2); we reproduce that with priorities.
    action:
        Optional callable executed (in dependency order) when the
        schedule is replayed numerically.  The runtime itself never
        inspects the return value.
    page:
        Page index the task works on, if it is a per-page task.
    reads / writes:
        Declared resource access, for the structural happens-before
        check (:func:`repro.runtime.graph.verify_graph`).  Resources are
        opaque strings — vector segments (``"seg:g[2]"``), scalars
        (``"scalar:alpha"``), reduction partials (``"part:rho[0]"``) —
        and two tasks touching the same resource with at least one write
        must be ordered by a dependency path.  A declared ``page`` also
        counts as a write on ``"page:<n>"``.  Tasks that declare nothing
        are exempt (e.g. read-only recovery probes that may deliberately
        overlap the reduction).
    """

    name: str
    duration: float
    kind: TaskKind = TaskKind.COMPUTE
    priority: int = 0
    action: Optional[Callable[[], None]] = None
    page: Optional[int] = None
    deps: List[str] = field(default_factory=list)
    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"task {self.name!r} has negative duration")
        self.reads = frozenset(self.reads)
        self.writes = frozenset(self.writes)

    def resources_written(self) -> FrozenSet[str]:
        """Declared writes plus the implicit write on the task's page."""
        if self.page is None:
            return self.writes
        return self.writes | {f"page:{self.page}"}

    def depends_on(self, *names: str) -> "Task":
        """Add dependencies and return self (builder style)."""
        for name in names:
            if name not in self.deps:
                self.deps.append(name)
        return self


@dataclass(frozen=True)
class ScheduledTask:
    """Placement of a task produced by the scheduler."""

    name: str
    worker: int
    start: float
    end: float
    kind: TaskKind
    overhead: float = 0.0
    #: Launch sequence number assigned by the scheduler.  Tasks that start
    #: at the same simulated time are ordered by ``seq`` everywhere (trace,
    #: action replay), so the two views can never disagree.
    seq: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start
