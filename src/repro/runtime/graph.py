"""Task graphs: tasks plus data-flow dependencies."""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional

from repro.runtime.task import Task, TaskKind


class TaskGraph:
    """A DAG of :class:`~repro.runtime.task.Task` objects.

    Dependencies are stored by task name.  The graph validates that all
    referenced tasks exist and that no cycle is present before it is
    scheduled.
    """

    def __init__(self) -> None:
        self._tasks: Dict[str, Task] = {}

    # ------------------------------------------------------------------
    def add(self, task: Task) -> Task:
        """Insert a task; names must be unique within the graph."""
        if task.name in self._tasks:
            raise ValueError(f"duplicate task name {task.name!r}")
        self._tasks[task.name] = task
        return task

    def add_task(self, name: str, duration: float, *,
                 kind: TaskKind = TaskKind.COMPUTE, priority: int = 0,
                 deps: Iterable[str] = (), action=None,
                 page: Optional[int] = None) -> Task:
        """Convenience constructor + insert."""
        task = Task(name=name, duration=duration, kind=kind,
                    priority=priority, action=action, page=page,
                    deps=list(deps))
        return self.add(task)

    def task(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise KeyError(f"no task named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    @property
    def tasks(self) -> List[Task]:
        """All tasks in insertion order."""
        return list(self._tasks.values())

    def predecessors(self, name: str) -> List[str]:
        return list(self.task(name).deps)

    def successors(self, name: str) -> List[str]:
        return [t.name for t in self._tasks.values() if name in t.deps]

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check that all dependencies exist and the graph is acyclic."""
        for task in self._tasks.values():
            for dep in task.deps:
                if dep not in self._tasks:
                    raise ValueError(
                        f"task {task.name!r} depends on unknown task {dep!r}")
        self.topological_order()  # raises on cycles

    def topological_order(self) -> List[str]:
        """Kahn topological order; raises ``ValueError`` on a cycle."""
        indegree = {name: 0 for name in self._tasks}
        for task in self._tasks.values():
            for dep in task.deps:
                if dep in indegree:
                    indegree[task.name] += 1
        ready = deque(sorted(n for n, d in indegree.items() if d == 0))
        order: List[str] = []
        succ: Dict[str, List[str]] = {name: [] for name in self._tasks}
        for task in self._tasks.values():
            for dep in task.deps:
                succ[dep].append(task.name)
        while ready:
            name = ready.popleft()
            order.append(name)
            for nxt in succ[name]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(self._tasks):
            remaining = sorted(set(self._tasks) - set(order))
            raise ValueError(f"task graph has a cycle involving {remaining[:5]}")
        return order

    # ------------------------------------------------------------------
    def critical_path_length(self) -> float:
        """Length of the longest dependency chain (infinite workers)."""
        finish: Dict[str, float] = {}
        for name in self.topological_order():
            task = self._tasks[name]
            start = max((finish[d] for d in task.deps if d in finish), default=0.0)
            finish[name] = start + task.duration
        return max(finish.values(), default=0.0)

    def total_work(self) -> float:
        """Sum of all task durations (one-worker lower bound)."""
        return sum(t.duration for t in self._tasks.values())

    def merge(self, other: "TaskGraph", link_from: Iterable[str] = (),
              link_to: Iterable[str] = ()) -> None:
        """Append ``other``'s tasks, optionally adding cross-graph edges.

        Every task named in ``link_to`` (from ``other``) gains a
        dependency on every task named in ``link_from`` (from ``self``).
        Used to chain per-iteration graphs when simulating several
        iterations as a single schedule.
        """
        for task in other.tasks:
            self.add(task)
        link_from = list(link_from)
        for name in link_to:
            self.task(name).depends_on(*link_from)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskGraph(tasks={len(self._tasks)})"
