"""Task graphs: tasks plus data-flow dependencies.

Besides construction and scheduling helpers, this module hosts the
structural happens-before verifier (:func:`verify_graph`): every pair of
tasks whose declared resource sets conflict (write/write or read/write
on the same page or vector segment) must be ordered by a dependency
path, otherwise the schedule is free to race them.  Set
``REPRO_VERIFY_GRAPHS=1`` to run the check inside both execution
backends on every executed graph.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.runtime.task import Task, TaskKind

#: Opt-in switch for the runtime happens-before assertion.
VERIFY_GRAPHS_ENV = "REPRO_VERIFY_GRAPHS"


class TaskGraph:
    """A DAG of :class:`~repro.runtime.task.Task` objects.

    Dependencies are stored by task name.  The graph validates that all
    referenced tasks exist and that no cycle is present before it is
    scheduled.
    """

    def __init__(self) -> None:
        self._tasks: Dict[str, Task] = {}

    # ------------------------------------------------------------------
    def add(self, task: Task) -> Task:
        """Insert a task; names must be unique within the graph."""
        if task.name in self._tasks:
            raise ValueError(f"duplicate task name {task.name!r}")
        self._tasks[task.name] = task
        return task

    def add_task(self, name: str, duration: float, *,
                 kind: TaskKind = TaskKind.COMPUTE, priority: int = 0,
                 deps: Iterable[str] = (), action=None,
                 page: Optional[int] = None,
                 reads: Iterable[str] = (),
                 writes: Iterable[str] = ()) -> Task:
        """Convenience constructor + insert."""
        task = Task(name=name, duration=duration, kind=kind,
                    priority=priority, action=action, page=page,
                    deps=list(deps), reads=frozenset(reads),
                    writes=frozenset(writes))
        return self.add(task)

    def task(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise KeyError(f"no task named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    @property
    def tasks(self) -> List[Task]:
        """All tasks in insertion order."""
        return list(self._tasks.values())

    def predecessors(self, name: str) -> List[str]:
        return list(self.task(name).deps)

    def successors(self, name: str) -> List[str]:
        return [t.name for t in self._tasks.values() if name in t.deps]

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check that all dependencies exist and the graph is acyclic."""
        for task in self._tasks.values():
            for dep in task.deps:
                if dep not in self._tasks:
                    raise ValueError(
                        f"task {task.name!r} depends on unknown task {dep!r}")
        self.topological_order()  # raises on cycles

    def topological_order(self) -> List[str]:
        """Kahn topological order; raises ``ValueError`` on a cycle."""
        indegree = {name: 0 for name in self._tasks}
        for task in self._tasks.values():
            for dep in task.deps:
                if dep in indegree:
                    indegree[task.name] += 1
        ready = deque(sorted(n for n, d in indegree.items() if d == 0))
        order: List[str] = []
        succ: Dict[str, List[str]] = {name: [] for name in self._tasks}
        for task in self._tasks.values():
            for dep in task.deps:
                succ[dep].append(task.name)
        while ready:
            name = ready.popleft()
            order.append(name)
            for nxt in succ[name]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(self._tasks):
            remaining = sorted(set(self._tasks) - set(order))
            raise ValueError(f"task graph has a cycle involving {remaining[:5]}")
        return order

    # ------------------------------------------------------------------
    def critical_path_length(self) -> float:
        """Length of the longest dependency chain (infinite workers)."""
        finish: Dict[str, float] = {}
        for name in self.topological_order():
            task = self._tasks[name]
            start = max((finish[d] for d in task.deps if d in finish), default=0.0)
            finish[name] = start + task.duration
        return max(finish.values(), default=0.0)

    def total_work(self) -> float:
        """Sum of all task durations (one-worker lower bound)."""
        return sum(t.duration for t in self._tasks.values())

    def merge(self, other: "TaskGraph", link_from: Iterable[str] = (),
              link_to: Iterable[str] = ()) -> None:
        """Append ``other``'s tasks, optionally adding cross-graph edges.

        Every task named in ``link_to`` (from ``other``) gains a
        dependency on every task named in ``link_from`` (from ``self``).
        Used to chain per-iteration graphs when simulating several
        iterations as a single schedule.
        """
        for task in other.tasks:
            self.add(task)
        link_from = list(link_from)
        for name in link_to:
            self.task(name).depends_on(*link_from)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskGraph(tasks={len(self._tasks)})"


# ----------------------------------------------------------------------
# structural happens-before verification
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class GraphRace:
    """An unordered conflicting pair found by :func:`find_races`."""

    task_a: str
    task_b: str
    resource: str
    access: str  # "write/write" or "read/write"

    def __str__(self) -> str:
        return (f"{self.access} conflict on {self.resource!r} between "
                f"{self.task_a!r} and {self.task_b!r} with no dependency path")


class GraphRaceError(ValueError):
    """Raised by :func:`verify_graph` when conflicting tasks are unordered."""

    def __init__(self, races: List[GraphRace]) -> None:
        self.races = list(races)
        head = "; ".join(str(r) for r in self.races[:3])
        more = f" (+{len(self.races) - 3} more)" if len(self.races) > 3 else ""
        super().__init__(
            f"task graph has {len(self.races)} unordered conflicting "
            f"pair(s): {head}{more}")


def find_races(graph: TaskGraph) -> List[GraphRace]:
    """All conflicting task pairs not ordered by a dependency path.

    Two tasks conflict when they touch the same declared resource (see
    :class:`~repro.runtime.task.Task`) and at least one writes it.  The
    check is *structural*: it inspects the DAG only, so it is
    scheduler-independent — if a pair is unordered here, some interleaving
    of some backend can race it, even if today's schedules happen not to.
    Tasks that declare no resources (and no page) are exempt; AFEIR's
    read-only recovery probes deliberately overlap the reduction.
    """
    graph.validate()
    order = graph.topological_order()
    index = {name: i for i, name in enumerate(order)}
    # ancestor bitsets: anc[i] has bit j set iff task j precedes task i
    anc: List[int] = [0] * len(order)
    for name in order:
        i = index[name]
        mask = 0
        for dep in graph.task(name).deps:
            j = index[dep]
            mask |= anc[j] | (1 << j)
        anc[i] = mask

    def ordered(a: str, b: str) -> bool:
        i, j = index[a], index[b]
        return bool(anc[i] >> j & 1) or bool(anc[j] >> i & 1)

    readers: Dict[str, List[str]] = {}
    writers: Dict[str, List[str]] = {}
    for task in graph.tasks:
        for res in task.reads:
            readers.setdefault(res, []).append(task.name)
        for res in task.resources_written():
            writers.setdefault(res, []).append(task.name)

    races: List[GraphRace] = []
    seen: set = set()

    def report(a: str, b: str, resource: str, access: str) -> None:
        a, b = sorted((a, b))
        key = (a, b, resource)
        if key not in seen:
            seen.add(key)
            races.append(GraphRace(a, b, resource, access))

    for resource, ws in writers.items():
        for i, a in enumerate(ws):
            for b in ws[i + 1:]:
                if a != b and not ordered(a, b):
                    report(a, b, resource, "write/write")
            for b in readers.get(resource, ()):
                if a != b and not ordered(a, b):
                    report(a, b, resource, "read/write")
    races.sort(key=lambda r: (r.resource, r.task_a, r.task_b))
    return races


def verify_graph(graph: TaskGraph) -> None:
    """Raise :class:`GraphRaceError` if the graph has unordered conflicts."""
    races = find_races(graph)
    if races:
        raise GraphRaceError(races)


def verification_enabled() -> bool:
    """True when ``REPRO_VERIFY_GRAPHS`` requests runtime verification."""
    return os.environ.get(VERIFY_GRAPHS_ENV, "").strip().lower() not in (
        "", "0", "false", "no")


def maybe_verify_graph(graph: TaskGraph) -> None:
    """Backend hook: verify only when the env knob is set."""
    if verification_enabled():
        verify_graph(graph)
