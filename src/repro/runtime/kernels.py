"""Kernel-engine protocol: who executes the CG's numerical kernels.

The :class:`~repro.solvers.resilient_cg.ResilientCG` iteration structure
is fixed by the paper (Figure 1), but *where* its kernels run is not:

* :class:`LocalKernelEngine` — the historical single-address-space path:
  every spmv/axpy/dot is one vectorised NumPy call on the full arrays.
* :class:`~repro.distributed.ranks.RankKernelEngine` — the rank-parallel
  path of Section 3.4: each kernel is strip-partitioned over N rank
  workers that exchange halos and tree-allreduce the dot products for
  real (shared-memory message queues standing in for MPI).

Both implement the :class:`KernelEngine` contract, and both are
*bitwise* equivalent, which is what makes the rank runtime testable
against the single-rank solver: every reduction is defined page-wise
(:func:`paged_dot`), so the result does not depend on how many ranks
contributed partial sums — the classic fixed-order reproducible
reduction used by bitwise-reproducible MPI collectives.
"""

from __future__ import annotations

import abc
from typing import Callable, Iterable, Optional, Set

import numpy as np

from repro.memory.pages import page_count


def page_partials(u: np.ndarray, v: np.ndarray, page_size: int) -> np.ndarray:
    """Per-page partial dot products of two page-aligned array slices.

    ``u`` and ``v`` must start on a page boundary; only the final page
    may be ragged.  The per-page reduction is NumPy's pairwise sum over
    exactly one page, so the partial of a page depends only on that
    page's values — never on which rank's strip the page sits in.
    """
    n = u.shape[0]
    if v.shape[0] != n:
        raise ValueError(f"length mismatch: {n} vs {v.shape[0]}")
    full = (n // page_size) * page_size
    if full:
        prod = (u[:full].reshape(-1, page_size)
                * v[:full].reshape(-1, page_size))
        parts = np.add.reduce(prod, axis=1)  # repro-lint: allow[paged-reduction] this is the page-order primitive itself
    else:
        parts = np.zeros(0, dtype=np.float64)
    if full < n:
        tail = np.add.reduce(u[full:] * v[full:])  # repro-lint: allow[paged-reduction] this is the page-order primitive itself
        parts = np.concatenate([parts, [tail]])
    return parts


def reduce_partials(parts: np.ndarray,
                    skip_pages: Iterable[int] = ()) -> float:
    """Combine per-page partials into the scalar the solver uses.

    Skipped pages (the Section 3.3.2 protocol for contributions of lost
    pages) are zeroed *before* the reduction, so skipping is exact
    rather than a subtract-after-the-fact cancellation.  The reduction
    itself is a fixed-order NumPy sum over the page axis — identical no
    matter who computed the partials.
    """
    skip = [p for p in skip_pages if 0 <= p < parts.shape[0]]
    if skip:
        parts = parts.copy()
        parts[skip] = 0.0
    return float(np.add.reduce(parts))  # repro-lint: allow[paged-reduction] fixed-order combine over the page axis, the sanctioned primitive


def paged_dot(u: np.ndarray, v: np.ndarray, page_size: int,
              skip_pages: Iterable[int] = ()) -> float:
    """Deterministic page-blocked dot product (optionally masked)."""
    return reduce_partials(page_partials(u, v, page_size), skip_pages)


class KernelEngine(abc.ABC):
    """Executes the resilient CG's per-iteration kernels.

    The solver owns the iteration structure, the simulated timeline and
    all fault bookkeeping; the engine owns *data placement and
    movement*: sparse matrix-vector products, the masked vector updates,
    the (reproducible) dot-product reductions and the dispatch of
    recovery work to whoever owns the corrupted page.
    """

    name: str = "abstract"
    #: Number of distributed ranks executing kernels (1 = single rank).
    ranks: int = 1

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def dot(self, u: np.ndarray, v: np.ndarray,
            skip_pages: Set[int] = frozenset()) -> float:
        """Masked dot product, reduced in fixed page order."""

    @abc.abstractmethod
    def spmv(self, d: np.ndarray, out: np.ndarray) -> None:
        """``out <- A d`` (rank engines exchange the halo of ``d``)."""

    @abc.abstractmethod
    def update_direction(self, d_cur: np.ndarray, z: np.ndarray,
                         beta: float, d_prev: np.ndarray) -> None:
        """``d_cur <- z + beta * d_prev`` (double-buffered d update)."""

    @abc.abstractmethod
    def axpy(self, y: np.ndarray, a: float, v: np.ndarray,
             skip_pages: Set[int] = frozenset()) -> None:
        """``y += a * v`` skipping the pages whose update is deferred."""

    @abc.abstractmethod
    def residual(self, x: np.ndarray, b: np.ndarray,
                 out: np.ndarray) -> None:
        """``out <- b - A x`` (restart/rollback resynchronisation)."""

    @abc.abstractmethod
    def run_on_owner(self, page: int, fn: Callable[[], object]) -> object:
        """Execute recovery work on the rank owning ``page``.

        Single-address-space engines just call ``fn``; the rank runtime
        ships it to the owner's worker, the paper's locality rule for
        FEIR/AFEIR block solves (the owner holds the rows of ``A`` and
        the vector strips the relation reads).
        """

    # ------------------------------------------------------------------
    def page_owner(self, page: int) -> int:
        """Rank owning memory page ``page`` (0 in a single address space)."""
        return 0

    def run_on_rank(self, rank: int, fn: Callable[[], object]) -> object:
        """Execute ``fn`` on a specific rank's worker *without* counting
        it as a recovery dispatch (probe work of the wall-clock
        re-enactment); single-address-space engines run it inline."""
        return fn()

    def halo_exchange(self, d: np.ndarray) -> object:
        """Re-enact the halo exchange of ``d`` (read-only, bitwise
        neutral); a no-op in a single address space.  The ranks
        placement really moves the halo of ``d`` over the rank channels
        so the exchange has a measurable wall interval."""
        return None

    def comm_stats(self):
        """Measured communication statistics, or ``None`` when the
        engine performs no inter-rank communication."""
        return None

    def close(self) -> None:
        """Release real resources (rank worker threads); idempotent."""

    def describe(self) -> str:
        return f"{self.name}({self.ranks} rank(s))"


class LocalKernelEngine(KernelEngine):
    """Single-address-space kernels: one NumPy call per operation.

    The dot products go through the same page-partitioned fixed-order
    reduction the rank runtime uses, so a single-rank solve and an
    N-rank solve of the same problem produce bit-identical scalars.
    """

    name = "local"
    ranks = 1

    def __init__(self, A, n: int, page_size: int):
        self.A = A
        self.n = int(n)
        self.page_size = int(page_size)
        self.num_pages = page_count(self.n, self.page_size)

    def dot(self, u: np.ndarray, v: np.ndarray,
            skip_pages: Set[int] = frozenset()) -> float:
        return paged_dot(u, v, self.page_size, skip_pages)

    def spmv(self, d: np.ndarray, out: np.ndarray) -> None:
        np.copyto(out, self.A @ d)

    def update_direction(self, d_cur: np.ndarray, z: np.ndarray,
                         beta: float, d_prev: np.ndarray) -> None:
        np.copyto(d_cur, z + beta * d_prev)

    def axpy(self, y: np.ndarray, a: float, v: np.ndarray,
             skip_pages: Set[int] = frozenset()) -> None:
        if not skip_pages:
            y += a * v
            return
        psize = self.page_size
        keep = np.ones(self.n, dtype=bool)
        for page in skip_pages:
            start = page * psize
            stop = min(start + psize, self.n)
            if start < self.n:
                keep[start:stop] = False
        y[keep] += a * v[keep]

    def residual(self, x: np.ndarray, b: np.ndarray,
                 out: np.ndarray) -> None:
        np.copyto(out, b - self.A @ x)

    def run_on_owner(self, page: int, fn: Callable[[], object]) -> object:
        return fn()


def make_kernel_engine(blocked, ranks: int = 1,
                       timeout: Optional[float] = None,
                       placement: Optional[str] = None) -> KernelEngine:
    """Build the kernel engine for a solve.

    ``placement`` is the unified runtime's placement axis: ``"local"``
    forces the single-address-space engine (and rejects ``ranks > 1``),
    ``"ranks"`` forces the rank runtime even for a single strip.  When
    ``None`` (the legacy path) the placement is inferred from ``ranks``:
    local for 1, rank-parallel otherwise.
    """
    if ranks < 1:
        raise ValueError(f"ranks must be >= 1, got {ranks}")
    if placement is None:
        placement = "ranks" if ranks > 1 else "local"
    if placement == "local":
        if ranks > 1:
            raise ValueError(
                f"placement='local' is a single address space and cannot "
                f"host ranks={ranks}; use placement='ranks'")
        return LocalKernelEngine(blocked.A, blocked.n, blocked.page_size)
    if placement != "ranks":
        raise ValueError(f"unknown placement {placement!r}; the placement "
                         f"axis takes 'local' or 'ranks'")
    from repro.distributed.ranks import RankKernelEngine
    kwargs = {} if timeout is None else {"timeout": timeout}
    return RankKernelEngine(blocked, ranks, **kwargs)
