"""Analytic cost model for solver tasks.

The simulator needs a duration for every task.  We use a classic
roofline-style model: a task that performs ``f`` flops and moves ``b``
bytes takes ``max(f / flop_rate, b / mem_bandwidth)`` seconds, plus a
fixed per-task runtime overhead representing task creation, dependency
resolution and scheduling (the "runtime" state of Table 3).

The default constants are calibrated so that a CG iteration on the
paper's matrix sizes lands in the seconds-to-minutes range the paper
reports (1 to 100 s per solve, Section 5.3) and so that the fault-free
overheads of FEIR/AFEIR versus checkpointing reproduce the ordering of
Table 2.  Absolute values are not meant to match the Xeon E5-2670; only
ratios matter for the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import PAGE_BYTES, PAGE_DOUBLES


@dataclass(frozen=True)
class CostModel:
    """Timing constants for the discrete-event runtime.

    Attributes
    ----------
    flop_rate:
        Sustained floating-point rate of one worker, flop/s.
    mem_bandwidth:
        Sustained memory bandwidth available to one worker, bytes/s.
    task_overhead:
        Runtime cost of creating + scheduling one task, seconds.
    reduction_latency:
        Extra latency of a scalar (reduction) task, seconds.
    disk_bandwidth:
        Local-disk write/read bandwidth for checkpointing, bytes/s.
    disk_latency:
        Fixed latency of a disk operation, seconds.
    network_latency:
        One-way latency of an inter-rank message, seconds.
    network_bandwidth:
        Inter-rank link bandwidth, bytes/s.
    """

    flop_rate: float = 2.0e9
    #: Dense (BLAS-3 style) kernels such as the diagonal-block factorisation
    #: used by the recovery interpolation run much closer to peak.
    dense_flop_rate: float = 16.0e9
    mem_bandwidth: float = 8.0e9
    task_overhead: float = 8.0e-6
    reduction_latency: float = 2.0e-6
    disk_bandwidth: float = 2.0e8
    disk_latency: float = 5.0e-3
    network_latency: float = 1.5e-6
    network_bandwidth: float = 5.0e9

    # ------------------------------------------------------------------
    # generic kernels
    # ------------------------------------------------------------------
    def kernel_time(self, flops: float, bytes_moved: float) -> float:
        """Roofline time for a kernel, excluding task overhead."""
        if flops < 0 or bytes_moved < 0:
            raise ValueError("flops and bytes must be non-negative")
        return max(flops / self.flop_rate, bytes_moved / self.mem_bandwidth)

    # ------------------------------------------------------------------
    # solver building blocks (durations per *page-sized block* of rows)
    # ------------------------------------------------------------------
    def spmv_block(self, nnz_block: int) -> float:
        """Sparse matrix-vector product restricted to one block of rows."""
        flops = 2.0 * nnz_block
        bytes_moved = nnz_block * (8 + 4) + PAGE_BYTES  # values+cols + output
        return self.kernel_time(flops, bytes_moved)

    def axpy_block(self, n_block: int = PAGE_DOUBLES) -> float:
        """``y <- a*x + y`` on one block."""
        flops = 2.0 * n_block
        bytes_moved = 3.0 * 8 * n_block
        return self.kernel_time(flops, bytes_moved)

    def dot_block(self, n_block: int = PAGE_DOUBLES) -> float:
        """Partial dot product on one block."""
        flops = 2.0 * n_block
        bytes_moved = 2.0 * 8 * n_block
        return self.kernel_time(flops, bytes_moved)

    def scalar_task(self) -> float:
        """A reduction/scalar task combining per-block partial results."""
        return self.reduction_latency

    def block_solve(self, block_size: int = PAGE_DOUBLES,
                    factorized: bool = False) -> float:
        """Dense solve with one diagonal block (recovery interpolation).

        If the block factorisation is already available (e.g. cached by a
        block-Jacobi preconditioner, Section 5.1), only the triangular
        solves are charged; otherwise a dense factorisation is included.
        """
        b = float(block_size)
        solve_flops = 2.0 * b * b
        factor_flops = 0.0 if factorized else (b ** 3) / 3.0
        bytes_moved = 8.0 * b * b
        return max((solve_flops + factor_flops) / self.dense_flop_rate,
                   bytes_moved / self.mem_bandwidth)

    def recovery_check(self) -> float:
        """Cost of a recovery task that finds nothing to do (bitmask scan)."""
        return 1.0e-6

    def preconditioner_block(self, block_size: int = PAGE_DOUBLES) -> float:
        """Apply a factorised block-Jacobi block (two triangular solves)."""
        b = float(block_size)
        return self.kernel_time(2.0 * b * b, 8.0 * b * b)

    # ------------------------------------------------------------------
    # checkpoint / communication
    # ------------------------------------------------------------------
    def checkpoint_write(self, num_bytes: float) -> float:
        """Write a checkpoint of ``num_bytes`` to local disk."""
        return self.disk_latency + num_bytes / self.disk_bandwidth

    def checkpoint_read(self, num_bytes: float) -> float:
        """Read a checkpoint of ``num_bytes`` back from local disk."""
        return self.disk_latency + num_bytes / self.disk_bandwidth

    def message(self, num_bytes: float) -> float:
        """Point-to-point message between two ranks."""
        return self.network_latency + num_bytes / self.network_bandwidth

    def allreduce(self, num_bytes: float, num_ranks: int) -> float:
        """Tree allreduce across ``num_ranks`` ranks."""
        if num_ranks <= 1:
            return 0.0
        import math
        stages = math.ceil(math.log2(num_ranks))
        return stages * self.message(num_bytes)

    # ------------------------------------------------------------------
    def scaled(self, **overrides) -> "CostModel":
        """Copy of the model with some constants replaced."""
        return replace(self, **overrides)


#: Cost model used by default across experiments.
DEFAULT_COST_MODEL = CostModel()
