"""Execution traces and per-state time accounting.

Table 3 of the paper reports, for FEIR and AFEIR, the *increase of time
spent per state* relative to the ideal CG, where the states are:

* **useful** — executing solver tasks,
* **runtime** — creating and scheduling tasks,
* **imbalance** (idle) — workers waiting for work.

The trace records, for each worker, the intervals occupied by tasks and
their runtime overheads over the schedule's time span; everything else
is idle time.  Traces from successive iterations can be accumulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.runtime.task import ScheduledTask, TaskKind


@dataclass
class StateBreakdown:
    """Aggregate worker-seconds per state."""

    useful: float = 0.0
    runtime: float = 0.0
    idle: float = 0.0
    recovery: float = 0.0
    checkpoint: float = 0.0
    communication: float = 0.0

    @property
    def total(self) -> float:
        return (self.useful + self.runtime + self.idle + self.recovery
                + self.checkpoint + self.communication)

    def fractions(self) -> Dict[str, float]:
        """Each state as a fraction of total worker-seconds."""
        total = self.total
        if total <= 0:
            return {k: 0.0 for k in
                    ("useful", "runtime", "idle", "recovery", "checkpoint",
                     "communication")}
        return {
            "useful": self.useful / total,
            "runtime": self.runtime / total,
            "idle": self.idle / total,
            "recovery": self.recovery / total,
            "checkpoint": self.checkpoint / total,
            "communication": self.communication / total,
        }

    def add(self, other: "StateBreakdown") -> None:
        self.useful += other.useful
        self.runtime += other.runtime
        self.idle += other.idle
        self.recovery += other.recovery
        self.checkpoint += other.checkpoint
        self.communication += other.communication

    def increase_over(self, baseline: "StateBreakdown") -> Dict[str, float]:
        """Percentage-point increase of each state share vs a baseline.

        This is the quantity reported in Table 3: how much larger the
        share of time spent idle / in the runtime / doing useful work is
        for a resilient run compared to the ideal run.
        """
        mine = self.fractions()
        base = baseline.fractions()
        return {key: 100.0 * (mine[key] - base[key]) for key in mine}


@dataclass
class ExecutionTrace:
    """Per-state accounting over one or more schedules."""

    num_workers: int
    breakdown: StateBreakdown = field(default_factory=StateBreakdown)
    wall_time: float = 0.0
    task_count: int = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_schedule(cls, scheduled: Iterable[ScheduledTask], *,
                      num_workers: int, start: float, end: float) -> "ExecutionTrace":
        """Build a trace from one schedule covering ``[start, end]``."""
        trace = cls(num_workers=num_workers)
        busy = 0.0
        breakdown = trace.breakdown
        count = 0
        for st in scheduled:
            count += 1
            work = st.duration - st.overhead
            breakdown.runtime += st.overhead
            busy += st.duration
            if st.kind is TaskKind.RECOVERY:
                breakdown.recovery += work
            elif st.kind is TaskKind.CHECKPOINT:
                breakdown.checkpoint += work
            elif st.kind is TaskKind.COMMUNICATION:
                breakdown.communication += work
            elif st.kind is TaskKind.REDUCTION:
                breakdown.useful += work
            else:
                breakdown.useful += work
        span = max(end - start, 0.0)
        breakdown.idle += max(num_workers * span - busy, 0.0)
        trace.wall_time = span
        trace.task_count = count
        return trace

    # ------------------------------------------------------------------
    def accumulate(self, other: "ExecutionTrace") -> None:
        """Merge another trace (e.g. the next iteration) into this one."""
        if other.num_workers != self.num_workers:
            raise ValueError("cannot merge traces with different worker counts")
        self.breakdown.add(other.breakdown)
        self.wall_time += other.wall_time
        self.task_count += other.task_count

    def copy(self) -> "ExecutionTrace":
        out = ExecutionTrace(num_workers=self.num_workers,
                             wall_time=self.wall_time,
                             task_count=self.task_count)
        out.breakdown.add(self.breakdown)
        return out

    def utilization(self) -> float:
        """Fraction of worker-seconds spent doing anything but idling."""
        total = self.breakdown.total
        if total <= 0:
            return 0.0
        return 1.0 - self.breakdown.idle / total
