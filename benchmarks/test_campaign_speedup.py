"""Acceptance benchmark: the 200-trial parallel fault-injection campaign.

Reproduces the PR's acceptance criterion: a 200-trial campaign on an
n ~= 2000 Laplacian with FEIR recovery must

* produce byte-identical aggregated statistics between the serial and
  the process-pool executors under the same campaign seed (asserted
  unconditionally), and
* run >= 2x faster on the process pool than serially when at least 4
  physical cores are available (asserted only then — single-core CI
  boxes still verify the equivalence half).

Run directly with::

    PYTHONPATH=src python -m pytest benchmarks/test_campaign_speedup.py \
        -m bench -q -s
"""

from __future__ import annotations

import os
import time

import pytest

from repro.campaign.engine import clear_caches, run_campaign
from repro.campaign.executors import ProcessPoolExecutor, SerialExecutor
from repro.campaign.spec import CampaignSpec, SolverKnobs

#: 1 matrix x 1 method x 4 rates x 50 repetitions = 200 trials.
ACCEPTANCE_SPEC = dict(
    matrices=["laplacian2d:45"],          # n = 2025
    methods=("FEIR",),
    rates=(1.0, 2.0, 5.0, 10.0),
    repetitions=50,
    seed=20150715,
    name="acceptance-200",
)


def acceptance_spec() -> CampaignSpec:
    return CampaignSpec(knobs=SolverKnobs(tolerance=1e-8,
                                          max_iterations=4000,
                                          page_size=128),
                        **ACCEPTANCE_SPEC)


@pytest.fixture(scope="module")
def serial_run():
    clear_caches()
    spec = acceptance_spec()
    started = time.perf_counter()
    result = run_campaign(spec, executor=SerialExecutor())
    elapsed = time.perf_counter() - started
    return result, elapsed


@pytest.fixture(scope="module")
def pool_run():
    spec = acceptance_spec()
    workers = min(4, os.cpu_count() or 1)
    started = time.perf_counter()
    result = run_campaign(spec,
                          executor=ProcessPoolExecutor(max_workers=workers))
    elapsed = time.perf_counter() - started
    return result, elapsed, workers


def test_campaign_has_200_trials(serial_run):
    result, _ = serial_run
    assert len(result) == 200


def test_every_trial_converged(serial_run):
    result, _ = serial_run
    diverged = [t for t in result.trials if not t.converged]
    assert not diverged, f"{len(diverged)} FEIR trials diverged"


def test_faults_were_injected(serial_run):
    result, _ = serial_run
    assert sum(t.faults_injected for t in result.trials) > 200


def test_pool_statistics_byte_identical(serial_run, pool_run):
    serial_result, _ = serial_run
    pool_result, _, _ = pool_run
    assert pool_result.fingerprint() == serial_result.fingerprint()
    for a, b in zip(serial_result.sorted_trials(),
                    pool_result.sorted_trials(), strict=True):
        assert a.solve_time == b.solve_time
        assert a.iterations == b.iterations
        assert a.faults_injected == b.faults_injected


def test_pool_speedup_on_multicore(serial_run, pool_run):
    serial_result, serial_elapsed = serial_run
    pool_result, pool_elapsed, workers = pool_run
    speedup = serial_elapsed / max(pool_elapsed, 1e-9)
    print(f"\ncampaign wall time: serial {serial_elapsed:.2f}s, "
          f"pool({workers}) {pool_elapsed:.2f}s, speedup {speedup:.2f}x")
    if (os.cpu_count() or 1) < 4:
        pytest.skip(f"speedup criterion needs >= 4 cores, "
                    f"host has {os.cpu_count()}")
    assert speedup >= 2.0, (
        f"process pool speedup {speedup:.2f}x < 2x on {workers} workers")
