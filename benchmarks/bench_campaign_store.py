#!/usr/bin/env python
"""Campaign-store throughput benchmark: cold vs. warm, per executor.

Runs one fixed campaign through every executor twice against a fresh
store — a *cold* pass (every trial executes and persists) and a *warm*
pass (every trial is served from the content-addressed store) — and
reports trials/second for each, plus the warm/cold speedup.  The warm
fingerprint is asserted byte-identical to the cold one, so the bench
doubles as an end-to-end store-correctness check.

Emits ``BENCH_campaign.json`` (schema below); CI uploads it as an
artifact on every PR and the weekly job regenerates it at full size::

    PYTHONPATH=src python benchmarks/bench_campaign_store.py --quick
    PYTHONPATH=src python benchmarks/bench_campaign_store.py \
        --out BENCH_campaign.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.campaign.engine import clear_caches, run_campaign
from repro.campaign.executors import (ChunkedExecutor, ProcessPoolExecutor,
                                      SerialExecutor)
from repro.campaign.spec import CampaignSpec, SolverKnobs
from repro.campaign.store import (STORE_SCHEMA_VERSION, CampaignStore,
                                  clear_store_cache)

BENCH_SCHEMA = 1


def bench_spec(quick: bool) -> CampaignSpec:
    """1 matrix x 2 methods x 3 rates x reps; ~24 quick / ~120 full."""
    return CampaignSpec(
        matrices=["laplacian2d:20" if quick else "laplacian2d:45"],
        methods=("FEIR", "Lossy"),
        rates=(1.0, 5.0, 20.0),
        repetitions=4 if quick else 20,
        seed=20150715,
        knobs=SolverKnobs(tolerance=1e-8, max_iterations=4000,
                          page_size=50 if quick else 128),
        name="bench-store")


def make_executors(workers: int):
    return {
        "serial": lambda: SerialExecutor(),
        "process": lambda: ProcessPoolExecutor(max_workers=workers),
        "chunked": lambda: ChunkedExecutor(max_workers=workers,
                                           chunk_size=8),
    }


def timed_run(spec, executor, store):
    clear_caches()
    clear_store_cache()
    started = time.perf_counter()
    result = run_campaign(spec, executor=executor, store=store)
    return result, time.perf_counter() - started


def bench_executor(name, make, spec, workers) -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        root = Path(tmp) / "store"
        cold, cold_s = timed_run(spec, make(), CampaignStore(root))
        warm, warm_s = timed_run(spec, make(), CampaignStore(root))
    if warm.fingerprint() != cold.fingerprint():
        raise SystemExit(f"{name}: warm fingerprint diverged from cold — "
                         f"the store is corrupting results")
    if warm.executed != 0:
        raise SystemExit(f"{name}: warm pass executed {warm.executed} "
                         f"trials, expected 0")
    n = len(cold)
    return {
        "trials": n,
        "cold": {"seconds": round(cold_s, 4),
                 "trials_per_sec": round(n / cold_s, 2),
                 "executed": cold.executed},
        "warm": {"seconds": round(warm_s, 4),
                 "trials_per_sec": round(n / warm_s, 2),
                 "cache_hits": warm.cache_hits},
        "warm_speedup": round(cold_s / warm_s, 2),
        "fingerprint": cold.fingerprint(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark campaign throughput, cold vs. warm store.")
    parser.add_argument("--quick", action="store_true",
                        help="small grid (~24 trials; PR CI)")
    parser.add_argument("--out", default="BENCH_campaign.json",
                        metavar="FILE", help="output JSON path")
    parser.add_argument("--workers", type=int,
                        default=min(4, os.cpu_count() or 1))
    args = parser.parse_args(argv)

    spec = bench_spec(args.quick)
    payload = {
        "schema": BENCH_SCHEMA,
        "kind": "campaign-store-bench",
        "store_schema": STORE_SCHEMA_VERSION,
        "quick": args.quick,
        "campaign": spec.describe(),
        "workers": args.workers,
        "host": {"python": platform.python_version(),
                 "cpus": os.cpu_count()},
        "executors": {},
    }
    for name, make in make_executors(args.workers).items():
        payload["executors"][name] = bench_executor(name, make, spec,
                                                    args.workers)
        cold = payload["executors"][name]["cold"]["trials_per_sec"]
        warm = payload["executors"][name]["warm"]["trials_per_sec"]
        print(f"{name:8s} cold {cold:9.2f} trials/s   "
              f"warm {warm:9.2f} trials/s   "
              f"x{payload['executors'][name]['warm_speedup']}")

    fingerprints = {e["fingerprint"]
                    for e in payload["executors"].values()}
    if len(fingerprints) != 1:
        raise SystemExit("executors disagree on the campaign fingerprint")
    payload["fingerprint"] = fingerprints.pop()

    Path(args.out).write_text(json.dumps(payload, indent=2,
                                         sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
