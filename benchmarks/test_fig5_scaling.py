"""Benchmark regenerating Figure 5: MPI+OmpSs scaling of the resilient CGs."""

import os

from repro.experiments.fig5 import PAPER_FIG5_1024, format_fig5, run_fig5

FULL = os.environ.get("REPRO_FULL", "0") == "1"


def test_fig5_scaling(benchmark):
    kwargs = dict(core_counts=(64, 128, 256, 512, 1024), error_counts=(1, 2),
                  calibration_points=24 if FULL else 16,
                  target_points=512)
    result = benchmark.pedantic(run_fig5, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(format_fig5(result))

    # The ideal CG keeps a healthy parallel efficiency at 1024 cores
    # (paper: 80.17%).
    eff = result.model.ideal_parallel_efficiency(1024)
    assert 0.5 < eff <= 1.0

    for errors in (1, 2):
        feir = result.speedup("FEIR", 1024, errors)
        afeir = result.speedup("AFEIR", 1024, errors)
        lossy = result.speedup("Lossy", 1024, errors)
        ckpt = result.speedup("ckpt", 1024, errors)
        trivial = result.speedup("Trivial", 1024, errors)
        ideal = result.speedup("Ideal", 1024, 0)
        # Paper shape: exact recoveries track the ideal CG, Lossy trails
        # them, checkpointing sits well below.
        assert feir > ckpt
        assert afeir > ckpt
        assert feir > 0.5 * ideal
        assert ckpt < ideal
        # Speedups grow with the core count for the exact recoveries.
        assert result.speedup("FEIR", 1024, errors) > \
            result.speedup("FEIR", 64, errors)
    # Reference table exists for side-by-side comparison in EXPERIMENTS.md.
    assert PAPER_FIG5_1024[("AFEIR", 1)] == 10.01
