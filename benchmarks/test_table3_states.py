"""Benchmark regenerating Table 3: per-state time increase of FEIR/AFEIR."""

from repro.experiments.table3 import format_table3, run_table3


def test_table3_state_breakdown(benchmark, bench_config):
    result = benchmark.pedantic(run_table3, args=(bench_config,),
                                rounds=1, iterations=1)
    print()
    print(format_table3(result))

    feir = result.increases["FEIR"]
    afeir = result.increases["AFEIR"]
    # Paper shape: placing the recovery tasks in the critical path makes
    # FEIR's load imbalance grow much more than AFEIR's, while both pay a
    # comparable runtime (task-management) overhead.
    assert feir["imbalance"] > afeir["imbalance"]
    assert feir["runtime"] > 0.0
    assert afeir["runtime"] > 0.0
    assert afeir["imbalance"] >= 0.0
