"""Benchmark regenerating Figure 4: slowdown versus normalised error rate."""

from repro.experiments.fig4 import format_fig4, format_fig4_per_matrix, run_fig4


def test_fig4_error_rate_sweep(benchmark, bench_config, bench_rates):
    result = benchmark.pedantic(
        run_fig4, kwargs=dict(config=bench_config, rates=bench_rates),
        rounds=1, iterations=1)
    print()
    print(format_fig4(result))
    print()
    print(format_fig4_per_matrix(result))

    lowest = min(bench_rates)
    highest = max(bench_rates)
    summary = result.summary

    # Paper shape at the lowest rate: exact forward recovery is the cheapest,
    # AFEIR below FEIR, both far below checkpointing.
    assert summary[("AFEIR", lowest)] <= summary[("FEIR", lowest)] + 1.0
    assert summary[("FEIR", lowest)] < summary[("ckpt", lowest)]
    assert summary[("FEIR", lowest)] < 25.0

    # At every rate the exact recoveries beat checkpointing and the trivial
    # method; the trivial method blows up at high rates.
    for rate in bench_rates:
        assert summary[("FEIR", rate)] < summary[("ckpt", rate)]
        assert summary[("AFEIR", rate)] < summary[("ckpt", rate)]
        assert summary[("FEIR", rate)] < summary[("Trivial", rate)]
    assert summary[("Trivial", highest)] > 100.0

    # Slowdowns grow (weakly) with the error rate for the exact recoveries.
    assert summary[("FEIR", highest)] >= summary[("FEIR", lowest)] - 1.0
