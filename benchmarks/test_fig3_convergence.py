"""Benchmark regenerating Figure 3: convergence with a single error in x."""

from repro.experiments.fig3 import format_fig3, run_fig3


def test_fig3_single_error_convergence(benchmark, bench_config):
    result = benchmark.pedantic(
        run_fig3, kwargs=dict(config=bench_config, matrix="thermal2",
                              inject_fraction=0.4, page=3),
        rounds=1, iterations=1)
    print()
    print(format_fig3(result))

    times = result.final_times
    ideal = times["Ideal"]
    # Exact forward recovery continues with (nearly) the ideal convergence.
    assert times["FEIR"] <= 1.25 * ideal
    assert times["AFEIR"] <= 1.25 * ideal
    assert times["AFEIR"] <= times["FEIR"] * 1.05
    # The restart/rollback methods pay for the lost Krylov subspace.
    assert times["Lossy"] > times["AFEIR"]
    assert times["ckpt"] > times["AFEIR"]
    # Every method still reaches the convergence threshold.
    for method, history in result.histories.items():
        assert history.final_residual <= 1e-8, method
