"""Ablation benchmarks for the design choices called out in DESIGN.md.

Not a paper table/figure, but the knobs the paper discusses qualitatively:

* FEIR (critical path) versus AFEIR (overlapped) fault-free cost,
* direct diagonal-block solve versus least-squares interpolation,
* cached (block-Jacobi) factors versus factorising at recovery time,
* checkpoint interval sensitivity.
"""

import numpy as np

from repro.core.interpolation import (exact_block_interpolation,
                                      least_squares_interpolation)
from repro.core.manager import make_strategy
from repro.matrices.blocked import PageBlockedMatrix
from repro.matrices.stencil import poisson_2d_5pt, stencil_rhs
from repro.runtime.cost_model import DEFAULT_COST_MODEL
from repro.solvers.resilient_cg import ResilientCG, SolverConfig


def _problem():
    A = poisson_2d_5pt(48)
    b = stencil_rhs(A, kind="random", seed=3)
    return A, b


def test_ablation_recovery_task_placement(benchmark):
    """Fault-free cost of recovery tasks in vs. out of the critical path."""
    A, b = _problem()
    cfg = SolverConfig(num_workers=8, page_size=128, tolerance=1e-9)

    def run_all():
        out = {}
        out["ideal"] = ResilientCG(A, b, config=cfg).solve().solve_time
        for name in ("FEIR", "AFEIR"):
            out[name] = ResilientCG(A, b, strategy=make_strategy(name),
                                    config=cfg).solve().solve_time
        return out

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    feir = 100.0 * (times["FEIR"] - times["ideal"]) / times["ideal"]
    afeir = 100.0 * (times["AFEIR"] - times["ideal"]) / times["ideal"]
    print(f"\nAblation (task placement): FEIR {feir:.2f}% vs AFEIR {afeir:.2f}%")
    assert afeir < feir


def test_ablation_direct_vs_least_squares(benchmark):
    """Both interpolations are exact; the direct solve is cheaper."""
    A = poisson_2d_5pt(32)
    blocked = PageBlockedMatrix(A, page_size=128)
    rng = np.random.default_rng(0)
    p = rng.standard_normal(A.shape[0])
    q = A @ p
    damaged = p.copy()
    damaged[blocked.block_slice(3)] = 0.0

    def run_both():
        direct = exact_block_interpolation(blocked, 3, q, damaged)
        lsq = least_squares_interpolation(blocked, 3, q, damaged)
        return direct, lsq

    direct, lsq = benchmark.pedantic(run_both, rounds=3, iterations=1)
    truth = p[blocked.block_slice(3)]
    assert np.allclose(direct, truth, atol=1e-8)
    assert np.allclose(lsq, truth, atol=1e-6)
    # Modelled cost: the direct solve on a cached factorisation is far
    # cheaper than a factorisation from scratch (the paper's argument for
    # pairing the recovery with a block-Jacobi preconditioner).
    cm = DEFAULT_COST_MODEL
    assert cm.block_solve(512, factorized=True) < \
        0.2 * cm.block_solve(512, factorized=False)


def test_ablation_checkpoint_interval(benchmark):
    """Fault-free checkpointing cost grows as the interval shrinks."""
    A, b = _problem()
    cfg = SolverConfig(num_workers=8, page_size=128, tolerance=1e-9)

    def run_intervals():
        ideal = ResilientCG(A, b, config=cfg).solve().solve_time
        out = {"ideal": ideal}
        for interval in (400, 100, 25):
            strat = make_strategy("ckpt", checkpoint_interval=interval)
            out[interval] = ResilientCG(A, b, strategy=strat,
                                        config=cfg).solve().solve_time
        return out

    times = benchmark.pedantic(run_intervals, rounds=1, iterations=1)
    print("\nAblation (checkpoint interval): " +
          ", ".join(f"every {k}: {100 * (v - times['ideal']) / times['ideal']:.1f}%"
                    for k, v in times.items() if k != "ideal"))
    assert times[25] > times[100] >= times[400] >= times["ideal"]
