"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
and prints the corresponding rows/series.  Set ``REPRO_FULL=1`` to run
the full-size sweeps (all matrices, all rates, more repetitions); the
default configuration is scaled down so the whole harness completes in a
few minutes on a laptop.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import ExperimentConfig

FULL = os.environ.get("REPRO_FULL", "0") == "1"


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ as ``bench`` (and ``slow``).

    Tier-1 (`pytest` with the default addopts) deselects these markers;
    the weekly CI job opts back in with ``-m "bench or slow"``.
    """
    for item in items:
        item.add_marker(pytest.mark.bench)
        item.add_marker(pytest.mark.slow)

#: Matrices used by the scaled-down default benchmark runs.
QUICK_MATRICES = ("qa8fm", "Dubcova3", "consph", "thermomech")
#: Error rates used by the scaled-down Figure 4 sweep.
QUICK_RATES = (1.0, 10.0, 50.0)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Experiment configuration shared by the benchmark harness."""
    if FULL:
        return ExperimentConfig(repetitions=2, max_iterations=20000)
    return ExperimentConfig(matrices=QUICK_MATRICES, repetitions=1,
                            max_iterations=6000, tolerance=1e-9)


@pytest.fixture(scope="session")
def bench_rates():
    from repro.faults.scenarios import PAPER_ERROR_RATES
    return PAPER_ERROR_RATES if FULL else QUICK_RATES
