"""Benchmark regenerating Table 2: fault-free overheads of every method."""

from repro.experiments.table2 import PAPER_TABLE2, format_table2, run_table2


def test_table2_overheads(benchmark, bench_config):
    result = benchmark.pedantic(run_table2, args=(bench_config,),
                                rounds=1, iterations=1)
    print()
    print(format_table2(result))

    overheads = result.overheads
    # Paper shape: the handler-only methods are free, AFEIR is cheaper than
    # FEIR, and checkpointing dominates everything, more so at the higher
    # checkpoint frequency.
    assert overheads["Lossy"] == 0.0
    assert overheads["Trivial"] == 0.0
    assert overheads["AFEIR"] < overheads["FEIR"]
    assert overheads["FEIR"] < overheads["ckpt-1000"]
    assert overheads["ckpt-1000"] < overheads["ckpt-200"]
    # FEIR's fault-free cost stays in the single-digit-percent range
    # (paper: 2.73%).
    assert overheads["FEIR"] < 10.0
    assert set(PAPER_TABLE2) == set(overheads)
