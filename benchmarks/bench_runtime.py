#!/usr/bin/env python
"""Runtime-cell benchmark: per-iteration solver wall time per cell.

Solves one fixed resilient-CG problem in every interesting
(scheduler x placement x clock) cell of the unified runtime
(:mod:`repro.runtime.runtime`) and reports the real wall seconds per
iteration of each, plus the rank-scaling efficiency of the ranks
placement (1-rank time / (N x N-rank time)).  Every cell's iterates are
asserted bit-identical to the reference cell, so the bench doubles as
an end-to-end invariant check.

Each cell is also re-run with the concurrency sanitizer on
(``repro.sanitize``, as if ``REPRO_TSAN=1``) and the on/off wall times
land side by side in the JSON, so the sanitizer's observation cost is a
tracked number rather than folklore.  With the sanitizer *off* the
factories hand back raw stdlib primitives — the off-mode numbers here
are the plain runtime cost.

Emits ``BENCH_runtime.json``; CI uploads it as an artifact::

    PYTHONPATH=src python benchmarks/bench_runtime.py --quick
    PYTHONPATH=src python benchmarks/bench_runtime.py --out BENCH_runtime.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.core.manager import make_strategy
from repro.faults.injector import Injection
from repro.faults.scenarios import multi_error_scenario
from repro.matrices.stencil import poisson_3d_27pt, stencil_rhs
from repro.sanitize import enabled as tsan_enabled
from repro.sanitize import instrument
from repro.solvers.resilient_cg import ResilientCG, SolverConfig

BENCH_SCHEMA = 2

#: The benchmarked cells: label -> (scheduler, placement, clock, ranks).
CELLS = {
    "list/local/simulated": ("list", "local", "simulated", 1),
    "list/local/wall": ("list", "local", "wall", 1),
    "threaded/local/wall": ("threaded", "local", "wall", 1),
    "list/ranks2/simulated": ("list", "ranks", "simulated", 2),
    "list/ranks4/simulated": ("list", "ranks", "simulated", 4),
    "threaded/ranks2/wall": ("threaded", "ranks", "wall", 2),
    "threaded/ranks4/wall": ("threaded", "ranks", "wall", 4),
}


def bench_problem(quick: bool):
    points = 8 if quick else 12
    A = poisson_3d_27pt(points)
    b = stencil_rhs(A, kind="random", seed=7)
    return A, b, points


def run_cell(A, b, cell, page_size: int, tolerance: float):
    scheduler, placement, clock, ranks = cell
    num_pages = max(1, A.shape[0] // page_size)
    strategy = make_strategy("AFEIR")
    scenario = multi_error_scenario(
        [Injection(time=1e-4, vector="x", page=num_pages // 2)],
        name="bench-runtime")
    cfg = SolverConfig(page_size=page_size, tolerance=tolerance,
                       record_history=False, pace=0.0,
                       scheduler=scheduler, placement=placement,
                       clock=clock, ranks=ranks)
    started = time.perf_counter()
    with ResilientCG(A, b, strategy=strategy, scenario=scenario,
                     config=cfg) as solver:
        result = solver.solve()
    elapsed = time.perf_counter() - started
    return result, elapsed


def run_cell_sanitized(A, b, cell, page_size: int, tolerance: float):
    """The same cell with the concurrency sanitizer observing."""
    with tsan_enabled(True):
        instrument.reset()
        result, elapsed = run_cell(A, b, cell, page_size, tolerance)
        events = len(instrument.LOG)
        instrument.reset()
    return result, elapsed, events


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the runtime cells' per-iteration wall time.")
    parser.add_argument("--quick", action="store_true",
                        help="smaller problem (8^3 instead of 12^3)")
    parser.add_argument("--out", default="BENCH_runtime.json",
                        metavar="FILE", help="output JSON path")
    args = parser.parse_args(argv)

    A, b, points = bench_problem(args.quick)
    page_size = 64
    tolerance = 1e-8

    payload = {
        "schema": BENCH_SCHEMA,
        "kind": "runtime-cell-bench",
        "quick": args.quick,
        "problem": {"stencil": "poisson3d27", "points": points,
                    "n": int(A.shape[0]), "page_size": page_size,
                    "tolerance": tolerance, "method": "AFEIR"},
        "host": {"python": platform.python_version(),
                 "cpus": os.cpu_count()},
        "cells": {},
    }

    reference = None
    rank_seconds = {}
    for label, cell in CELLS.items():
        result, elapsed = run_cell(A, b, cell, page_size, tolerance)
        iters = result.record.iterations
        key = (result.x.tobytes(), iters, result.record.solve_time)
        if reference is None:
            reference = key
        elif key != reference:
            raise SystemExit(f"{label}: results diverged from the reference "
                             f"cell — the runtime invariant is broken")
        tsan_result, tsan_elapsed, tsan_events = run_cell_sanitized(
            A, b, cell, page_size, tolerance)
        tsan_key = (tsan_result.x.tobytes(), tsan_result.record.iterations,
                    tsan_result.record.solve_time)
        if tsan_key != reference:
            raise SystemExit(f"{label}: sanitizer-on run diverged from the "
                             f"reference — instrumentation must observe, "
                             f"never perturb")
        scheduler, placement, clock, ranks = cell
        payload["cells"][label] = {
            "scheduler": scheduler, "placement": placement,
            "clock": clock, "ranks": ranks,
            "iterations": iters,
            "wall_seconds": round(elapsed, 4),
            "wall_seconds_per_iteration": round(elapsed / iters, 6),
            "wall_seconds_sanitizer_on": round(tsan_elapsed, 4),
            "sanitizer_overhead_pct": round(
                100.0 * (tsan_elapsed - elapsed) / elapsed, 1),
            "sanitizer_events": tsan_events,
            "measured_reenactment_seconds": round(result.wall_clock, 4),
            "halo_overlapped_recoveries": (result.window_summary or {}).get(
                "halo_overlapped_recoveries", 0),
        }
        if placement == "ranks" and clock == "simulated":
            rank_seconds[ranks] = elapsed
        print(f"{label:24s} {elapsed:7.3f} s   "
              f"{1e3 * elapsed / iters:8.3f} ms/iter   {iters} iters   "
              f"tsan {tsan_elapsed:7.3f} s ({tsan_events} events)")

    base = run_cell(A, b, ("list", "ranks", "simulated", 1),
                    page_size, tolerance)[1]
    payload["rank_scaling"] = {
        str(r): {"seconds": round(s, 4),
                 "efficiency": round(base / (r * s), 3)}
        for r, s in sorted(rank_seconds.items())}
    for r, row in payload["rank_scaling"].items():
        print(f"ranks={r}: {row['seconds']} s, "
              f"efficiency {row['efficiency']}")

    Path(args.out).write_text(json.dumps(payload, indent=2,
                                         sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
