"""Tests for the recovery strategies through the solver-state interface."""

import numpy as np
import pytest

from repro.core.afeir import AFEIRStrategy
from repro.core.checkpoint import CheckpointStrategy, optimal_checkpoint_interval
from repro.core.feir import FEIRStrategy
from repro.core.lossy import LossyRestartStrategy
from repro.core.manager import STRATEGY_NAMES, all_strategies, make_strategy
from repro.core.relations import MatVecRelation, ResidualRelation
from repro.core.trivial import TrivialStrategy
from repro.matrices.blocked import PageBlockedMatrix
from repro.matrices.stencil import poisson_2d_5pt
from repro.memory.manager import MemoryManager
from repro.memory.pages import PagedVector
from repro.solvers.resilient_cg import CGState


def make_state(page_size=32, seed=0):
    """A consistent CG state: g = b - Ax and q = A d hold exactly."""
    A = poisson_2d_5pt(12)                       # n = 144
    blocked = PageBlockedMatrix(A, page_size=page_size)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(144)
    d = rng.standard_normal(144)
    b = A @ rng.standard_normal(144)
    memory = MemoryManager()
    vectors = {
        "x": memory.register(PagedVector(x, name="x", page_size=page_size)),
        "g": memory.register(PagedVector(b - A @ x, name="g", page_size=page_size)),
        "d0": memory.register(PagedVector(d, name="d0", page_size=page_size)),
        "d1": memory.register(PagedVector(rng.standard_normal(144), name="d1",
                                          page_size=page_size)),
        "q": memory.register(PagedVector(A @ d, name="q", page_size=page_size)),
    }
    state = CGState(blocked=blocked, b=b, vectors=vectors, memory=memory,
                    residual_relation=ResidualRelation(blocked, b),
                    matvec_relation=MatVecRelation(blocked),
                    preconditioner=None, current_d_name="d0",
                    previous_d_name="d1")
    return state, A


def lose(state, vector, page):
    """Simulate a detected DUE: the page is re-mapped blank."""
    state.memory.poison(vector, page, time=0.0)
    state.memory.touch(vector, page, time=0.0)
    return (vector, page)


class TestStrategyFactory:
    def test_all_names(self):
        assert set(STRATEGY_NAMES) == {"AFEIR", "FEIR", "Lossy", "ckpt", "Trivial"}
        strategies = all_strategies()
        assert set(strategies) == set(STRATEGY_NAMES)

    @pytest.mark.parametrize("name,cls", [
        ("FEIR", FEIRStrategy), ("afeir", AFEIRStrategy),
        ("lossy", LossyRestartStrategy), ("checkpoint", CheckpointStrategy),
        ("Trivial", TrivialStrategy)])
    def test_factory_dispatch(self, name, cls):
        assert isinstance(make_strategy(name), cls)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            make_strategy("magic")

    def test_scheduling_flags(self):
        assert FEIRStrategy().recovery_in_critical_path
        assert not AFEIRStrategy().recovery_in_critical_path
        assert AFEIRStrategy().uses_recovery_tasks
        assert not LossyRestartStrategy().uses_recovery_tasks
        assert CheckpointStrategy(interval=10).uses_checkpoints

    def test_describe(self):
        desc = FEIRStrategy().describe()
        assert desc["name"] == "FEIR"
        assert desc["recovery_in_critical_path"] is True


class TestFEIRExactRecovery:
    @pytest.mark.parametrize("vector", ["x", "g", "d0", "q"])
    def test_single_page_recovered_exactly(self, vector):
        state, A = make_state()
        original = state.vectors[vector].array.copy()
        lost = [lose(state, vector, 2)]
        outcome = FEIRStrategy().handle_lost_pages(state, lost, iteration=1)
        assert outcome.recovered == [(vector, 2)]
        assert not outcome.restart_required
        np.testing.assert_allclose(state.vectors[vector].array, original,
                                   rtol=1e-7, atol=1e-9)
        assert not state.memory.has_faults()

    def test_multiple_pages_same_vector(self):
        state, A = make_state()
        original = state.vectors["x"].array.copy()
        lost = [lose(state, "x", 0), lose(state, "x", 3)]
        FEIRStrategy().handle_lost_pages(state, lost, iteration=1)
        np.testing.assert_allclose(state.vectors["x"].array, original,
                                   rtol=1e-7, atol=1e-9)

    def test_losses_in_different_vectors(self):
        state, A = make_state()
        originals = {v: state.vectors[v].array.copy() for v in ("x", "g", "q")}
        lost = [lose(state, "x", 1), lose(state, "g", 2), lose(state, "q", 0)]
        FEIRStrategy().handle_lost_pages(state, lost, iteration=1)
        for vector, original in originals.items():
            np.testing.assert_allclose(state.vectors[vector].array, original,
                                       rtol=1e-7, atol=1e-9)

    def test_xg_conflict_preserves_residual_invariant(self):
        state, A = make_state()
        lost = [lose(state, "x", 1), lose(state, "g", 1)]
        outcome = FEIRStrategy().handle_lost_pages(state, lost, iteration=1)
        assert ("x", 1) in outcome.unrecoverable
        x = state.vectors["x"].array
        g = state.vectors["g"].array
        np.testing.assert_allclose(g, state.b - A @ x, atol=1e-9)

    def test_dq_conflict_preserves_matvec_invariant(self):
        state, A = make_state()
        lost = [lose(state, "d0", 2), lose(state, "q", 2)]
        outcome = FEIRStrategy().handle_lost_pages(state, lost, iteration=1)
        assert ("d0", 2) in outcome.unrecoverable
        d = state.vectors["d0"].array
        q = state.vectors["q"].array
        np.testing.assert_allclose(q, A @ d, atol=1e-9)

    def test_stale_buffer_is_blanked(self):
        state, A = make_state()
        lost = [lose(state, "d1", 0)]
        outcome = FEIRStrategy().handle_lost_pages(state, lost, iteration=1)
        assert ("d1", 0) in outcome.recovered
        assert np.all(state.vectors["d1"].page(0) == 0.0)

    def test_recovery_reports_work_time(self):
        state, A = make_state()
        lost = [lose(state, "x", 1)]
        outcome = FEIRStrategy().handle_lost_pages(state, lost, iteration=1)
        assert outcome.work_time > 0

    def test_empty_loss_list_is_noop(self):
        state, A = make_state()
        outcome = AFEIRStrategy().handle_lost_pages(state, [], iteration=1)
        assert outcome.recovered == [] and outcome.work_time == 0.0


class TestLossyStrategy:
    def test_x_loss_interpolates_and_requests_restart(self):
        state, A = make_state()
        lost = [lose(state, "x", 2)]
        outcome = LossyRestartStrategy().handle_lost_pages(state, lost, 1)
        assert outcome.restart_required
        assert ("x", 2) in outcome.recovered
        # The interpolated block zeroes the block residual (Theorem 3 proof).
        residual = state.b - A @ state.vectors["x"].array
        sl = state.blocked.block_slice(2)
        np.testing.assert_allclose(residual[sl], 0.0, atol=1e-9)

    def test_non_x_loss_blanks_and_restarts(self):
        state, A = make_state()
        lost = [lose(state, "q", 1)]
        outcome = LossyRestartStrategy().handle_lost_pages(state, lost, 1)
        assert outcome.restart_required
        assert np.all(state.vectors["q"].page(1) == 0.0)


class TestTrivialStrategy:
    def test_pages_blanked_and_marked(self):
        state, A = make_state()
        lost = [lose(state, "g", 0), lose(state, "x", 3)]
        outcome = TrivialStrategy().handle_lost_pages(state, lost, 1)
        assert set(outcome.unrecoverable) == {("g", 0), ("x", 3)}
        assert np.all(state.vectors["g"].page(0) == 0.0)
        assert not state.memory.has_faults()


class TestCheckpointStrategy:
    def test_optimal_interval_formula(self):
        # sqrt(2 * C * MTBE) / t_iter
        assert optimal_checkpoint_interval(mtbe=50.0, checkpoint_cost=1.0,
                                           iteration_time=0.1) == 100
        assert optimal_checkpoint_interval(float("inf"), 1.0, 0.1) == 10 ** 9

    def test_optimal_interval_validation(self):
        with pytest.raises(ValueError):
            optimal_checkpoint_interval(10.0, -1.0, 0.1)
        with pytest.raises(ValueError):
            optimal_checkpoint_interval(10.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            optimal_checkpoint_interval(-1.0, 1.0, 0.1)

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            CheckpointStrategy(interval=0)

    def test_should_checkpoint_requires_interval(self):
        with pytest.raises(RuntimeError):
            CheckpointStrategy().should_checkpoint(5)

    def test_should_checkpoint_period(self):
        strat = CheckpointStrategy(interval=10)
        assert not strat.should_checkpoint(0)
        assert not strat.should_checkpoint(9)
        assert strat.should_checkpoint(10)
        assert strat.should_checkpoint(20)

    def test_rollback_restores_checkpointed_state(self):
        state, A = make_state()
        strat = CheckpointStrategy(interval=5)
        strat.on_solve_start(state)
        saved_x = state.vectors["x"].array.copy()
        saved_d = state.vectors["d0"].array.copy()
        # The solver keeps iterating and the iterate drifts...
        state.vectors["x"].array[:] += 1.0
        state.vectors["d0"].array[:] -= 2.0
        lost = [lose(state, "x", 1)]
        outcome = strat.handle_lost_pages(state, lost, iteration=3)
        assert outcome.rolled_back and outcome.restart_required
        np.testing.assert_allclose(state.vectors["x"].array, saved_x)
        np.testing.assert_allclose(state.vectors["d0"].array, saved_d)
        assert outcome.work_time > 0

    def test_rollback_without_checkpoint_raises(self):
        state, A = make_state()
        strat = CheckpointStrategy(interval=5)
        with pytest.raises(RuntimeError):
            strat.handle_lost_pages(state, [lose(state, "x", 0)], 1)

    def test_configure_interval_from_error_rate(self):
        strat = CheckpointStrategy()
        interval = strat.configure_interval(mtbe=10.0, iteration_time=1e-3,
                                            checkpoint_bytes=1e6)
        assert interval >= 1
        assert strat.interval == interval
