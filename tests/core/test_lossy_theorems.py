"""Property-based validation of the Lossy interpolation theorems (Section 4.3).

* Theorem 2 (Agullo et al.): for SPD A, the block-Jacobi interpolation
  does not increase the A-norm of the error.
* Theorem 3 (this paper): the interpolation *minimises* the A-norm of
  the error over all possible values of the lost block.
* Fixed-point property: if the iterate already equals the solution, the
  interpolation leaves it unchanged.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lossy import a_norm, interpolation_error_norm, lossy_interpolate
from repro.matrices.blocked import PageBlockedMatrix
from repro.matrices.random_spd import random_sparse_spd
from repro.matrices.stencil import poisson_2d_5pt


def make_problem(seed, n_grid=10, page_size=20):
    A = poisson_2d_5pt(n_grid)
    blocked = PageBlockedMatrix(A, page_size=page_size)
    rng = np.random.default_rng(seed)
    x_star = rng.standard_normal(A.shape[0])
    b = A @ x_star
    x_iterate = x_star + 0.3 * rng.standard_normal(A.shape[0])
    return A, blocked, b, x_star, x_iterate


class TestTheorem2Contraction:
    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=40, deadline=None)
    def test_interpolation_does_not_increase_a_norm(self, seed):
        A, blocked, b, x_star, x_iter = make_problem(seed)
        page = seed % blocked.num_blocks
        damaged = x_iter.copy()
        damaged[blocked.block_slice(page)] = 0.0
        before, after = interpolation_error_norm(A, blocked, b, x_star,
                                                 x_iter, [page])
        # "before" is the error of the undamaged iterate per Theorem 2.
        assert after <= before + 1e-9 * max(before, 1.0)

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=15, deadline=None)
    def test_holds_on_random_spd(self, seed):
        A = random_sparse_spd(160, density=0.06, seed=seed)
        blocked = PageBlockedMatrix(A, page_size=40)
        rng = np.random.default_rng(seed + 9)
        x_star = rng.standard_normal(160)
        b = A @ x_star
        x_iter = x_star + rng.standard_normal(160)
        page = seed % blocked.num_blocks
        before, after = interpolation_error_norm(A, blocked, b, x_star,
                                                 x_iter, [page])
        assert after <= before + 1e-9 * max(before, 1.0)


class TestTheorem3Optimality:
    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=25, deadline=None)
    def test_interpolation_minimises_a_norm_over_lost_block(self, seed):
        """No other replacement of the lost block beats the interpolation."""
        A, blocked, b, x_star, x_iter = make_problem(seed)
        page = seed % blocked.num_blocks
        sl = blocked.block_slice(page)
        x_interp = lossy_interpolate(blocked, b, x_iter, [page])
        optimal = a_norm(A, x_star - x_interp)
        rng = np.random.default_rng(seed + 123)
        for _ in range(5):
            candidate = x_interp.copy()
            candidate[sl] = x_interp[sl] + rng.standard_normal(sl.stop - sl.start)
            assert a_norm(A, x_star - candidate) >= optimal - 1e-9

    def test_gradient_condition_at_interpolant(self):
        """At the optimum the residual restricted to the lost block is zero."""
        A, blocked, b, x_star, x_iter = make_problem(7)
        page = 1
        x_interp = lossy_interpolate(blocked, b, x_iter, [page])
        residual = b - A @ x_interp
        np.testing.assert_allclose(residual[blocked.block_slice(page)], 0.0,
                                   atol=1e-9)


class TestFixedPointAndEdgeCases:
    def test_fixed_point_property(self):
        A, blocked, b, x_star, _ = make_problem(3)
        interpolated = lossy_interpolate(blocked, b, x_star, [2])
        np.testing.assert_allclose(interpolated, x_star, atol=1e-9)

    def test_no_pages_returns_copy(self):
        A, blocked, b, _, x_iter = make_problem(4)
        out = lossy_interpolate(blocked, b, x_iter, [])
        assert out is not x_iter
        np.testing.assert_array_equal(out, x_iter)

    def test_multiple_lost_pages(self):
        A, blocked, b, x_star, x_iter = make_problem(5)
        pages = [0, 3]
        before = a_norm(A, x_star - x_iter)
        out = lossy_interpolate(blocked, b, x_iter, pages)
        assert a_norm(A, x_star - out) <= before + 1e-9

    def test_lost_contents_do_not_matter(self):
        """The interpolation ignores whatever garbage the lost page holds."""
        A, blocked, b, _, x_iter = make_problem(6)
        damaged_zero = x_iter.copy()
        damaged_garbage = x_iter.copy()
        sl = blocked.block_slice(1)
        damaged_zero[sl] = 0.0
        damaged_garbage[sl] = 1e30
        out_zero = lossy_interpolate(blocked, b, damaged_zero, [1])
        out_garbage = lossy_interpolate(blocked, b, damaged_garbage, [1])
        np.testing.assert_allclose(out_zero, out_garbage, atol=1e-9)

    def test_a_norm_nonnegative(self):
        A = poisson_2d_5pt(5)
        assert a_norm(A, np.zeros(25)) == 0.0
        assert a_norm(A, np.ones(25)) > 0.0
