"""Tests for the Table 1 block redundancy relations."""

import numpy as np
import pytest

from repro.core.relations import (HessenbergRelation, LinearCombinationRelation,
                                  MatVecRelation, ResidualRelation)
from repro.matrices.blocked import PageBlockedMatrix
from repro.matrices.stencil import poisson_2d_5pt


@pytest.fixture(scope="module")
def system():
    A = poisson_2d_5pt(16)               # n = 256
    blocked = PageBlockedMatrix(A, page_size=64)
    rng = np.random.default_rng(42)
    x = rng.standard_normal(256)
    b = A @ rng.standard_normal(256)
    return A, blocked, b, x


class TestMatVecRelation:
    def test_recover_lhs_page(self, system):
        A, blocked, _, p = system
        q = A @ p
        rel = MatVecRelation(blocked)
        for page in range(blocked.num_blocks):
            sl = blocked.block_slice(page)
            np.testing.assert_allclose(rel.recover_lhs_page(page, p), q[sl],
                                       atol=1e-12)

    def test_recover_rhs_page_is_exact(self, system):
        A, blocked, _, p = system
        q = A @ p
        rel = MatVecRelation(blocked)
        damaged = p.copy()
        damaged[blocked.block_slice(2)] = 0.0     # page contents are gone
        recovered = rel.recover_rhs_page(2, q, damaged)
        np.testing.assert_allclose(recovered, p[blocked.block_slice(2)],
                                   atol=1e-9)


class TestLinearCombinationRelation:
    def test_all_three_directions(self):
        rng = np.random.default_rng(1)
        v, w = rng.standard_normal(64), rng.standard_normal(64)
        rel = LinearCombinationRelation(alpha=0.7, beta=-1.3)
        u = 0.7 * v - 1.3 * w
        np.testing.assert_allclose(rel.recover_lhs_page(v, w), u, atol=1e-13)
        np.testing.assert_allclose(rel.recover_w_page(u, v), w, atol=1e-12)
        np.testing.assert_allclose(rel.recover_v_page(u, w), v, atol=1e-12)

    def test_zero_coefficients_rejected(self):
        rel = LinearCombinationRelation(alpha=0.0, beta=0.0)
        with pytest.raises(ZeroDivisionError):
            rel.recover_w_page(np.zeros(4), np.zeros(4))
        with pytest.raises(ZeroDivisionError):
            rel.recover_v_page(np.zeros(4), np.zeros(4))


class TestResidualRelation:
    def test_recover_residual_page(self, system):
        A, blocked, b, x = system
        g = b - A @ x
        rel = ResidualRelation(blocked, b)
        for page in range(blocked.num_blocks):
            sl = blocked.block_slice(page)
            np.testing.assert_allclose(rel.recover_residual_page(page, x),
                                       g[sl], atol=1e-12)

    def test_recover_iterate_page_is_exact(self, system):
        A, blocked, b, x = system
        g = b - A @ x
        rel = ResidualRelation(blocked, b)
        damaged = x.copy()
        damaged[blocked.block_slice(1)] = 0.0
        recovered = rel.recover_iterate_page(1, g, damaged)
        np.testing.assert_allclose(recovered, x[blocked.block_slice(1)],
                                   atol=1e-9)

    def test_recover_multiple_iterate_pages_coupled(self, system):
        A, blocked, b, x = system
        g = b - A @ x
        rel = ResidualRelation(blocked, b)
        damaged = x.copy()
        for page in (0, 3):
            damaged[blocked.block_slice(page)] = 0.0
        values = rel.recover_iterate_pages_coupled([0, 3], g, damaged)
        expected = np.concatenate([x[blocked.block_slice(0)],
                                   x[blocked.block_slice(3)]])
        np.testing.assert_allclose(values, expected, atol=1e-9)

    def test_coupled_requires_pages(self, system):
        _, blocked, b, x = system
        rel = ResidualRelation(blocked, b)
        with pytest.raises(ValueError):
            rel.recover_iterate_pages_coupled([], x, x)


class TestHessenbergRelation:
    def test_recover_arnoldi_vector(self, system):
        A, blocked, b, _ = system
        n = A.shape[0]
        m = 6
        V = np.zeros((n, m + 1))
        H = np.zeros((m + 1, m))
        V[:, 0] = b / np.linalg.norm(b)
        for k in range(m):
            w = A @ V[:, k]
            for i in range(k + 1):
                H[i, k] = w @ V[:, i]
                w -= H[i, k] * V[:, i]
            H[k + 1, k] = np.linalg.norm(w)
            V[:, k + 1] = w / H[k + 1, k]
        rel = HessenbergRelation(blocked)
        for l in range(1, m + 1):
            recovered = rel.recover_basis_vector(l, V, H)
            np.testing.assert_allclose(recovered, V[:, l], atol=1e-9)

    def test_v0_not_recoverable(self, system):
        _, blocked, _, _ = system
        rel = HessenbergRelation(blocked)
        with pytest.raises(ValueError):
            rel.recover_basis_vector(0, np.zeros((4, 2)), np.zeros((2, 1)))

    def test_breakdown_detected(self, system):
        _, blocked, _, _ = system
        rel = HessenbergRelation(blocked)
        H = np.zeros((3, 2))
        with pytest.raises(ZeroDivisionError):
            rel.recover_basis_vector(1, np.zeros((blocked.n, 3)), H)

    def test_requires_operator(self):
        rel = HessenbergRelation(None)
        H = np.ones((2, 1))
        with pytest.raises(ValueError):
            rel.recover_basis_vector(1, np.zeros((4, 2)), H)
