"""Property-based tests for the exact forward interpolation.

The paper's central numerical claim (Section 2.3): when the diagonal
block is non-singular, the interpolation recovers "the exact same data
as was lost ... up to rounding errors".  We verify it on random SPD
systems and random lost pages.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interpolation import (coupled_block_interpolation,
                                      exact_block_interpolation,
                                      least_squares_interpolation,
                                      scatter_coupled_solution)
from repro.matrices.blocked import PageBlockedMatrix
from repro.matrices.random_spd import random_sparse_spd
from repro.matrices.stencil import poisson_2d_5pt


def make_case(seed, n_grid=12, page_size=24):
    A = poisson_2d_5pt(n_grid)
    blocked = PageBlockedMatrix(A, page_size=page_size)
    rng = np.random.default_rng(seed)
    p = rng.standard_normal(A.shape[0])
    return blocked, p, A @ p


class TestExactInterpolation:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_recovery_is_exact_for_any_page(self, seed):
        blocked, p, q = make_case(seed)
        page = seed % blocked.num_blocks
        damaged = p.copy()
        damaged[blocked.block_slice(page)] = np.nan   # contents truly gone
        damaged[blocked.block_slice(page)] = 0.0
        recovered = exact_block_interpolation(blocked, page, q, damaged)
        np.testing.assert_allclose(recovered, p[blocked.block_slice(page)],
                                   rtol=1e-8, atol=1e-10)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_spd_matrices(self, seed):
        A = random_sparse_spd(180, density=0.05, seed=seed)
        blocked = PageBlockedMatrix(A, page_size=45)
        rng = np.random.default_rng(seed + 1)
        p = rng.standard_normal(180)
        q = A @ p
        page = seed % blocked.num_blocks
        damaged = p.copy()
        damaged[blocked.block_slice(page)] = 0.0
        recovered = exact_block_interpolation(blocked, page, q, damaged)
        np.testing.assert_allclose(recovered, p[blocked.block_slice(page)],
                                   rtol=1e-6, atol=1e-8)

    def test_least_squares_matches_direct_solve(self):
        blocked, p, q = make_case(7)
        damaged = p.copy()
        damaged[blocked.block_slice(1)] = 0.0
        direct = exact_block_interpolation(blocked, 1, q, damaged)
        lsq = least_squares_interpolation(blocked, 1, q, damaged)
        np.testing.assert_allclose(lsq, direct, atol=1e-7)
        np.testing.assert_allclose(lsq, p[blocked.block_slice(1)], atol=1e-7)

    def test_coupled_interpolation_two_pages(self):
        blocked, p, q = make_case(3)
        pages = [0, 2]
        damaged = p.copy()
        for page in pages:
            damaged[blocked.block_slice(page)] = 0.0
        values = coupled_block_interpolation(blocked, pages, q, damaged)
        out = damaged.copy()
        scatter_coupled_solution(blocked, pages, values, out)
        np.testing.assert_allclose(out, p, rtol=1e-8, atol=1e-9)

    def test_coupled_interpolation_adjacent_pages(self):
        """Adjacent pages couple strongly in a stencil matrix; the 2x2 block
        system of Section 2.4 must still recover them exactly."""
        blocked, p, q = make_case(11)
        pages = [1, 2]
        damaged = p.copy()
        for page in pages:
            damaged[blocked.block_slice(page)] = 0.0
        values = coupled_block_interpolation(blocked, pages, q, damaged)
        out = damaged.copy()
        scatter_coupled_solution(blocked, pages, values, out)
        np.testing.assert_allclose(out, p, rtol=1e-8, atol=1e-9)

    def test_coupled_validation(self):
        blocked, p, q = make_case(0)
        with pytest.raises(ValueError):
            coupled_block_interpolation(blocked, [], q, p)
        with pytest.raises(ValueError):
            scatter_coupled_solution(blocked, [0], np.zeros(3), p.copy())

    def test_single_page_coupled_equals_exact(self):
        blocked, p, q = make_case(5)
        damaged = p.copy()
        damaged[blocked.block_slice(3)] = 0.0
        single = exact_block_interpolation(blocked, 3, q, damaged)
        coupled = coupled_block_interpolation(blocked, [3], q, damaged)
        np.testing.assert_allclose(single, coupled, atol=1e-10)
