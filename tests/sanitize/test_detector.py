"""Unit tests of the hybrid race detector over synthetic event streams."""

from __future__ import annotations

import pytest

from repro.sanitize.detector import analyze_events
from repro.sanitize.events import (Event, OP_ACCESS, OP_ACQUIRE, OP_GET,
                                   OP_PUT, OP_RELEASE, OP_SET, OP_WAIT_EVENT)
from repro.sanitize.stale import StaleReadAllowlist


def _ev(seq, thread, op, obj, **kw):
    return Event(seq=seq, thread=thread, op=op, obj=obj, **kw)


def _access(seq, thread, resource, *, write, held=(), task=None):
    return _ev(seq, thread, OP_ACCESS, resource, write=write, held=held,
               stack=(f"fake.py:{seq} in t{seq}",), task=task)


EMPTY = StaleReadAllowlist()


class TestHappensBefore:
    def test_unordered_cross_thread_writes_race(self):
        report = analyze_events([
            _access(1, "a", "r", write=True),
            _access(2, "b", "r", write=True),
        ], allowlist=EMPTY)
        assert len(report.races) == 1
        assert report.races[0].access == "write/write"
        assert report.races[0].resource == "r"

    def test_lock_release_acquire_orders(self):
        report = analyze_events([
            _ev(1, "a", OP_ACQUIRE, "L", held=("L",)),
            _access(2, "a", "r", write=True, held=("L",)),
            _ev(3, "a", OP_RELEASE, "L", held=("L",)),
            _ev(4, "b", OP_ACQUIRE, "L", held=("L",)),
            # second access outside the lock: ordered purely by the edge
            _ev(5, "b", OP_RELEASE, "L", held=("L",)),
            _access(6, "b", "r", write=True),
        ], allowlist=EMPTY)
        assert report.ok
        assert report.lockset_protected == 0

    def test_queue_put_get_pairs_by_token(self):
        report = analyze_events([
            _access(1, "a", "r", write=True),
            _ev(2, "a", OP_PUT, "q"),            # token is the put's seq
            _ev(3, "b", OP_GET, "q", token=2),
            _access(4, "b", "r", write=True),
        ], allowlist=EMPTY)
        assert report.ok

    def test_get_with_foreign_token_does_not_order(self):
        report = analyze_events([
            _access(1, "a", "r", write=True),
            _ev(2, "a", OP_PUT, "q"),
            _ev(3, "b", OP_GET, "q", token=999),   # some other put
            _access(4, "b", "r", write=True),
        ], allowlist=EMPTY)
        assert len(report.races) == 1

    def test_event_set_wait_orders(self):
        report = analyze_events([
            _access(1, "a", "r", write=True),
            _ev(2, "a", OP_SET, "e"),
            _ev(3, "b", OP_WAIT_EVENT, "e"),
            _access(4, "b", "r", write=True),
        ], allowlist=EMPTY)
        assert report.ok

    def test_read_read_never_conflicts(self):
        report = analyze_events([
            _access(1, "a", "r", write=False),
            _access(2, "b", "r", write=False),
        ], allowlist=EMPTY)
        assert report.ok

    def test_write_read_conflicts(self):
        report = analyze_events([
            _access(1, "a", "r", write=True),
            _access(2, "b", "r", write=False),
        ], allowlist=EMPTY)
        assert len(report.races) == 1
        assert report.races[0].access == "write/read"

    def test_same_thread_never_races(self):
        report = analyze_events([
            _access(1, "a", "r", write=True),
            _access(2, "a", "r", write=True),
        ], allowlist=EMPTY)
        assert report.ok

    def test_duplicate_race_sites_dedup(self):
        # the same pair of source locations racing repeatedly is one report
        events = []
        seq = 0
        for _ in range(5):
            seq += 1
            events.append(Event(seq=seq, thread="a", op=OP_ACCESS, obj="r",
                                write=True, stack=("f.py:1 in bump",)))
            seq += 1
            events.append(Event(seq=seq, thread="b", op=OP_ACCESS, obj="r",
                                write=True, stack=("f.py:1 in bump",)))
        report = analyze_events(events, allowlist=EMPTY)
        assert len(report.races) == 1


class TestLocksetFallback:
    def test_common_lockset_demotes_to_protected(self):
        # both sides hold L but no acquire/release events were recorded
        # (an uninstrumented channel) -> Eraser fallback, not a race
        report = analyze_events([
            _access(1, "a", "r", write=True, held=("L",)),
            _access(2, "b", "r", write=True, held=("L",)),
        ], allowlist=EMPTY)
        assert report.ok
        assert report.lockset_protected == 1

    def test_disjoint_locksets_still_race(self):
        report = analyze_events([
            _access(1, "a", "r", write=True, held=("L1",)),
            _access(2, "b", "r", write=True, held=("L2",)),
        ], allowlist=EMPTY)
        assert len(report.races) == 1


class TestStaleAllowlist:
    def _allow(self, resource, bound=2):
        allowlist = StaleReadAllowlist()
        allowlist.allow(resource, bound=bound,
                        reason="bounded staleness for the test")
        return allowlist

    def test_allowance_sanctions_write_read_pair(self):
        report = analyze_events([
            _access(1, "a", "page:3", write=True),
            _access(2, "b", "page:3", write=False),
        ], allowlist=self._allow("page:3"))
        assert report.ok
        assert len(report.sanctioned) == 1
        assert report.sanctioned[0].allowance.bound == 2

    def test_allowance_never_sanctions_write_write(self):
        report = analyze_events([
            _access(1, "a", "page:3", write=True),
            _access(2, "b", "page:3", write=True),
        ], allowlist=self._allow("page:3"))
        assert len(report.races) == 1
        assert not report.sanctioned

    def test_prefix_pattern_matches(self):
        report = analyze_events([
            _access(1, "a", "page:7", write=True),
            _access(2, "b", "page:7", write=False),
        ], allowlist=self._allow("page:*"))
        assert report.ok
        assert len(report.sanctioned) == 1

    def test_exact_match_wins_over_pattern(self):
        allowlist = StaleReadAllowlist()
        allowlist.allow("page:*", bound=1, reason="broad")
        allowlist.allow("page:7", bound=9, reason="specific")
        assert allowlist.lookup("page:7").bound == 9
        assert allowlist.lookup("page:3").bound == 1

    def test_allow_requires_reason_and_positive_bound(self):
        allowlist = StaleReadAllowlist()
        with pytest.raises(ValueError):
            allowlist.allow("r", bound=0, reason="x")
        with pytest.raises(ValueError):
            allowlist.allow("r", bound=1, reason="")


class TestReportRendering:
    def test_race_report_carries_both_stacks_and_locks(self):
        report = analyze_events([
            _access(1, "thread-a", "r", write=True, held=("La",),
                    task="task-1"),
            _access(2, "thread-b", "r", write=True, held=("Lb",)),
        ], allowlist=EMPTY)
        text = report.races[0].describe()
        assert "thread-a" in text and "thread-b" in text
        assert "La" in text and "Lb" in text
        assert "fake.py:1" in text and "fake.py:2" in text
        assert "task-1" in text

    def test_summary_counts(self):
        report = analyze_events([
            _access(1, "a", "r", write=True),
            _access(2, "b", "r", write=True),
        ], allowlist=EMPTY)
        summary = report.summary()
        assert summary["races"] == 1
        assert summary["accesses"] == 2
        assert summary["threads"] == 2
        assert summary["ok"] is False
