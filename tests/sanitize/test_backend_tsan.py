"""The sanitizer against the real threaded backend.

Three properties the ISSUE pins:

* a clean solve under ``REPRO_TSAN=1`` records accesses (the bridge is
  live) and reports **zero** races;
* bit-identity holds with the sanitizer on — instrumentation observes,
  it never changes what the solver computes;
* a dropped-lock mutation in the worker dispatch (no-op page locks) is
  **caught**: the same workload that is silent with real page locks
  produces a race report without them.
"""

from __future__ import annotations

import threading

import pytest

from repro.runtime.async_exec import ThreadedBackend
from repro.runtime.graph import TaskGraph
from repro.sanitize import analyze, enabled, instrument
from repro.sanitize.explore import (ExploreProblem, _solve_cell,
                                    reference_token, solution_token)


@pytest.fixture()
def tsan():
    with enabled(True):
        instrument.reset()
        yield
        instrument.reset()


def _two_same_page_tasks(graph_action_a, graph_action_b):
    graph = TaskGraph()
    graph.add_task("a", 0.0, page=0, action=graph_action_a)
    graph.add_task("b", 0.0, page=0, action=graph_action_b)
    return graph


class _NoOpPageLocks:
    """The dropped-lock mutation: worker dispatch skips page locking."""

    def holding(self, page):
        import contextlib
        return contextlib.nullcontext()


class TestDroppedLockMutation:
    def test_mutated_dispatch_is_flagged(self, tsan):
        backend = ThreadedBackend(num_workers=2, max_threads=2, pace=0.0)
        backend.page_locks = _NoOpPageLocks()
        # Force genuine overlap: each action blocks until both tasks are
        # in flight — only possible because the page lock is gone.
        barrier = threading.Barrier(2)
        graph = _two_same_page_tasks(lambda: barrier.wait(timeout=10.0),
                                     lambda: barrier.wait(timeout=10.0))
        try:
            backend.execute(graph)
        finally:
            backend.close()
        report = analyze()
        assert not report.ok, "dropped page lock went undetected"
        assert any(r.resource == "page:0" for r in report.races), \
            report.render()

    def test_intact_dispatch_is_silent(self, tsan):
        backend = ThreadedBackend(num_workers=2, max_threads=2, pace=0.0)
        graph = _two_same_page_tasks(None, None)
        try:
            backend.execute(graph)
        finally:
            backend.close()
        report = analyze()
        assert report.ok, report.render()
        assert report.accesses >= 2  # both page:0 writes were bridged


class TestCleanSolveUnderTsan:
    def test_threaded_solve_zero_races_and_bit_identical(self):
        problem = ExploreProblem(points=12, page_size=32)
        ref = reference_token(problem)
        with enabled(True):
            instrument.reset()
            result = _solve_cell(problem, "threaded", "local", "wall", 1)
            report = analyze()
            instrument.reset()
        assert report.accesses > 0, "access bridge recorded nothing"
        assert report.ok, report.render()
        assert solution_token(result) == ref

    @pytest.mark.ranks
    def test_ranks_solve_zero_races_and_bit_identical(self):
        problem = ExploreProblem(points=12, page_size=32)
        ref = reference_token(problem)
        with enabled(True):
            instrument.reset()
            result = _solve_cell(problem, "threaded", "ranks", "wall", 2)
            report = analyze()
            instrument.reset()
        assert report.ok, report.render()
        assert solution_token(result) == ref


class TestOffModeNeutrality:
    def test_tsan_unset_backend_uses_raw_primitives(self, monkeypatch):
        monkeypatch.delenv(instrument.TSAN_ENV, raising=False)
        backend = ThreadedBackend(num_workers=2, max_threads=2, pace=0.0)
        try:
            assert isinstance(backend._cond, threading.Condition)
            assert type(backend._run_lock) is type(threading.Lock())
            lock = backend.page_locks.lock_for(0)
            assert type(lock) is type(threading.Lock())
        finally:
            backend.close()

    def test_tsan_unset_solve_matches_reference(self, monkeypatch):
        monkeypatch.delenv(instrument.TSAN_ENV, raising=False)
        problem = ExploreProblem(points=12, page_size=32)
        ref = reference_token(problem)
        result = _solve_cell(problem, "threaded", "local", "wall", 1)
        assert solution_token(result) == ref
        assert len(instrument.LOG) == 0
