"""Factory contract: raw primitives off, recording wrappers on."""

from __future__ import annotations

import queue
import threading

from repro.sanitize import instrument
from repro.sanitize.canary import run_counter_canary, run_locked_control
from repro.sanitize.instrument import (TSAN_ENV, TSanCondition, TSanEvent,
                                       TSanLock, TSanQueue, enabled,
                                       held_locks, make_condition,
                                       make_event, make_lock, make_queue,
                                       make_rlock, sanitizer_enabled)


class TestOffMode:
    """REPRO_TSAN unset: the factories hand back the raw stdlib objects
    (zero steady-state overhead — no wrapper indirection at all)."""

    def test_factories_return_raw_primitives(self, monkeypatch):
        monkeypatch.delenv(TSAN_ENV, raising=False)
        with enabled(False):
            assert type(make_lock("x")) is type(threading.Lock())
            assert type(make_rlock("x")) is type(threading.RLock())
            assert isinstance(make_condition(name="x"), threading.Condition)
            assert isinstance(make_event("x"), threading.Event)
            assert type(make_queue("x")) is queue.Queue

    def test_condition_over_raw_lock(self):
        with enabled(False):
            lock = make_rlock("x")
            cond = make_condition(lock, name="y")
            assert cond._lock is lock  # threading.Condition internals

    def test_no_events_recorded_when_off(self, monkeypatch):
        monkeypatch.delenv(TSAN_ENV, raising=False)
        with enabled(False):
            instrument.reset()
            lock = make_lock("x")
            with lock:
                pass
            q = make_queue("q")
            q.put(1)
            assert q.get() == 1
            assert len(instrument.LOG) == 0
            instrument.record_access("r", write=True)
            assert len(instrument.LOG) == 0

    def test_env_values_parse(self, monkeypatch):
        for raw, expect in (("", False), ("0", False), ("false", False),
                            ("no", False), ("1", True), ("yes", True),
                            ("on", True)):
            monkeypatch.setenv(TSAN_ENV, raw)
            assert sanitizer_enabled() is expect, raw
        monkeypatch.delenv(TSAN_ENV)
        assert sanitizer_enabled() is False


class TestOnMode:
    def test_factories_return_wrappers(self):
        with enabled(True):
            assert isinstance(make_lock("x"), TSanLock)
            assert isinstance(make_rlock("x"), TSanLock)
            assert isinstance(make_condition(name="x"), TSanCondition)
            assert isinstance(make_event("x"), TSanEvent)
            assert isinstance(make_queue("x"), TSanQueue)

    def test_enabled_context_nests_and_restores(self):
        assert not sanitizer_enabled()
        with enabled(True):
            assert sanitizer_enabled()
            with enabled(False):
                assert not sanitizer_enabled()
            assert sanitizer_enabled()
        assert not sanitizer_enabled()

    def test_lock_records_acquire_release_and_lockset(self):
        with enabled(True):
            instrument.reset()
            lock = make_lock("my-lock")
            with lock:
                assert "my-lock" in held_locks()
            assert "my-lock" not in held_locks()
            ops = [e.op for e in instrument.LOG.events()]
            assert ops == ["acquire", "release"]
            instrument.reset()

    def test_rlock_reentrancy_tracked(self):
        with enabled(True):
            instrument.reset()
            lock = make_rlock("re")
            with lock:
                with lock:
                    assert held_locks().count("re") == 1  # set semantics
                assert "re" in held_locks()   # still held after inner exit
            assert "re" not in held_locks()
            instrument.reset()

    def test_queue_tags_items_with_put_token(self):
        with enabled(True):
            instrument.reset()
            q = make_queue("chan")
            q.put("payload")
            assert q.get() == "payload"
            put, get = instrument.LOG.events()
            assert put.op == "put" and get.op == "get"
            assert get.token == put.seq
            instrument.reset()

    def test_queue_raises_empty(self):
        with enabled(True):
            instrument.reset()
            q = make_queue("chan")
            try:
                q.get_nowait()
            except queue.Empty:
                pass
            else:  # pragma: no cover - the point of the test
                raise AssertionError("expected queue.Empty")
            instrument.reset()

    def test_record_access_carries_stack_and_lockset(self):
        with enabled(True):
            instrument.reset()
            lock = make_lock("guard")
            with lock:
                instrument.record_access("res", write=True, task="t1")
            [_, access, _] = instrument.LOG.events()
            assert access.op == "access"
            assert access.write and access.obj == "res"
            assert access.held == ("guard",)
            assert access.task == "t1"
            assert access.stack  # non-empty, points at this test
            instrument.reset()

    def test_condition_wait_models_release_acquire(self):
        with enabled(True):
            instrument.reset()
            cond = make_condition(name="cv")
            done = []

            def waiter():
                with cond:
                    while not done:
                        cond.wait(timeout=1.0)

            t = threading.Thread(target=waiter, name="cv-waiter")
            t.start()
            with cond:
                done.append(True)
                cond.notify_all()
            t.join(timeout=5.0)
            assert not t.is_alive()
            ops = {e.op for e in instrument.LOG.events()}
            assert {"acquire", "release", "notify"} <= ops
            instrument.reset()


class TestCanary:
    """The deliberately unsynchronised counter the detector must flag —
    CI's proof the sanitizer is not a silent no-op."""

    def test_unsynchronised_counter_is_flagged(self):
        report = run_counter_canary(threads=4, increments=10)
        assert report.races, "detector missed the seeded race canary"
        assert any(r.resource == "canary:counter" for r in report.races)

    def test_locked_control_is_clean(self):
        report = run_locked_control(threads=4, increments=10)
        assert report.ok, report.render()
