"""Seeded schedule exploration: replayable from the seed alone."""

from __future__ import annotations

import json

import numpy as np

from repro.sanitize.__main__ import main as sanitize_main
from repro.sanitize.explore import ScheduleExplorer, explore


class TestExplorerDeterminism:
    def test_same_seed_same_verdict_byte_for_byte(self):
        kwargs = dict(scheduler="threaded", placement="local", clock="wall",
                      ranks=1, points=12, page_size=32)
        first = explore(1234, 2, **kwargs)
        second = explore(1234, 2, **kwargs)
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)
        assert first["ok"], first
        assert first["bit_identity_broken"] == []
        assert first["racy_schedules"] == []
        # every schedule really solved and stayed on the reference
        for record in first["schedules"]:
            assert record["bit_identical"]
            assert record["accesses"] > 0

    def test_different_seeds_may_differ_but_both_ok(self):
        kwargs = dict(scheduler="threaded", placement="local", clock="wall",
                      ranks=1, points=12, page_size=32)
        a = explore(1, 1, **kwargs)
        b = explore(2, 1, **kwargs)
        assert a["ok"] and b["ok"]
        # fingerprints agree because bit-identity is cell-independent
        assert a["reference_fingerprint"] == b["reference_fingerprint"]


class TestExplorerHook:
    def test_priorities_keyed_by_thread_role_name(self):
        seed = np.random.SeedSequence(entropy=7)
        one = ScheduleExplorer(seed)
        two = ScheduleExplorer(np.random.SeedSequence(entropy=7))
        # same seed, same role names -> identical priorities, regardless
        # of the order threads first touch the explorer
        one._state_for("repro-exec-0")
        one._state_for("repro-exec-1")
        two._state_for("repro-exec-1")
        two._state_for("repro-exec-0")
        assert one._priorities == two._priorities

    def test_distinct_roles_get_distinct_streams(self):
        explorer = ScheduleExplorer(np.random.SeedSequence(entropy=7))
        _, p0 = explorer._state_for("repro-exec-0")
        _, p1 = explorer._state_for("repro-exec-1")
        assert p0 != p1


class TestCli:
    def test_canary_subcommand_exits_zero(self, capsys):
        assert sanitize_main(["canary"]) == 0
        out = capsys.readouterr().out
        assert "detector alive" in out

    def test_explore_subcommand_writes_verdict(self, tmp_path, capsys):
        out_file = tmp_path / "verdict.json"
        code = sanitize_main([
            "explore", "--seed", "99", "--schedules", "1",
            "--points", "12", "--quiet", "--out", str(out_file)])
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert payload["ok"] is True
        assert payload["seed"] == 99
        assert len(payload["schedules"]) == 1
        # stdout carries the same JSON
        assert json.loads(capsys.readouterr().out) == payload
