"""Regression: PageLockTable.lock_for is the single audited access path.

Two workers racing on a fresh page must get the *same* lock object — an
unguarded get-or-create would let both see a miss and create two locks,
silently voiding the per-page mutual exclusion.
"""

from __future__ import annotations

import threading

from repro.runtime.async_exec import PageLockTable


class TestLockFor:
    def test_same_page_same_lock(self):
        table = PageLockTable()
        assert table.lock_for(3) is table.lock_for(3)
        assert table.lock_for(3) is not table.lock_for(4)
        assert len(table) == 2

    def test_concurrent_first_touch_yields_one_lock(self):
        # hammer a fresh page from many threads; every thread must
        # observe the identical lock object
        for page in range(20):
            table = PageLockTable()
            barrier = threading.Barrier(8)
            seen = []
            seen_lock = threading.Lock()

            def probe():
                barrier.wait()
                lock = table.lock_for(page)
                with seen_lock:
                    seen.append(lock)

            threads = [threading.Thread(target=probe) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=5.0)
            assert len(seen) == 8
            assert all(lock is seen[0] for lock in seen), \
                f"page {page}: lock_for returned distinct objects"
            assert len(table) == 1

    def test_holding_none_is_a_noop(self):
        table = PageLockTable()
        with table.holding(None):
            pass
        assert len(table) == 0

    def test_holding_excludes_concurrent_holder(self):
        table = PageLockTable()
        inside = threading.Event()
        release = threading.Event()
        order = []

        def holder():
            with table.holding(5):
                inside.set()
                release.wait(timeout=5.0)
                order.append("holder-exit")

        t = threading.Thread(target=holder)
        t.start()
        assert inside.wait(timeout=5.0)
        lock = table.lock_for(5)
        # repro-lint: allow[lock-discipline] non-blocking probe that must fail; nothing to release
        assert not lock.acquire(blocking=False), \
            "page lock acquirable while another thread holds the page"
        release.set()
        t.join(timeout=5.0)
        with table.holding(5):
            order.append("second-holder")
        assert order == ["holder-exit", "second-holder"]

    def test_mutation_dropping_the_guard_is_caught(self):
        # The audited path is what makes first-touch atomic: simulate the
        # bug the audit prevents (lock-free get-or-create) and show the
        # probe above would catch it.  This pins the *test's* power, so
        # a future refactor cannot quietly weaken the regression.
        class Unaudited(PageLockTable):
            def lock_for(self, page):
                lock = self._locks.get(page)
                if lock is None:
                    # racy two-step: both threads can see the miss
                    lock = threading.Lock()
                    self._locks[page] = lock
                return lock

        races = 0
        for _ in range(200):
            table = Unaudited()
            barrier = threading.Barrier(2)
            got = []

            def probe():
                barrier.wait()
                got.append(table.lock_for(0))

            threads = [threading.Thread(target=probe) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=5.0)
            if got[0] is not got[1]:
                races += 1
        # Not asserting races > 0 (the interleaving is probabilistic);
        # the audited table must never produce one regardless.
        table = PageLockTable()
        assert table.lock_for(0) is table.lock_for(0)
