"""Tests for the resilient task-decomposed CG (fault-free behaviour)."""

import numpy as np
import pytest

from repro.core.manager import make_strategy
from repro.matrices.stencil import poisson_2d_5pt, stencil_rhs
from repro.precond.block_jacobi import BlockJacobiPreconditioner
from repro.solvers.reference import conjugate_gradient
from repro.solvers.resilient_cg import ResilientCG, SolverConfig


@pytest.fixture(scope="module")
def problem():
    A = poisson_2d_5pt(32)               # n = 1024
    b = stencil_rhs(A, kind="random", seed=1)
    return A, b


def config(**overrides):
    defaults = dict(num_workers=8, page_size=128, tolerance=1e-10,
                    record_history=True)
    defaults.update(overrides)
    return SolverConfig(**defaults)


class TestIdealSolver:
    def test_converges_to_reference_solution(self, problem):
        A, b = problem
        res = ResilientCG(A, b, config=config()).solve()
        ref = conjugate_gradient(A, b)
        assert res.converged
        np.testing.assert_allclose(res.x, ref.x, atol=1e-6)

    def test_iteration_count_matches_reference(self, problem):
        A, b = problem
        res = ResilientCG(A, b, config=config()).solve()
        ref = conjugate_gradient(A, b)
        assert abs(res.record.iterations - ref.record.iterations) <= 2

    def test_simulated_time_is_positive_and_monotone(self, problem):
        A, b = problem
        res = ResilientCG(A, b, config=config()).solve()
        times = res.record.history.times
        assert times[0] == 0.0
        assert all(t2 > t1 for t1, t2 in zip(times, times[1:], strict=False))

    def test_ideal_iteration_time_consistent_with_total(self, problem):
        A, b = problem
        solver = ResilientCG(A, b, config=config())
        res = solver.solve()
        t_iter = solver.ideal_iteration_time()
        assert res.solve_time == pytest.approx(t_iter * res.record.iterations,
                                               rel=0.05)

    def test_estimate_ideal_time(self, problem):
        A, b = problem
        solver = ResilientCG(A, b, config=config())
        estimate = solver.estimate_ideal_time()
        actual = solver.solve().solve_time
        assert estimate == pytest.approx(actual, rel=0.1)

    def test_rhs_length_validation(self, problem):
        A, b = problem
        with pytest.raises(ValueError):
            ResilientCG(A, b[:-1], config=config())

    def test_zero_rhs(self, problem):
        A, _ = problem
        res = ResilientCG(A, np.zeros(A.shape[0]), config=config()).solve()
        assert res.converged and res.record.iterations == 0

    def test_initial_guess_is_used(self, problem):
        A, b = problem
        ref = conjugate_gradient(A, b)
        res = ResilientCG(A, b, config=config()).solve(x0=ref.x)
        assert res.record.iterations <= 2

    def test_more_workers_is_not_slower(self, problem):
        A, b = problem
        t2 = ResilientCG(A, b, config=config(num_workers=2)).ideal_iteration_time()
        t8 = ResilientCG(A, b, config=config(num_workers=8)).ideal_iteration_time()
        assert t8 <= t2

    def test_trace_accounts_all_iterations(self, problem):
        A, b = problem
        res = ResilientCG(A, b, config=config()).solve()
        assert res.trace.task_count > 0
        assert res.trace.breakdown.total > 0


class TestFaultFreeOverheads:
    """Table 2 behaviour: ordering of the fault-free overheads."""

    @pytest.fixture(scope="class")
    def overheads(self, problem):
        A, b = problem
        ideal = ResilientCG(A, b, config=config()).solve()
        out = {"ideal": ideal.solve_time}
        for name in ("FEIR", "AFEIR", "Lossy", "Trivial"):
            res = ResilientCG(A, b, strategy=make_strategy(name),
                              config=config()).solve()
            out[name] = res.solve_time
            assert res.converged
        ckpt = ResilientCG(A, b, strategy=make_strategy("ckpt",
                                                        checkpoint_interval=50),
                           config=config()).solve()
        out["ckpt"] = ckpt.solve_time
        return out

    def test_signal_handler_methods_have_no_overhead(self, overheads):
        assert overheads["Lossy"] == pytest.approx(overheads["ideal"], rel=1e-9)
        assert overheads["Trivial"] == pytest.approx(overheads["ideal"], rel=1e-9)

    def test_afeir_cheaper_than_feir(self, overheads):
        assert overheads["AFEIR"] < overheads["FEIR"]

    def test_feir_overhead_is_small(self, overheads):
        overhead = (overheads["FEIR"] - overheads["ideal"]) / overheads["ideal"]
        assert 0.0 < overhead < 0.15

    def test_checkpointing_is_most_expensive(self, overheads):
        assert overheads["ckpt"] > overheads["FEIR"]
        assert overheads["ckpt"] > 1.05 * overheads["ideal"]

    def test_all_methods_converge_identically(self, problem):
        A, b = problem
        ideal = ResilientCG(A, b, config=config()).solve()
        for name in ("FEIR", "AFEIR"):
            res = ResilientCG(A, b, strategy=make_strategy(name),
                              config=config()).solve()
            assert res.record.iterations == ideal.record.iterations


class TestPreconditionedSolver:
    def test_pcg_converges_in_fewer_iterations(self, problem):
        A, b = problem
        plain = ResilientCG(A, b, config=config()).solve()
        M = BlockJacobiPreconditioner(A, page_size=128)
        pcg = ResilientCG(A, b, preconditioner=M, config=config()).solve()
        assert pcg.converged
        assert pcg.record.iterations < plain.record.iterations

    def test_pcg_with_feir_matches_ideal_pcg(self, problem):
        A, b = problem
        M = BlockJacobiPreconditioner(A, page_size=128)
        ideal = ResilientCG(A, b, preconditioner=M, config=config()).solve()
        feir = ResilientCG(A, b, preconditioner=M,
                           strategy=make_strategy("FEIR"),
                           config=config()).solve()
        assert feir.converged
        assert feir.record.iterations == ideal.record.iterations
        np.testing.assert_allclose(feir.x, ideal.x, atol=1e-8)

    def test_method_names(self, problem):
        A, b = problem
        M = BlockJacobiPreconditioner(A, page_size=128)
        assert ResilientCG(A, b, config=config())._method_name() == "CG-ideal"
        assert ResilientCG(A, b, preconditioner=M,
                           strategy=make_strategy("FEIR"),
                           config=config())._method_name() == "PCG-FEIR"
