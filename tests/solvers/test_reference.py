"""Tests for the reference Krylov solvers (Listings 1, 3, 4 and 5-7)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.precond.block_jacobi import BlockJacobiPreconditioner
from repro.precond.jacobi import JacobiPreconditioner
from repro.solvers.reference import (bicgstab, conjugate_gradient, gmres,
                                     preconditioned_conjugate_gradient)


class TestConjugateGradient:
    def test_solves_spd_system(self, small_spd_system):
        A, b, x_star = small_spd_system
        result = conjugate_gradient(A, b, tol=1e-10)
        assert result.converged
        np.testing.assert_allclose(result.x, x_star, atol=1e-6)

    def test_residual_history_is_recorded(self, small_spd_system):
        A, b, _ = small_spd_system
        result = conjugate_gradient(A, b, tol=1e-10)
        history = result.record.history
        assert len(history) == result.iterations + 1
        assert history.residuals[0] > history.final_residual

    def test_superlinear_like_decrease(self, small_spd_system):
        """Later residuals should be (much) smaller than early ones."""
        A, b, _ = small_spd_system
        history = conjugate_gradient(A, b, tol=1e-12).record.history
        assert history.residuals[-1] < 1e-6 * history.residuals[1]

    def test_zero_rhs(self, small_spd_system):
        A, _, _ = small_spd_system
        result = conjugate_gradient(A, np.zeros(A.shape[0]))
        assert result.converged and result.iterations == 0

    def test_initial_guess(self, small_spd_system):
        A, b, x_star = small_spd_system
        result = conjugate_gradient(A, b, x0=x_star)
        assert result.converged
        assert result.iterations <= 1

    def test_max_iterations_respected(self, small_spd_system):
        A, b, _ = small_spd_system
        result = conjugate_gradient(A, b, tol=1e-14, max_iterations=3)
        assert result.iterations <= 3
        assert not result.converged

    def test_dimension_mismatch(self, small_spd_system):
        A, b, _ = small_spd_system
        with pytest.raises(ValueError):
            conjugate_gradient(A, b[:-1])

    def test_non_spd_breakdown_reported(self):
        A = sp.diags([1.0, -1.0, 1.0]).tocsr()
        b = np.ones(3)
        result = conjugate_gradient(A, b, max_iterations=10)
        assert not result.converged

    def test_callback_invoked(self, small_spd_system):
        A, b, _ = small_spd_system
        calls = []
        conjugate_gradient(A, b, callback=lambda it, res: calls.append(it))
        assert calls and calls == sorted(calls)


class TestPreconditionedCG:
    def test_jacobi_preconditioner(self, small_spd_system):
        A, b, x_star = small_spd_system
        result = preconditioned_conjugate_gradient(
            A, b, preconditioner=JacobiPreconditioner(A))
        assert result.converged
        np.testing.assert_allclose(result.x, x_star, atol=1e-6)

    def test_block_jacobi_reduces_iterations(self, medium_spd_system):
        A, b, _ = medium_spd_system
        plain = conjugate_gradient(A, b)
        pcg = preconditioned_conjugate_gradient(
            A, b, preconditioner=BlockJacobiPreconditioner(A, page_size=128))
        assert pcg.converged
        assert pcg.iterations < plain.iterations


class TestBiCGStab:
    def test_solves_spd_system(self, small_spd_system):
        A, b, x_star = small_spd_system
        result = bicgstab(A, b, tol=1e-10)
        assert result.converged
        np.testing.assert_allclose(result.x, x_star, atol=1e-5)

    def test_solves_nonsymmetric_system(self):
        rng = np.random.default_rng(0)
        n = 120
        A = sp.diags(np.linspace(1.0, 4.0, n)).tolil()
        A[0, n - 1] = 0.3
        A[n - 1, 0] = -0.2
        A = A.tocsr()
        x_star = rng.standard_normal(n)
        result = bicgstab(A, A @ x_star, tol=1e-10)
        assert result.converged
        np.testing.assert_allclose(result.x, x_star, atol=1e-6)

    def test_preconditioned_variant(self, small_spd_system):
        A, b, x_star = small_spd_system
        result = bicgstab(A, b, preconditioner=JacobiPreconditioner(A))
        assert result.converged

    def test_zero_rhs(self, small_spd_system):
        A, _, _ = small_spd_system
        assert bicgstab(A, np.zeros(A.shape[0])).converged

    def test_dimension_mismatch(self, small_spd_system):
        A, b, _ = small_spd_system
        with pytest.raises(ValueError):
            bicgstab(A, b[:-2])


class TestGMRES:
    def test_solves_spd_system(self, small_spd_system):
        A, b, x_star = small_spd_system
        result = gmres(A, b, restart=40, tol=1e-10)
        assert result.converged
        np.testing.assert_allclose(result.x, x_star, atol=1e-5)

    def test_solves_nonsymmetric_system(self):
        rng = np.random.default_rng(3)
        n = 80
        A = sp.eye(n).tolil()
        for i in range(n - 1):
            A[i, i + 1] = 0.4
        A = (A + sp.diags(np.linspace(1, 2, n))).tocsr()
        x_star = rng.standard_normal(n)
        result = gmres(A, A @ x_star, restart=30, tol=1e-10)
        assert result.converged
        np.testing.assert_allclose(result.x, x_star, atol=1e-5)

    def test_restart_parameter_validation(self, small_spd_system):
        A, b, _ = small_spd_system
        with pytest.raises(ValueError):
            gmres(A, b, restart=0)

    def test_preconditioned_gmres(self, small_spd_system):
        A, b, x_star = small_spd_system
        result = gmres(A, b, restart=30,
                       preconditioner=JacobiPreconditioner(A))
        assert result.converged

    def test_zero_rhs(self, small_spd_system):
        A, _, _ = small_spd_system
        assert gmres(A, np.zeros(A.shape[0])).converged

    def test_max_iterations(self, small_spd_system):
        A, b, _ = small_spd_system
        result = gmres(A, b, restart=5, tol=1e-14, max_iterations=8)
        assert result.iterations <= 8
