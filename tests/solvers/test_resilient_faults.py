"""Tests for the resilient CG under fault injection (the paper's claims)."""

import numpy as np
import pytest

from repro.core.manager import make_strategy
from repro.faults.injector import Injection
from repro.faults.scenarios import (ErrorScenario, multi_error_scenario,
                                    single_error_scenario)
from repro.matrices.stencil import poisson_2d_5pt, stencil_rhs
from repro.solvers.resilient_cg import ResilientCG, SolverConfig


@pytest.fixture(scope="module")
def problem():
    A = poisson_2d_5pt(32)               # n = 1024, 8 pages of 128
    b = stencil_rhs(A, kind="random", seed=1)
    return A, b


@pytest.fixture(scope="module")
def ideal(problem):
    A, b = problem
    return ResilientCG(A, b, config=config()).solve()


def config(**overrides):
    defaults = dict(num_workers=8, page_size=128, tolerance=1e-10)
    defaults.update(overrides)
    return SolverConfig(**defaults)


def run(problem, method, scenario, ideal, **cfg):
    A, b = problem
    solver = ResilientCG(A, b, strategy=make_strategy(method),
                         scenario=scenario, config=config(**cfg))
    return solver.solve(ideal_time=ideal.solve_time)


class TestSingleError:
    """Figure 3 behaviour: one error in a page of the iterate."""

    @pytest.fixture(scope="class")
    def results(self, problem, ideal):
        scenario = single_error_scenario("x", 3, 0.4 * ideal.solve_time)
        return {name: run(problem, name, scenario, ideal)
                for name in ("FEIR", "AFEIR", "Lossy", "Trivial", "ckpt")}

    def test_all_methods_eventually_converge(self, results):
        for name, res in results.items():
            assert res.converged, f"{name} did not converge"
            assert res.record.final_residual <= 1e-9

    def test_exact_recovery_preserves_iteration_count(self, results, ideal):
        for name in ("FEIR", "AFEIR"):
            assert results[name].record.iterations == ideal.record.iterations

    def test_exact_recovery_detects_the_fault(self, results):
        assert results["FEIR"].record.faults_detected == 1
        assert results["FEIR"].stats.pages_recovered >= 1

    def test_lossy_restart_needs_more_iterations(self, results, ideal):
        assert results["Lossy"].record.iterations > ideal.record.iterations
        assert results["Lossy"].record.restarts >= 1

    def test_trivial_is_worst_in_iterations(self, results):
        assert results["Trivial"].record.iterations >= \
            results["Lossy"].record.iterations

    def test_checkpoint_rolls_back(self, results, ideal):
        assert results["ckpt"].record.rollbacks >= 1
        assert results["ckpt"].record.iterations >= ideal.record.iterations

    def test_exact_methods_are_fastest(self, results):
        for name in ("Lossy", "Trivial", "ckpt"):
            assert results["FEIR"].solve_time < results[name].solve_time
            assert results["AFEIR"].solve_time < results[name].solve_time

    def test_solution_still_accurate(self, results, problem):
        A, b = problem
        for name, res in results.items():
            rel = np.linalg.norm(b - A @ res.x) / np.linalg.norm(b)
            assert rel <= 1e-9, f"{name} final solution inaccurate"


class TestErrorsInEveryVector:
    @pytest.mark.parametrize("vector", ["x", "g", "d0", "d1", "q"])
    def test_feir_exact_recovery_any_vector(self, problem, ideal, vector):
        scenario = single_error_scenario(vector, 2, 0.5 * ideal.solve_time)
        res = run(problem, "FEIR", scenario, ideal)
        assert res.converged
        # Exact recovery: no extra iterations beyond the ideal run.
        assert res.record.iterations <= ideal.record.iterations + 1

    @pytest.mark.parametrize("vector", ["x", "g", "q"])
    def test_afeir_exact_recovery_any_vector(self, problem, ideal, vector):
        scenario = single_error_scenario(vector, 1, 0.6 * ideal.solve_time)
        res = run(problem, "AFEIR", scenario, ideal)
        assert res.converged
        assert res.record.iterations <= ideal.record.iterations + 1


class TestMultipleErrors:
    def test_two_errors_same_vector_same_time(self, problem, ideal):
        t = 0.3 * ideal.solve_time
        scenario = multi_error_scenario([Injection(t, "x", 1),
                                         Injection(t, "x", 4)])
        res = run(problem, "FEIR", scenario, ideal)
        assert res.converged
        assert res.record.iterations <= ideal.record.iterations + 1
        assert res.stats.pages_recovered >= 2

    def test_related_data_conflict_degrades_but_converges(self, problem, ideal):
        t = 0.3 * ideal.solve_time
        scenario = multi_error_scenario([Injection(t, "x", 2),
                                         Injection(t, "g", 2)])
        res = run(problem, "FEIR", scenario, ideal)
        assert res.converged
        assert res.stats.pages_unrecoverable >= 1

    def test_several_errors_spread_over_time(self, problem, ideal):
        tau = ideal.solve_time
        scenario = multi_error_scenario(
            [Injection(tau * f, "g", p) for f, p in
             ((0.2, 0), (0.4, 3), (0.6, 5), (0.8, 7))])
        res = run(problem, "FEIR", scenario, ideal)
        assert res.converged
        assert res.record.faults_detected == 4
        assert res.record.iterations <= ideal.record.iterations + 1


class TestRateBasedInjection:
    def test_rate_sweep_ordering(self, problem, ideal):
        """At a moderate rate the paper's method ordering must hold."""
        scenario = ErrorScenario(name="r10", normalized_rate=10.0, seed=11)
        times = {}
        for name in ("FEIR", "AFEIR", "Lossy", "ckpt"):
            res = run(problem, name, scenario, ideal)
            assert res.converged, f"{name} did not converge"
            times[name] = res.solve_time
        assert times["FEIR"] < times["Lossy"] < times["ckpt"]
        assert times["AFEIR"] < times["Lossy"]

    def test_higher_rate_is_not_cheaper(self, problem, ideal):
        low = run(problem, "FEIR",
                  ErrorScenario(normalized_rate=2.0, seed=3), ideal)
        high = run(problem, "FEIR",
                   ErrorScenario(normalized_rate=20.0, seed=3), ideal)
        assert high.record.faults_detected >= low.record.faults_detected
        assert high.solve_time >= low.solve_time

    def test_rate_scenario_requires_ideal_time(self, problem):
        A, b = problem
        solver = ResilientCG(A, b, strategy=make_strategy("FEIR"),
                             scenario=ErrorScenario(normalized_rate=5.0),
                             config=config())
        with pytest.raises(ValueError):
            solver.solve()

    def test_fault_counts_scale_with_rate(self, problem, ideal):
        counts = []
        for rate in (5.0, 50.0):
            res = run(problem, "Trivial",
                      ErrorScenario(normalized_rate=rate, seed=9), ideal,
                      max_iterations=3000)
            counts.append(res.record.faults_detected)
        assert counts[1] > counts[0]
