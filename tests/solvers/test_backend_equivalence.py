"""Backend equivalence: the threaded runtime must change *nothing* but
the measurements.

With zero injected faults the ``threaded`` and ``simulated`` backends
must produce bitwise-identical solver iterates, identical simulated
timelines and identical campaign fingerprints; with faults they must
take identical recovery decisions for the same injection schedule.  The
``stress``-marked repetitions hammer the thread pool to surface races
and run in the quarantined ``threaded-backend`` CI job.
"""

import numpy as np
import pytest

from repro.campaign.engine import clear_caches, run_campaign
from repro.campaign.spec import CampaignSpec, SolverKnobs
from repro.core.manager import make_strategy
from repro.faults.injector import Injection
from repro.faults.scenarios import multi_error_scenario
from repro.matrices.stencil import poisson_2d_5pt, stencil_rhs
from repro.solvers.resilient_cg import ResilientCG, SolverConfig


@pytest.fixture(scope="module")
def problem():
    A = poisson_2d_5pt(20)               # n = 400, several pages of 64
    b = stencil_rhs(A, kind="random", seed=7)
    return A, b


def config(backend, **overrides):
    defaults = dict(num_workers=4, page_size=64, tolerance=1e-10,
                    backend=backend)
    defaults.update(overrides)
    return SolverConfig(**defaults)


def solve(problem, method, backend, scenario=None, ideal_time=None, **cfg):
    A, b = problem
    strategy = make_strategy(method) if method else None
    with ResilientCG(A, b, strategy=strategy, scenario=scenario,
                     config=config(backend, **cfg)) as solver:
        return solver.solve(ideal_time=ideal_time)


def assert_bitwise_equal(sim, real):
    assert np.array_equal(sim.x, real.x), "iterates diverged across backends"
    assert sim.record.iterations == real.record.iterations
    assert sim.record.solve_time == real.record.solve_time
    assert sim.record.final_residual == real.record.final_residual
    assert sim.record.converged == real.record.converged


class TestFaultFreeEquivalence:
    @pytest.mark.parametrize("method", ["AFEIR", "FEIR", None])
    def test_bitwise_identical_iterates_and_timeline(self, problem, method):
        sim = solve(problem, method, "simulated")
        real = solve(problem, method, "threaded")
        assert sim.converged and real.converged
        assert_bitwise_equal(sim, real)

    def test_threaded_backend_measures_what_simulation_cannot(self, problem):
        real = solve(problem, "AFEIR", "threaded")
        summary = real.window_summary
        assert summary["recovery_scans"] > 0, "recovery tasks never executed"
        assert summary["runs"] == real.record.iterations
        assert real.wall_clock > 0.0
        assert real.wall_trace is not None
        assert real.wall_trace.breakdown.total > 0.0
        # Overlap/window *positivity* is asserted in the stress suite —
        # it depends on real thread timing, which a loaded CI runner can
        # starve; tier-1 keeps only the deterministic observations.

    def test_feir_barrier_never_records_windows(self, problem):
        feir = solve(problem, "FEIR", "threaded")
        # Structural, not timing: FEIR has no vulnerable pairs, so no
        # window can ever be recorded no matter how threads interleave.
        assert feir.window_summary["windows"] == 0

    def test_simulated_backend_reports_no_real_measurements(self, problem):
        sim = solve(problem, "AFEIR", "simulated")
        assert sim.wall_clock == 0.0
        assert sim.wall_trace is None
        assert sim.window_summary["overlapped_recoveries"] == 0


class TestFaultedEquivalence:
    """Same injection schedule => identical recovery decisions."""

    INJECTIONS = [
        Injection(time=0.002, vector="g", page=1),
        Injection(time=0.004, vector="x", page=3),
        Injection(time=0.006, vector="q", page=2),
        Injection(time=0.011, vector="d0", page=0),
    ]

    @pytest.mark.parametrize("method", ["AFEIR", "FEIR", "Lossy", "ckpt"])
    def test_identical_recovery_decisions(self, problem, method):
        ideal = solve(problem, None, "simulated")
        scenario = multi_error_scenario(self.INJECTIONS)
        sim = solve(problem, method, "simulated", scenario=scenario,
                    ideal_time=ideal.solve_time)
        real = solve(problem, method, "threaded", scenario=scenario,
                     ideal_time=ideal.solve_time)
        assert_bitwise_equal(sim, real)
        assert sim.record.faults_detected == real.record.faults_detected
        assert sim.stats.pages_recovered == real.stats.pages_recovered
        assert sim.stats.pages_unrecoverable == real.stats.pages_unrecoverable
        assert sim.stats.contributions_skipped == \
            real.stats.contributions_skipped
        assert sim.stats.restarts == real.stats.restarts
        assert sim.stats.rollbacks == real.stats.rollbacks

    def test_due_monitoring_is_backend_independent(self, problem):
        ideal = solve(problem, None, "simulated")
        scenario = multi_error_scenario(self.INJECTIONS)
        sim = solve(problem, "AFEIR", "simulated", scenario=scenario,
                    ideal_time=ideal.solve_time)
        real = solve(problem, "AFEIR", "threaded", scenario=scenario,
                     ideal_time=ideal.solve_time)
        assert sim.window_summary["dues_observed"] == \
            real.window_summary["dues_observed"]
        assert sim.window_summary["dues_in_window"] == \
            real.window_summary["dues_in_window"]


class TestCampaignFingerprints:
    def spec(self, backend, rates):
        return CampaignSpec(
            matrices=["laplacian2d:16"], methods=("FEIR", "AFEIR"),
            rates=rates, repetitions=2, seed=99,
            knobs=SolverKnobs(tolerance=1e-8, page_size=64,
                              num_workers=4, backend=backend),
            name=f"equiv-{backend}")

    @pytest.mark.parametrize("rates", [(0.0,), (1.0, 10.0)])
    def test_fingerprints_identical_across_backends(self, rates):
        fingerprints = {}
        for backend in ("simulated", "threaded"):
            clear_caches()
            result = run_campaign(self.spec(backend, rates))
            fingerprints[backend] = result.fingerprint()
        clear_caches()
        assert fingerprints["simulated"] == fingerprints["threaded"]

    def test_knobs_reject_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            SolverKnobs(backend="warp-drive")


class TestTable2OnBothBackends:
    @pytest.mark.parametrize("backend", ["simulated", "threaded"])
    def test_afeir_fault_free_overhead_strictly_below_feir(self, backend):
        from repro.experiments.common import ExperimentConfig
        from repro.experiments.table2 import run_table2
        cfg = ExperimentConfig(matrices=("qa8fm",), repetitions=1,
                               max_iterations=6000, tolerance=1e-9,
                               backend=backend)
        result = run_table2(cfg)
        assert result.overheads["AFEIR"] < result.overheads["FEIR"]
        if backend == "threaded":
            # Wall-clock overheads are reported next to the simulated
            # column (noisy on one tiny matrix, so only presence and
            # finiteness are asserted here).
            assert set(result.wall_overheads) == set(result.overheads)
            assert all(np.isfinite(v)
                       for v in result.wall_overheads.values())
        else:
            assert result.wall_overheads == {}


@pytest.mark.stress
class TestRaceStress:
    """Repeated runs to surface thread-pool races (quarantined CI job)."""

    REPEATS = 20

    def test_fault_free_stays_bitwise_identical(self, problem):
        reference = solve(problem, "AFEIR", "simulated")
        for _ in range(self.REPEATS):
            real = solve(problem, "AFEIR", "threaded")
            assert_bitwise_equal(reference, real)
            assert real.window_summary["recovery_scans"] > 0

    def test_faulted_decisions_stay_identical(self, problem):
        ideal = solve(problem, None, "simulated")
        scenario = multi_error_scenario(TestFaultedEquivalence.INJECTIONS)
        reference = solve(problem, "AFEIR", "simulated", scenario=scenario,
                          ideal_time=ideal.solve_time)
        for _ in range(self.REPEATS):
            real = solve(problem, "AFEIR", "threaded", scenario=scenario,
                         ideal_time=ideal.solve_time)
            assert_bitwise_equal(reference, real)

    def test_observed_concurrency_is_stable(self, problem):
        # AFEIR's r2 has no dependency on the rho partials, so across a
        # whole solve recovery tasks measurably overlap other tasks on
        # other threads, and the r2->beta / r1->alpha gaps are positive:
        # real asynchrony, observed via the monitor.
        for _ in range(self.REPEATS):
            real = solve(problem, "AFEIR", "threaded")
            summary = real.window_summary
            assert summary["concurrency_observed"]
            assert summary["overlapped_recoveries"] > 0
            assert summary["windows"] > 0
            assert summary["mean_window"] > 0.0
