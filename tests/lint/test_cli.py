"""CLI behaviour: exit codes, JSON output, --explain, and the canary
property the CI job relies on (a violating tempfile fails the lint)."""

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def run_lint(*argv, cwd=REPO):
    env_src = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *argv],
        capture_output=True, text=True, cwd=cwd,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"})


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        proc = run_lint(str(clean))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_violating_tempfile_exits_nonzero(self, tmp_path):
        # the CI canary: a silently no-op linter would return 0 here
        canary = tmp_path / "canary.py"
        canary.write_text("import time\nt = time.time()\n")
        proc = run_lint(str(canary))
        assert proc.returncode == 1
        assert "wall-clock" in proc.stdout

    def test_unknown_rule_code_exits_two(self):
        proc = run_lint("--explain", "no-such-rule")
        assert proc.returncode == 2

    def test_no_paths_exits_two(self):
        proc = run_lint()
        assert proc.returncode == 2


class TestOutput:
    def test_json_format(self, tmp_path):
        canary = tmp_path / "canary.py"
        canary.write_text("import time\nt = time.time()\n")
        proc = run_lint("--format", "json", str(canary))
        payload = json.loads(proc.stdout)
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        [finding] = payload["findings"]
        assert finding["code"] == "wall-clock"
        assert finding["line"] == 2

    def test_explain_prints_rationale(self):
        proc = run_lint("--explain", "paged-reduction")
        assert proc.returncode == 0
        assert "paged_dot" in proc.stdout

    def test_list_rules(self):
        proc = run_lint("--list-rules")
        assert proc.returncode == 0
        for code in ("wall-clock", "unseeded-rng", "unordered-iter",
                     "paged-reduction", "lock-discipline"):
            assert code in proc.stdout

    def test_select_restricts_rules(self, tmp_path):
        canary = tmp_path / "canary.py"
        canary.write_text("import time\nt = time.time()\n")
        proc = run_lint("--select", "unseeded-rng", str(canary))
        assert proc.returncode == 0


class TestRepoIsClean:
    """The committed tree lints clean — the acceptance criterion."""

    def test_src_exits_zero(self):
        proc = run_lint("src")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_tests_exit_zero(self):
        proc = run_lint("tests")
        assert proc.returncode == 0, proc.stdout + proc.stderr
