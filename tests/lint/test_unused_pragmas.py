"""Stale-pragma detection: allow[...] grants that suppress nothing."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.lint.checkers import ALL_CHECKERS
from repro.lint.engine import lint_source

PATH = "src/repro/x.py"
REPO = Path(__file__).resolve().parents[2]


def run_lint(*argv, cwd=REPO):
    env_src = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *argv],
        capture_output=True, text=True, cwd=cwd,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"})


class TestEngine:
    def test_used_pragma_not_reported(self):
        src = "import time\nt = time.time()  # repro-lint: allow[wall-clock] measured, not fingerprinted\n"
        result = lint_source(src, PATH)
        assert result.unused_pragmas == []
        assert len(result.suppressed) == 1

    def test_stale_pragma_reported_at_its_own_line(self):
        src = "import time\nx = 1  # repro-lint: allow[wall-clock] the call this guarded is gone\n"
        result = lint_source(src, PATH)
        [stale] = result.unused_pragmas
        assert stale.code == "unused-pragma"
        assert stale.line == 2
        assert "wall-clock" in stale.message

    def test_stale_standalone_pragma_reported(self):
        src = (
            "# repro-lint: allow[unseeded-rng] long-gone rng call\n"
            "x = 1\n"
        )
        result = lint_source(src, PATH)
        [stale] = result.unused_pragmas
        assert stale.line == 1

    def test_multi_code_pragma_reports_only_stale_codes(self):
        src = (
            "import time\n"
            "t = time.time()  # repro-lint: allow[wall-clock, unseeded-rng] half stale\n"
        )
        result = lint_source(src, PATH)
        [stale] = result.unused_pragmas
        assert "unseeded-rng" in stale.message
        assert len(result.suppressed) == 1  # wall-clock half still works

    def test_unknown_code_is_always_stale(self):
        src = "x = 1  # repro-lint: allow[no-such-rule] typo'd code\n"
        result = lint_source(src, PATH)
        [stale] = result.unused_pragmas
        assert "no-such-rule" in stale.message

    def test_select_does_not_misjudge_other_rules(self):
        # under --select lock-discipline a wall-clock pragma must not be
        # called stale: its rule simply did not run
        lock_only = [c for c in ALL_CHECKERS if c.code == "lock-discipline"]
        src = "import time\nt = time.time()  # repro-lint: allow[wall-clock] measured\n"
        result = lint_source(src, PATH, checkers=lock_only)
        assert result.unused_pragmas == []

    def test_stale_pragmas_do_not_fail_ok(self):
        src = "x = 1  # repro-lint: allow[wall-clock] stale\n"
        result = lint_source(src, PATH)
        assert result.ok  # opt-in via --show-unused-pragmas
        assert result.unused_pragmas

    def test_unused_pragma_findings_are_unsuppressible(self):
        # a pragma cannot allowlist its own staleness: both grants come
        # back stale (no checker is named `unused-pragma`)
        src = "x = 1  # repro-lint: allow[wall-clock, unused-pragma] nice try\n"
        result = lint_source(src, PATH)
        assert len(result.unused_pragmas) == 2
        assert all(f.code == "unused-pragma" for f in result.unused_pragmas)


class TestCli:
    def test_show_unused_pragmas_fails_on_stale(self, tmp_path):
        stale = tmp_path / "stale.py"
        stale.write_text("x = 1  # repro-lint: allow[wall-clock] long gone\n")
        proc = run_lint("--show-unused-pragmas", str(stale))
        assert proc.returncode == 1
        assert "unused-pragma" in proc.stdout

    def test_show_unused_pragmas_clean_exits_zero(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text(
            "import time\n"
            "t = time.time()  # repro-lint: allow[wall-clock] measured\n")
        proc = run_lint("--show-unused-pragmas", str(clean))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_without_flag_stale_pragma_does_not_fail(self, tmp_path):
        stale = tmp_path / "stale.py"
        stale.write_text("x = 1  # repro-lint: allow[wall-clock] long gone\n")
        proc = run_lint(str(stale))
        assert proc.returncode == 0

    def test_json_output_lists_unused_pragmas(self, tmp_path):
        stale = tmp_path / "stale.py"
        stale.write_text("x = 1  # repro-lint: allow[wall-clock] long gone\n")
        proc = run_lint("--format", "json", str(stale))
        payload = json.loads(proc.stdout)
        [entry] = payload["unused_pragmas"]
        assert entry["code"] == "unused-pragma"
        assert payload["ok"] is True  # json reports; the flag enforces
