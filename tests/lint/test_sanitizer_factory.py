"""The sanitizer-factory rule and the lock-graph's factory awareness."""

from __future__ import annotations

from repro.lint.checkers.locks import LOCK_FACTORIES
from repro.lint.checkers.sanitize import THREADED_MODULES
from repro.lint.engine import lint_source

THREADED = "src/repro/service/server.py"
ELSEWHERE = "src/repro/campaign/store.py"


def codes(result):
    return [f.code for f in result.active]


class TestSanitizerFactoryRule:
    def test_raw_lock_flagged_in_threaded_module(self):
        src = "import threading\nlock = threading.Lock()\n"
        assert "sanitizer-factory" in codes(lint_source(src, THREADED))

    def test_raw_queue_flagged_in_threaded_module(self):
        src = "import queue\nq = queue.Queue()\n"
        assert "sanitizer-factory" in codes(lint_source(src, THREADED))

    def test_all_threaded_modules_covered(self):
        src = "import threading\ncond = threading.Condition()\n"
        for module in THREADED_MODULES:
            assert "sanitizer-factory" in codes(
                lint_source(src, f"src/{module}")), module

    def test_not_flagged_outside_threaded_modules(self):
        src = "import threading\nlock = threading.Lock()\n"
        assert "sanitizer-factory" not in codes(lint_source(src, ELSEWHERE))

    def test_default_factory_kwarg_flagged(self):
        src = (
            "import threading\n"
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class Job:\n"
            "    done: threading.Event = field(default_factory=threading.Event)\n"
        )
        assert "sanitizer-factory" in codes(lint_source(src, THREADED))

    def test_factory_construction_is_clean(self):
        src = (
            "from repro.sanitize import make_condition, make_lock, make_queue\n"
            "lock = make_lock('x')\n"
            "cond = make_condition(name='y')\n"
            "q = make_queue('z')\n"
        )
        assert "sanitizer-factory" not in codes(lint_source(src, THREADED))

    def test_pragma_suppresses_with_reason(self):
        src = (
            "import threading\n"
            "lock = threading.Lock()  # repro-lint: allow[sanitizer-factory] bootstrap lock for the sanitizer itself\n"
        )
        result = lint_source(src, THREADED)
        assert "sanitizer-factory" not in codes(result)
        assert any(f.code == "sanitizer-factory" for f in result.suppressed)

    def test_import_alias_resolved(self):
        src = "import threading as th\nlock = th.Lock()\n"
        assert "sanitizer-factory" in codes(lint_source(src, THREADED))


class TestLockGraphSeesFactories:
    def test_lock_factories_include_sanitize(self):
        assert "repro.sanitize.make_lock" in LOCK_FACTORIES
        assert "repro.sanitize.make_rlock" in LOCK_FACTORIES
        assert "repro.sanitize.make_condition" in LOCK_FACTORIES

    def test_cycle_between_factory_made_locks_detected(self):
        src = (
            "from repro.sanitize import make_lock\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self.a = make_lock('a')\n"
            "        self.b = make_lock('b')\n"
            "    def fwd(self):\n"
            "        with self.a:\n"
            "            with self.b:\n"
            "                pass\n"
            "    def rev(self):\n"
            "        with self.b:\n"
            "            with self.a:\n"
            "                pass\n"
        )
        result = lint_source(src, THREADED)
        assert any(
            f.code == "lock-discipline" and "cycle" in f.message
            for f in result.active
        ), [f.message for f in result.active]

    def test_consistent_factory_lock_order_is_clean(self):
        src = (
            "from repro.sanitize import make_lock\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self.a = make_lock('a')\n"
            "        self.b = make_lock('b')\n"
            "    def one(self):\n"
            "        with self.a:\n"
            "            with self.b:\n"
            "                pass\n"
            "    def two(self):\n"
            "        with self.a:\n"
            "            with self.b:\n"
            "                pass\n"
        )
        result = lint_source(src, THREADED)
        assert not any(
            f.code == "lock-discipline" and "cycle" in f.message
            for f in result.active
        )
