"""Fixture-driven checker tests: violation, clean, and pragma-suppressed
snippets for each rule."""

import pytest

from repro.lint.engine import lint_source

LIB = "src/repro/somemodule.py"           # generic library path
STORE = "src/repro/campaign/store.py"     # fingerprint-critical module
SOLVER = "src/repro/solvers/resilient_cg.py"  # paged-reduction module
LOCKS = "src/repro/service/server.py"     # lock-graph module


def active_codes(src, path):
    return [f.code for f in lint_source(src, path).active]


def run(src, path):
    return lint_source(src, path)


# ----------------------------------------------------------------------
# wall-clock
# ----------------------------------------------------------------------
class TestWallClock:
    def test_violation_time_time(self):
        assert active_codes("import time\nt = time.time()\n", LIB) == ["wall-clock"]

    def test_violation_from_import_alias(self):
        src = "from time import perf_counter as pc\nt = pc()\n"
        assert active_codes(src, LIB) == ["wall-clock"]

    def test_violation_datetime_now(self):
        src = "import datetime\nd = datetime.datetime.now()\n"
        assert active_codes(src, LIB) == ["wall-clock"]

    def test_clean_sleep_and_simulated_clock(self):
        src = "import time\ntime.sleep(0.1)\nt = clock.now()\n"
        assert active_codes(src, LIB) == []

    def test_pragma_suppressed(self):
        src = "import time\nt = time.time()  # repro-lint: allow[wall-clock] measured span only\n"
        result = run(src, LIB)
        assert not result.active and len(result.suppressed) == 1

    def test_service_modules_are_allowlisted(self):
        src = "import time\nt = time.time()\n"
        assert active_codes(src, "src/repro/service/server.py") == []

    def test_tests_are_exempt(self):
        src = "import time\nt = time.time()\n"
        assert active_codes(src, "tests/test_something.py") == []

    def test_arbitrary_tempfile_is_not_exempt(self):
        # the CI canary writes a violation to a temp dir; the rule must
        # still fire outside the repo layout
        src = "import time\nt = time.time()\n"
        assert active_codes(src, "/tmp/tmpabc123/canary.py") == ["wall-clock"]


# ----------------------------------------------------------------------
# unseeded-rng
# ----------------------------------------------------------------------
class TestRng:
    def test_violation_unseeded_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert active_codes(src, LIB) == ["unseeded-rng"]

    def test_violation_seeded_default_rng_in_library(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert active_codes(src, LIB) == ["unseeded-rng"]

    def test_seeded_default_rng_ok_in_tests(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert active_codes(src, "tests/test_x.py") == []

    def test_violation_legacy_global_call(self):
        src = "import numpy as np\nnp.random.seed(0)\nv = np.random.normal()\n"
        assert active_codes(src, LIB) == ["unseeded-rng", "unseeded-rng"]

    def test_violation_stdlib_random(self):
        assert active_codes("import random\n", LIB) == ["unseeded-rng"]
        assert active_codes("from random import shuffle\n", LIB) == ["unseeded-rng"]

    def test_clean_derive_rng(self):
        src = ("from repro.faults.injector import derive_rng\n"
               "rng = derive_rng(1234)\n")
        assert active_codes(src, LIB) == []

    def test_factory_module_may_call_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert active_codes(src, "src/repro/faults/injector.py") == []

    def test_pragma_suppressed(self):
        src = ("import numpy as np\n"
               "# repro-lint: allow[unseeded-rng] deliberate perturbation\n"
               "np.random.seed(0)\n")
        result = run(src, "tests/test_x.py")
        assert not result.active and len(result.suppressed) == 1


# ----------------------------------------------------------------------
# unordered-iter
# ----------------------------------------------------------------------
class TestOrdering:
    def test_violation_set_iteration(self):
        src = "for x in {1, 2, 3}:\n    print(x)\n"
        assert active_codes(src, STORE) == ["unordered-iter"]

    def test_violation_unsorted_glob(self):
        src = "import glob\nfor p in glob.glob('*.json'):\n    print(p)\n"
        assert active_codes(src, STORE) == ["unordered-iter"]

    def test_violation_pathlib_glob_method(self):
        src = "paths = [p for p in root.glob('*/*')]\n"
        assert active_codes(src, STORE) == ["unordered-iter"]

    def test_violation_keys_iteration(self):
        src = "for k in d.keys():\n    print(k)\n"
        assert active_codes(src, STORE) == ["unordered-iter"]

    def test_violation_dumps_without_sort_keys(self):
        src = "import json\ns = json.dumps({'a': 1})\n"
        assert active_codes(src, STORE) == ["unordered-iter"]

    def test_clean_sorted_listing_and_sorted_dumps(self):
        src = ("import glob, json\n"
               "for p in sorted(glob.glob('*.json')):\n"
               "    print(p)\n"
               "s = json.dumps({'a': 1}, sort_keys=True)\n"
               "for k in sorted(d):\n"
               "    print(k)\n")
        assert active_codes(src, STORE) == []

    def test_rule_only_fires_in_fingerprint_modules(self):
        src = "for x in {1, 2, 3}:\n    print(x)\n"
        assert active_codes(src, LIB) == []

    def test_pragma_suppressed(self):
        src = ("import glob\n"
               "# repro-lint: allow[unordered-iter] files are deleted, order never hashed\n"
               "for p in glob.glob('*.tmp'):\n"
               "    print(p)\n")
        result = run(src, STORE)
        assert not result.active and len(result.suppressed) == 1


# ----------------------------------------------------------------------
# paged-reduction
# ----------------------------------------------------------------------
class TestReductions:
    def test_violation_np_dot(self):
        src = "import numpy as np\nv = np.dot(u, w)\n"
        assert active_codes(src, SOLVER) == ["paged-reduction"]

    def test_violation_np_sum(self):
        src = "import numpy as np\nv = np.sum(u)\n"
        assert active_codes(src, SOLVER) == ["paged-reduction"]

    def test_violation_ndarray_method(self):
        assert active_codes("v = u.dot(w)\n", SOLVER) == ["paged-reduction"]
        assert active_codes("v = u.sum()\n", SOLVER) == ["paged-reduction"]

    def test_violation_slice_matmul(self):
        src = "v = float(u[sl] @ w[sl])\n"
        assert active_codes(src, SOLVER) == ["paged-reduction"]

    def test_clean_paged_dot_and_matvec(self):
        src = ("from repro.runtime.kernels import paged_dot\n"
               "v = paged_dot(u, w, 64)\n"
               "y = A @ x\n"
               "s = engine.dot(u, w, skip)\n")
        assert active_codes(src, SOLVER) == []

    def test_rule_only_fires_in_paged_modules(self):
        src = "import numpy as np\nv = np.dot(u, w)\n"
        assert active_codes(src, LIB) == []

    def test_pragma_suppressed(self):
        src = ("import numpy as np\n"
               "v = np.sum(u[sl])  # repro-lint: allow[paged-reduction] single chunk, order fixed\n")
        result = run(src, SOLVER)
        assert not result.active and len(result.suppressed) == 1


# ----------------------------------------------------------------------
# lock-discipline (bare acquire; cycles are in test_lock_graph.py)
# ----------------------------------------------------------------------
class TestBareAcquire:
    def test_violation_bare_acquire(self):
        src = ("import threading\n"
               "lock = threading.Lock()\n"
               "def f():\n"
               "    lock.acquire()\n"
               "    work()\n"
               "    lock.release()\n")
        assert active_codes(src, LIB) == ["lock-discipline"]

    def test_clean_with_statement(self):
        src = ("import threading\n"
               "lock = threading.Lock()\n"
               "def f():\n"
               "    with lock:\n"
               "        work()\n")
        assert active_codes(src, LIB) == []

    def test_clean_try_finally(self):
        src = ("import threading\n"
               "lock = threading.Lock()\n"
               "def f():\n"
               "    lock.acquire()\n"
               "    try:\n"
               "        work()\n"
               "    finally:\n"
               "        lock.release()\n")
        assert active_codes(src, LIB) == []

    def test_clean_acquire_inside_try(self):
        src = ("import threading\n"
               "lock = threading.Lock()\n"
               "def f():\n"
               "    try:\n"
               "        lock.acquire()\n"
               "        work()\n"
               "    finally:\n"
               "        lock.release()\n")
        assert active_codes(src, LIB) == []

    def test_pragma_suppressed(self):
        src = ("import threading\n"
               "baton = threading.Lock()\n"
               "def f():\n"
               "    baton.acquire()  # repro-lint: allow[lock-discipline] released by the taker thread\n")
        result = run(src, LIB)
        assert not result.active and len(result.suppressed) == 1


# ----------------------------------------------------------------------
# framework-level behaviour
# ----------------------------------------------------------------------
class TestFramework:
    def test_syntax_error_reported_as_parse_error(self):
        result = run("def broken(:\n", LIB)
        assert [f.code for f in result.active] == ["parse-error"]
        assert result.parse_errors == 1

    @pytest.mark.parametrize("code", [
        "wall-clock", "unseeded-rng", "unordered-iter",
        "paged-reduction", "lock-discipline"])
    def test_every_rule_has_explanation(self, code):
        from repro.lint.report import render_explanation
        text = render_explanation(code)
        assert code in text and len(text) > 100

    def test_findings_sorted_by_position(self):
        src = "import time\nb = time.time()\na = time.time()\n"
        result = run(src, LIB)
        assert [f.line for f in result.active] == [2, 3]
