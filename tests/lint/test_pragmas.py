"""Pragma engine: parsing, attachment, justification requirement."""

from repro.lint.engine import lint_source
from repro.lint.pragmas import PragmaSheet


def codes(result, *, suppressed=False):
    pool = result.suppressed if suppressed else result.active
    return [f.code for f in pool]


class TestParsing:
    def test_trailing_pragma_applies_to_its_own_line(self):
        sheet = PragmaSheet.from_source(
            "x = 1  # repro-lint: allow[wall-clock] because reasons\n", "f.py")
        assert sheet.reason_for(1, "wall-clock") == "because reasons"
        assert sheet.reason_for(2, "wall-clock") is None

    def test_standalone_pragma_applies_to_next_line(self):
        sheet = PragmaSheet.from_source(
            "# repro-lint: allow[unseeded-rng] fixture noise\nx = 1\n", "f.py")
        assert sheet.reason_for(2, "unseeded-rng") == "fixture noise"

    def test_stacked_standalone_pragmas_cascade(self):
        src = ("# repro-lint: allow[wall-clock] reason one\n"
               "# repro-lint: allow[unseeded-rng] reason two\n"
               "x = 1\n")
        sheet = PragmaSheet.from_source(src, "f.py")
        assert sheet.reason_for(3, "wall-clock") == "reason one"
        assert sheet.reason_for(3, "unseeded-rng") == "reason two"

    def test_multiple_codes_in_one_pragma(self):
        sheet = PragmaSheet.from_source(
            "x = 1  # repro-lint: allow[wall-clock, unseeded-rng] both justified\n",
            "f.py")
        assert sheet.reason_for(1, "wall-clock") == "both justified"
        assert sheet.reason_for(1, "unseeded-rng") == "both justified"

    def test_missing_reason_is_a_pragma_finding(self):
        sheet = PragmaSheet.from_source(
            "x = 1  # repro-lint: allow[wall-clock]\n", "f.py")
        assert sheet.reason_for(1, "wall-clock") is None
        findings = sheet.error_findings("f.py")
        assert len(findings) == 1 and findings[0].code == "pragma"

    def test_malformed_pragma_is_a_pragma_finding(self):
        sheet = PragmaSheet.from_source(
            "x = 1  # repro-lint: suppress everything please\n", "f.py")
        findings = sheet.error_findings("f.py")
        assert len(findings) == 1 and findings[0].code == "pragma"


class TestSuppression:
    VIOLATION = "import time\nt = time.time()  # repro-lint: allow[wall-clock] {}\n"

    def test_justified_pragma_suppresses(self):
        result = lint_source(self.VIOLATION.format("measured interval"), "src/repro/x.py")
        assert codes(result) == []
        assert codes(result, suppressed=True) == ["wall-clock"]
        assert result.suppressed[0].suppression_reason == "measured interval"

    def test_unjustified_pragma_does_not_suppress(self):
        src = "import time\nt = time.time()  # repro-lint: allow[wall-clock]\n"
        result = lint_source(src, "src/repro/x.py")
        assert sorted(codes(result)) == ["pragma", "wall-clock"]

    def test_wrong_code_does_not_suppress(self):
        src = "import time\nt = time.time()  # repro-lint: allow[unseeded-rng] wrong rule\n"
        result = lint_source(src, "src/repro/x.py")
        assert codes(result) == ["wall-clock"]

    def test_pragma_findings_are_unsuppressible(self):
        src = ("# repro-lint: allow[pragma] nice try\n"
               "x = 1  # repro-lint: allow[wall-clock]\n")
        result = lint_source(src, "src/repro/x.py")
        assert "pragma" in codes(result)
