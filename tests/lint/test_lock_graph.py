"""Lock-graph extraction and cycle detection."""

from repro.lint.engine import lint_source

# the lock-graph pass only runs over the repo's coordination modules
SERVER = "src/repro/service/server.py"


def cycles(src):
    return [f for f in lint_source(src, SERVER).active
            if f.code == "lock-discipline" and "cycle" in f.message]


class TestCycles:
    def test_ab_ba_cycle_detected(self):
        src = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self.a = threading.Lock()\n"
            "        self.b = threading.Lock()\n"
            "    def one(self):\n"
            "        with self.a:\n"
            "            with self.b:\n"
            "                pass\n"
            "    def two(self):\n"
            "        with self.b:\n"
            "            with self.a:\n"
            "                pass\n")
        found = cycles(src)
        assert len(found) == 1
        assert "S.a" in found[0].message and "S.b" in found[0].message
        # both contributing edges are reported
        assert any("one" in note for note in found[0].related)
        assert any("two" in note for note in found[0].related)

    def test_consistent_order_is_clean(self):
        src = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self.a = threading.Lock()\n"
            "        self.b = threading.Lock()\n"
            "    def one(self):\n"
            "        with self.a:\n"
            "            with self.b:\n"
            "                pass\n"
            "    def two(self):\n"
            "        with self.a:\n"
            "            with self.b:\n"
            "                pass\n")
        assert cycles(src) == []

    def test_cycle_through_method_call(self):
        # one() holds a and calls helper(), which takes b; two() nests
        # b -> a directly: the cycle spans a call edge.
        src = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self.a = threading.Lock()\n"
            "        self.b = threading.Lock()\n"
            "    def helper(self):\n"
            "        with self.b:\n"
            "            pass\n"
            "    def one(self):\n"
            "        with self.a:\n"
            "            self.helper()\n"
            "    def two(self):\n"
            "        with self.b:\n"
            "            with self.a:\n"
            "                pass\n")
        found = cycles(src)
        assert len(found) == 1

    def test_three_lock_cycle(self):
        src = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self.a = threading.Lock()\n"
            "        self.b = threading.RLock()\n"
            "        self.c = threading.Condition()\n"
            "    def f(self):\n"
            "        with self.a:\n"
            "            with self.b:\n"
            "                pass\n"
            "    def g(self):\n"
            "        with self.b:\n"
            "            with self.c:\n"
            "                pass\n"
            "    def h(self):\n"
            "        with self.c:\n"
            "            with self.a:\n"
            "                pass\n")
        found = cycles(src)
        assert len(found) == 1
        assert len(found[0].related) == 3

    def test_dataclass_condition_field_is_a_lock(self):
        src = (
            "import threading\n"
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class Job:\n"
            "    cond: threading.Condition = field(default_factory=threading.Condition)\n"
            "    def ping(self):\n"
            "        with self.cond:\n"
            "            pass\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self.lk = threading.Lock()\n"
            "    def one(self, job):\n"
            "        with self.lk:\n"
            "            with job.cond:\n"
            "                pass\n"
            "    def two(self, job):\n"
            "        with job.cond:\n"
            "            with self.lk:\n"
            "                pass\n")
        found = cycles(src)
        assert len(found) == 1
        assert "Job.cond" in found[0].message and "S.lk" in found[0].message

    def test_same_attr_in_different_classes_not_merged(self):
        # A._lock and B._lock are different objects: nesting A's inside
        # B's in one place and the reverse in another is NOT a cycle.
        src = (
            "import threading\n"
            "class A:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def f(self):\n"
            "        with self._lock:\n"
            "            pass\n"
            "class B:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def g(self):\n"
            "        with self._lock:\n"
            "            pass\n")
        assert cycles(src) == []

    def test_repo_coordination_modules_have_no_cycles(self):
        from pathlib import Path
        from repro.lint.checkers.locks import LOCK_GRAPH_MODULES
        root = Path(__file__).resolve().parents[2]
        for module in LOCK_GRAPH_MODULES:
            path = root / "src" / module
            result = lint_source(path.read_text(), f"src/{module}")
            assert [f for f in result.active if f.code == "lock-discipline"] == [], module
