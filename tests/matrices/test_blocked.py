"""Tests for the page-blocked matrix view."""

import numpy as np
import pytest

from repro.matrices.blocked import PageBlockedMatrix
from repro.matrices.stencil import poisson_2d_5pt


@pytest.fixture(scope="module")
def blocked():
    A = poisson_2d_5pt(16)          # n = 256
    return PageBlockedMatrix(A, page_size=64)


class TestStructure:
    def test_block_count(self, blocked):
        assert blocked.num_blocks == 4

    def test_uneven_last_block(self):
        A = poisson_2d_5pt(9)        # n = 81
        b = PageBlockedMatrix(A, page_size=32)
        assert b.num_blocks == 3
        assert b.block_size(2) == 81 - 64

    def test_requires_square(self):
        import scipy.sparse as sp
        with pytest.raises(ValueError):
            PageBlockedMatrix(sp.random(4, 5, density=0.5))

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            PageBlockedMatrix(poisson_2d_5pt(4), page_size=0)

    def test_row_block_shape(self, blocked):
        rb = blocked.row_block(1)
        assert rb.shape == (64, 256)

    def test_diag_block_matches_dense(self, blocked):
        dense = blocked.A.toarray()
        np.testing.assert_allclose(blocked.diag_block(2),
                                   dense[128:192, 128:192])

    def test_nnz_of_block_sums_to_total(self, blocked):
        total = sum(blocked.nnz_of_block(i) for i in range(blocked.num_blocks))
        assert total == blocked.A.nnz


class TestProducts:
    def test_block_row_product(self, blocked):
        v = np.random.default_rng(0).standard_normal(256)
        full = blocked.A @ v
        np.testing.assert_allclose(blocked.block_row_product(1, v),
                                   full[64:128])

    def test_offdiag_product(self, blocked):
        v = np.random.default_rng(1).standard_normal(256)
        sl = blocked.block_slice(1)
        expected = (blocked.A @ v)[sl] - blocked.diag_block(1) @ v[sl]
        np.testing.assert_allclose(blocked.offdiag_product(1, v), expected,
                                   atol=1e-12)


class TestSolves:
    def test_solve_diag_roundtrip(self, blocked):
        rng = np.random.default_rng(2)
        y = rng.standard_normal(blocked.block_size(0))
        rhs = blocked.diag_block(0) @ y
        np.testing.assert_allclose(blocked.solve_diag(0, rhs), y, atol=1e-9)

    def test_solve_diag_wrong_size(self, blocked):
        with pytest.raises(ValueError):
            blocked.solve_diag(0, np.zeros(3))

    def test_factor_caching(self, blocked):
        assert not blocked.has_cached_factor(3)
        blocked.diag_factor(3)
        assert blocked.has_cached_factor(3)

    def test_precompute_factors(self):
        b = PageBlockedMatrix(poisson_2d_5pt(8), page_size=16)
        b.precompute_factors()
        assert all(b.has_cached_factor(i) for i in range(b.num_blocks))

    def test_coupled_diag_solve(self, blocked):
        rng = np.random.default_rng(3)
        blocks = [0, 2]
        indices = np.concatenate([blocked.page_size * np.array([0, 2])[:, None]
                                  + np.arange(64)[None, :]]).ravel()
        sub = blocked.A[indices][:, indices].toarray()
        y = rng.standard_normal(len(indices))
        rhs = sub @ y
        np.testing.assert_allclose(blocked.coupled_diag_solve(blocks, rhs), y,
                                   atol=1e-9)

    def test_coupled_solve_validation(self, blocked):
        with pytest.raises(ValueError):
            blocked.coupled_diag_solve([], np.zeros(0))
        with pytest.raises(ValueError):
            blocked.coupled_diag_solve([0], np.zeros(3))
