"""SparseOperator (SciPy-free CSR) parity and fast-path tests."""

import numpy as np
import pytest

from repro.matrices.blocked import PageBlockedMatrix
from repro.matrices.laplacian import laplacian_1d
from repro.matrices.sparse import (SparseOperator, ensure_operator,
                                   laplacian_1d_operator,
                                   laplacian_2d_operator)
from repro.matrices.stencil import poisson_2d_5pt, stencil_rhs

PARITY = 1e-12


@pytest.fixture(scope="module")
def poisson_pair():
    """(scipy CSR, SparseOperator, dense) of the same 2-D Poisson matrix."""
    A = poisson_2d_5pt(13, 9)
    return A, SparseOperator.from_scipy(A), A.toarray()


@pytest.fixture(scope="module")
def vector(poisson_pair):
    n = poisson_pair[0].shape[0]
    return np.random.default_rng(5).standard_normal(n)


class TestConstruction:
    def test_from_scipy_roundtrip(self, poisson_pair):
        _, op, dense = poisson_pair
        assert np.array_equal(op.toarray(), dense)
        assert op.nnz == np.count_nonzero(dense)

    def test_from_dense_roundtrip(self, poisson_pair):
        dense = poisson_pair[2]
        assert np.array_equal(SparseOperator.from_dense(dense).toarray(),
                              dense)

    def test_from_coo_sums_duplicates(self):
        op = SparseOperator.from_coo([0, 0, 1], [1, 1, 0], [2.0, 3.0, 1.0],
                                     (2, 2))
        assert np.array_equal(op.toarray(), [[0.0, 5.0], [1.0, 0.0]])

    def test_validation(self):
        with pytest.raises(ValueError):
            SparseOperator(np.ones(2), np.zeros(2), np.array([0, 1, 1]),
                           (2, 2))

    def test_ensure_operator_idempotent(self, poisson_pair):
        _, op, _ = poisson_pair
        assert ensure_operator(op) is op
        assert isinstance(ensure_operator(poisson_pair[0]), SparseOperator)
        assert isinstance(ensure_operator(np.eye(3)), SparseOperator)

    def test_scipy_free_builders_match_scipy(self):
        assert np.array_equal(laplacian_1d_operator(9, shift=0.25).toarray(),
                              laplacian_1d(9, shift=0.25).toarray())
        assert np.array_equal(laplacian_2d_operator(7, 5).toarray(),
                              poisson_2d_5pt(7, 5).toarray())


class TestProducts:
    def test_matvec_parity_with_dense(self, poisson_pair, vector):
        _, op, dense = poisson_pair
        assert np.max(np.abs(op.matvec(vector) - dense @ vector)) < PARITY

    def test_matmul_operator(self, poisson_pair, vector):
        _, op, dense = poisson_pair
        assert np.max(np.abs((op @ vector) - dense @ vector)) < PARITY

    def test_matmul_matrix(self, poisson_pair):
        _, op, dense = poisson_pair
        V = np.random.default_rng(6).standard_normal((dense.shape[0], 3))
        assert np.max(np.abs((op @ V) - dense @ V)) < PARITY

    def test_row_slab_parity(self, poisson_pair, vector):
        _, op, dense = poisson_pair
        full = dense @ vector
        for start, stop in ((0, 5), (3, 50), (100, dense.shape[0]),
                            (7, 7)):
            slab = op.row_slab_matvec(start, stop, vector)
            assert np.max(np.abs(slab - full[start:stop]), initial=0.0) \
                < PARITY

    def test_row_slab_with_empty_rows(self):
        dense = np.zeros((5, 5))
        dense[0, 1] = 2.0
        dense[3, 4] = -1.0
        op = SparseOperator.from_dense(dense)
        v = np.arange(5.0)
        assert np.array_equal(op.row_slab_matvec(0, 5, v), dense @ v)
        assert np.array_equal(op.row_slab_matvec(1, 3, v), np.zeros(2))

    def test_row_slab_bounds_checked(self, poisson_pair, vector):
        _, op, _ = poisson_pair
        with pytest.raises(ValueError):
            op.row_slab_matvec(-1, 3, vector)
        with pytest.raises(ValueError):
            op.row_slab_matvec(0, op.n + 1, vector)
        with pytest.raises(ValueError):
            op.matvec(vector[:-1])


class TestDenseExtraction:
    def test_dense_block(self, poisson_pair):
        _, op, dense = poisson_pair
        assert np.array_equal(op.dense_block(3, 30, 40, 90),
                              dense[3:30, 40:90])

    def test_gather_dense(self, poisson_pair):
        _, op, dense = poisson_pair
        idx = np.r_[2:9, 33:41, 100:104]
        assert np.array_equal(op.gather_dense(idx),
                              dense[np.ix_(idx, idx)])

    def test_diagonal(self, poisson_pair):
        _, op, dense = poisson_pair
        assert np.array_equal(op.diagonal(), np.diag(dense))


class TestBlockedDualBackend:
    """PageBlockedMatrix must behave identically on either backend."""

    @pytest.fixture(scope="class")
    def pair(self):
        A = poisson_2d_5pt(12, 12)
        return (PageBlockedMatrix(A, page_size=16),
                PageBlockedMatrix(SparseOperator.from_scipy(A),
                                  page_size=16))

    def test_backend_flag(self, pair):
        scipy_blocked, op_blocked = pair
        assert not scipy_blocked.uses_sparse_operator
        assert op_blocked.uses_sparse_operator

    def test_block_kernels_agree(self, pair):
        scipy_blocked, op_blocked = pair
        v = np.random.default_rng(8).standard_normal(scipy_blocked.n)
        for block in range(scipy_blocked.num_blocks):
            assert np.max(np.abs(
                scipy_blocked.block_row_product(block, v)
                - op_blocked.block_row_product(block, v))) < PARITY
            assert np.array_equal(scipy_blocked.diag_block(block),
                                  op_blocked.diag_block(block))
            assert np.max(np.abs(
                scipy_blocked.offdiag_product(block, v)
                - op_blocked.offdiag_product(block, v))) < PARITY

    def test_matvec_and_nnz_agree(self, pair):
        scipy_blocked, op_blocked = pair
        v = np.random.default_rng(9).standard_normal(scipy_blocked.n)
        assert np.max(np.abs(scipy_blocked.matvec(v)
                             - op_blocked.matvec(v))) < PARITY
        assert scipy_blocked.A.nnz == op_blocked.A.nnz
        for block in range(scipy_blocked.num_blocks):
            assert (scipy_blocked.nnz_of_block(block)
                    == op_blocked.nnz_of_block(block))

    def test_solves_agree(self, pair):
        scipy_blocked, op_blocked = pair
        rhs = np.random.default_rng(10).standard_normal(
            scipy_blocked.block_size(1))
        assert np.allclose(scipy_blocked.solve_diag(1, rhs),
                           op_blocked.solve_diag(1, rhs), atol=PARITY)
        coupled_rhs = np.concatenate([rhs, rhs])
        assert np.allclose(
            scipy_blocked.coupled_diag_solve([0, 2], coupled_rhs),
            op_blocked.coupled_diag_solve([0, 2], coupled_rhs), atol=PARITY)

    def test_column_block_dense_agree(self, pair):
        scipy_blocked, op_blocked = pair
        assert np.array_equal(scipy_blocked.column_block_dense(2),
                              op_blocked.column_block_dense(2))

    def test_row_block_agree(self, pair):
        scipy_blocked, op_blocked = pair
        assert np.array_equal(scipy_blocked.row_block(1).toarray(),
                              op_blocked.row_block(1).toarray())


class TestSolverFastPath:
    """The resilient solver produces identical numerics on both backends."""

    def test_feir_solve_parity(self):
        from repro.core.manager import make_strategy
        from repro.faults.scenarios import single_error_scenario
        from repro.solvers.resilient_cg import ResilientCG, SolverConfig

        A = poisson_2d_5pt(13, 9)
        op = SparseOperator.from_scipy(A)
        b = stencil_rhs(A, kind="random", seed=3)
        cfg = SolverConfig(num_workers=4, page_size=16)

        ideal = ResilientCG(A, b, config=cfg).solve()
        scenario = single_error_scenario("x", page=2,
                                         time=0.4 * ideal.record.solve_time)
        runs = {}
        for label, matrix in (("scipy", A), ("operator", op)):
            solver = ResilientCG(matrix, b, strategy=make_strategy("FEIR"),
                                 scenario=scenario, config=cfg)
            runs[label] = solver.solve(ideal_time=ideal.record.solve_time)
        assert runs["scipy"].record.iterations \
            == runs["operator"].record.iterations
        assert runs["scipy"].record.solve_time \
            == runs["operator"].record.solve_time
        assert np.max(np.abs(runs["scipy"].x - runs["operator"].x)) < PARITY

    def test_reference_cg_accepts_operator(self):
        from repro.solvers.reference import conjugate_gradient
        A = poisson_2d_5pt(10)
        op = SparseOperator.from_scipy(A)
        b = stencil_rhs(A)
        ref = conjugate_gradient(A, b, tol=1e-10)
        fast = conjugate_gradient(op, b, tol=1e-10)
        assert ref.converged and fast.converged
        assert ref.iterations == fast.iterations
        assert np.max(np.abs(ref.x - fast.x)) < PARITY
