"""Tests for Matrix Market I/O and matrix property checks."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices.io import read_matrix_market, write_matrix_market
from repro.matrices.properties import (bandwidth, is_spd, is_symmetric,
                                       nnz_per_row, smallest_eigenvalue,
                                       spd_check)
from repro.matrices.random_spd import random_dense_spd, random_sparse_spd
from repro.matrices.stencil import poisson_2d_5pt


class TestMatrixMarketIO:
    def test_roundtrip_symmetric(self, tmp_path):
        A = poisson_2d_5pt(6)
        path = tmp_path / "poisson.mtx"
        write_matrix_market(A, path, comment="5-point Poisson")
        B = read_matrix_market(path)
        assert (A != B).nnz == 0

    def test_roundtrip_general(self, tmp_path):
        rng = np.random.default_rng(0)
        A = sp.random(20, 20, density=0.1, random_state=rng).tocsr()
        path = tmp_path / "general.mtx"
        write_matrix_market(A, path, symmetric=False)
        B = read_matrix_market(path)
        assert np.allclose((A - B).toarray(), 0.0, atol=1e-14)

    def test_header_declares_symmetry(self, tmp_path):
        path = tmp_path / "sym.mtx"
        write_matrix_market(poisson_2d_5pt(4), path)
        assert "symmetric" in path.read_text().splitlines()[0]

    def test_rejects_non_matrixmarket(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("this is not a matrix\n")
        with pytest.raises(ValueError):
            read_matrix_market(path)

    def test_rejects_unsupported_field(self, tmp_path):
        path = tmp_path / "complex.mtx"
        path.write_text("%%MatrixMarket matrix coordinate complex general\n"
                        "1 1 1\n1 1 1.0 2.0\n")
        with pytest.raises(ValueError):
            read_matrix_market(path)

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "trunc.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real general\n"
                        "2 2 2\n1 1 1.0\n")
        with pytest.raises(ValueError):
            read_matrix_market(path)


class TestProperties:
    def test_is_symmetric(self):
        assert is_symmetric(poisson_2d_5pt(5))
        A = sp.csr_matrix(np.array([[1.0, 2.0], [0.0, 1.0]]))
        assert not is_symmetric(A)

    def test_is_spd_true(self):
        assert is_spd(poisson_2d_5pt(6))
        assert is_spd(sp.csr_matrix(random_dense_spd(30, condition=10)))

    def test_is_spd_false_for_indefinite(self):
        A = sp.diags([1.0, -1.0, 2.0]).tocsr()
        assert not is_spd(A)

    def test_is_spd_false_for_asymmetric(self):
        A = sp.csr_matrix(np.array([[2.0, 1.0], [0.0, 2.0]]))
        assert not is_spd(A)

    def test_smallest_eigenvalue_small_matrix(self):
        A = sp.diags([3.0, 5.0, 0.5]).tocsr()
        assert smallest_eigenvalue(A) == pytest.approx(0.5)

    def test_smallest_eigenvalue_large_matrix_path(self):
        A = random_sparse_spd(700, density=0.005, seed=1)
        assert smallest_eigenvalue(A) > 0

    def test_bandwidth(self):
        assert bandwidth(sp.eye(5).tocsr()) == 0
        assert bandwidth(poisson_2d_5pt(4)) == 4

    def test_nnz_per_row(self):
        assert nnz_per_row(sp.eye(10).tocsr()) == pytest.approx(1.0)

    def test_spd_check_report(self):
        report = spd_check(poisson_2d_5pt(5))
        assert report.spd
        assert report.n == 25
        assert report.nnz > 0


class TestRandomSPD:
    def test_random_sparse_spd_is_spd(self):
        assert is_spd(random_sparse_spd(120, density=0.05, seed=2))

    def test_random_sparse_spd_validation(self):
        with pytest.raises(ValueError):
            random_sparse_spd(0)
        with pytest.raises(ValueError):
            random_sparse_spd(10, density=0.0)
        with pytest.raises(ValueError):
            random_sparse_spd(10, condition_boost=-1.0)

    def test_random_dense_spd_condition(self):
        A = random_dense_spd(40, condition=100.0, seed=0)
        eigs = np.linalg.eigvalsh(A)
        assert eigs.min() > 0
        assert eigs.max() / eigs.min() == pytest.approx(100.0, rel=0.05)

    def test_random_dense_spd_validation(self):
        with pytest.raises(ValueError):
            random_dense_spd(0)
        with pytest.raises(ValueError):
            random_dense_spd(5, condition=0.5)
