"""Tests for stencil and Laplacian generators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices.laplacian import (graph_laplacian, laplacian_1d,
                                      laplacian_2d, laplacian_3d)
from repro.matrices.properties import is_spd, is_symmetric
from repro.matrices.stencil import (poisson_2d_5pt, poisson_3d_7pt,
                                    poisson_3d_27pt, stencil_rhs)


class TestPoisson27:
    def test_shape(self):
        A = poisson_3d_27pt(4)
        assert A.shape == (64, 64)

    def test_interior_row_has_27_entries(self):
        A = poisson_3d_27pt(5)
        # The centre point of the 5^3 grid couples to all 26 neighbours + itself.
        centre = 2 + 2 * 5 + 2 * 25
        assert A[centre].nnz == 27

    def test_diagonal_is_26(self):
        A = poisson_3d_27pt(4)
        assert np.all(A.diagonal() == 26.0)

    def test_symmetric_positive_definite(self):
        A = poisson_3d_27pt(5)
        assert is_spd(A)

    def test_rectangular_grid(self):
        A = poisson_3d_27pt(3, 4, 5)
        assert A.shape == (60, 60)
        assert is_symmetric(A)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            poisson_3d_27pt(0)

    def test_row_sums_nonnegative(self):
        """Diagonal dominance: 26 minus at most 26 neighbours."""
        A = poisson_3d_27pt(4)
        row_sums = np.asarray(A.sum(axis=1)).ravel()
        assert np.all(row_sums >= -1e-12)


class TestClassicStencils:
    def test_poisson_5pt_structure(self):
        A = poisson_2d_5pt(10)
        assert A.shape == (100, 100)
        assert np.all(A.diagonal() == 4.0)
        assert is_spd(A)

    def test_poisson_7pt_structure(self):
        A = poisson_3d_7pt(5)
        assert A.shape == (125, 125)
        assert np.all(A.diagonal() == 6.0)
        assert is_spd(A)

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            poisson_2d_5pt(0)
        with pytest.raises(ValueError):
            poisson_3d_7pt(0)

    def test_rhs_ones_solution(self):
        A = poisson_2d_5pt(8)
        b = stencil_rhs(A, kind="ones")
        x = sp.linalg.spsolve(A.tocsc(), b)
        assert np.allclose(x, 1.0, atol=1e-8)

    def test_rhs_random_is_reproducible(self):
        A = poisson_2d_5pt(8)
        assert np.allclose(stencil_rhs(A, kind="random", seed=3),
                           stencil_rhs(A, kind="random", seed=3))

    def test_rhs_unknown_kind(self):
        with pytest.raises(ValueError):
            stencil_rhs(poisson_2d_5pt(4), kind="nope")


class TestLaplacians:
    def test_laplacian_1d(self):
        L = laplacian_1d(5)
        assert L.shape == (5, 5)
        assert np.all(L.diagonal() == 2.0)

    def test_laplacian_1d_shift(self):
        L = laplacian_1d(5, shift=1.0)
        assert np.all(L.diagonal() == 3.0)

    def test_laplacian_2d_anisotropy(self):
        iso = laplacian_2d(6, 6)
        aniso = laplacian_2d(6, 6, anisotropy=4.0)
        assert aniso.diagonal().max() > iso.diagonal().max()
        assert is_symmetric(aniso)

    def test_laplacian_3d_spd_with_shift(self):
        assert is_spd(laplacian_3d(4, shift=0.1))

    def test_laplacian_invalid(self):
        with pytest.raises(ValueError):
            laplacian_1d(0)

    def test_graph_laplacian_zero_row_sums(self):
        rng = np.random.default_rng(0)
        W = sp.random(30, 30, density=0.2, random_state=rng)
        L = graph_laplacian(W)
        assert np.allclose(np.asarray(L.sum(axis=1)).ravel(), 0.0, atol=1e-10)

    def test_graph_laplacian_shift_makes_spd(self):
        rng = np.random.default_rng(1)
        W = abs(sp.random(40, 40, density=0.2, random_state=rng))
        assert is_spd(graph_laplacian(W, shift=0.5))

    def test_graph_laplacian_requires_square(self):
        with pytest.raises(ValueError):
            graph_laplacian(sp.random(3, 4, density=0.5))
