"""Tests for the synthetic UFL-analogue matrix suite."""

import pytest

from repro.matrices.properties import nnz_per_row, spd_check
from repro.matrices.suite import (PAPER_MATRICES, load_suite, make_matrix,
                                  scaling_matrix)

EXPECTED_NAMES = {"af_shell8", "cfd2", "consph", "Dubcova3", "ecology2",
                  "parabolic_fem", "qa8fm", "thermal2", "thermomech"}


class TestSuiteContents:
    def test_all_nine_paper_matrices_present(self):
        assert set(PAPER_MATRICES) == EXPECTED_NAMES

    def test_metadata_records_original_sizes(self):
        for info in PAPER_MATRICES.values():
            assert info.original_n > info.n
            assert info.original_nnz > 0
            assert info.family

    def test_make_matrix_unknown_name(self):
        with pytest.raises(KeyError):
            make_matrix("not-a-matrix")

    def test_load_suite_subset(self):
        pairs = load_suite(["qa8fm", "thermal2"])
        assert [info.name for info, _ in pairs] == ["qa8fm", "thermal2"]

    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_every_analogue_is_spd(self, name):
        A = make_matrix(name)
        report = spd_check(A)
        assert report.symmetric, f"{name} analogue is not symmetric"
        assert report.smallest_eigenvalue > 0, f"{name} analogue is not PD"

    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_analogue_size_matches_metadata(self, name):
        info = PAPER_MATRICES[name]
        A = make_matrix(name)
        assert A.shape == (info.n, info.n)

    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_reasonable_sparsity(self, name):
        A = make_matrix(name)
        assert 2.0 < nnz_per_row(A) < 40.0

    def test_scaling_matrix_is_27pt(self):
        A = scaling_matrix(8)
        assert A.shape == (512, 512)
        assert A.diagonal().max() == 26.0

    def test_builders_are_deterministic(self):
        a = make_matrix("cfd2")
        b = make_matrix("cfd2")
        assert (a != b).nnz == 0
