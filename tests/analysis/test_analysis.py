"""Tests for the analysis helpers (stats, overheads, histories, tables)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.convergence import ConvergenceRecord, ResidualHistory
from repro.analysis.overheads import (overhead_percent, parallel_efficiency,
                                      slowdown_percent, speedup)
from repro.analysis.report import format_percent, format_table
from repro.analysis.stats import (aggregate_by_key, geometric_mean,
                                  harmonic_mean, harmonic_mean_overhead,
                                  mean_and_std)


class TestStats:
    def test_harmonic_mean_basic(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean([2.0, 6.0]) == pytest.approx(3.0)

    def test_harmonic_mean_validation(self):
        with pytest.raises(ValueError):
            harmonic_mean([])
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    def test_harmonic_mean_overhead_handles_zeros(self):
        assert harmonic_mean_overhead([0.0, 0.0]) == pytest.approx(0.0)
        assert harmonic_mean_overhead([10.0, 10.0]) == pytest.approx(10.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_mean_and_std(self):
        mean, std = mean_and_std([1.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(1.0)

    def test_aggregate_by_key(self):
        grouped = aggregate_by_key([("a", 1.0), ("b", 2.0), ("a", 3.0)])
        assert grouped == {"a": [1.0, 3.0], "b": [2.0]}

    @given(values=st.lists(st.floats(0.1, 100.0), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_harmonic_leq_geometric_leq_arithmetic(self, values):
        hm = harmonic_mean(values)
        gm = geometric_mean(values)
        am = float(np.mean(values))
        assert hm <= gm * (1 + 1e-9)
        assert gm <= am * (1 + 1e-9)


class TestOverheads:
    def test_overhead_percent(self):
        assert overhead_percent(1.1, 1.0) == pytest.approx(10.0)
        assert slowdown_percent(1.0, 1.0) == pytest.approx(0.0)

    def test_overhead_validation(self):
        with pytest.raises(ValueError):
            overhead_percent(1.0, 0.0)
        with pytest.raises(ValueError):
            overhead_percent(-1.0, 1.0)

    def test_speedup_and_efficiency(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert parallel_efficiency(8.0, 16.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)
        with pytest.raises(ValueError):
            parallel_efficiency(1.0, 0.0)

    def test_measured_overhead_allows_negative_noise(self):
        from repro.analysis.overheads import measured_overhead_percent
        assert measured_overhead_percent(1.1, 1.0) == pytest.approx(10.0)
        # Real executions are noisy: faster-than-ideal is a valid reading.
        assert measured_overhead_percent(0.9, 1.0) == pytest.approx(-10.0)
        with pytest.raises(ValueError):
            measured_overhead_percent(1.0, 0.0)
        with pytest.raises(ValueError):
            measured_overhead_percent(-0.1, 1.0)


class TestResidualHistory:
    def test_append_and_final_values(self):
        h = ResidualHistory()
        h.append(0, 0.0, 1.0)
        h.append(1, 0.5, 0.1)
        assert len(h) == 2
        assert h.final_residual == 0.1
        assert h.final_time == 0.5
        assert h.final_iteration == 1

    def test_negative_residual_rejected(self):
        with pytest.raises(ValueError):
            ResidualHistory().append(0, 0.0, -1.0)

    def test_log_residuals(self):
        h = ResidualHistory()
        h.append(0, 0.0, 1.0)
        h.append(1, 1.0, 1e-5)
        np.testing.assert_allclose(h.log_residuals(), [0.0, -5.0])

    def test_monotonicity_check(self):
        h = ResidualHistory()
        for i, r in enumerate([1.0, 0.5, 0.7]):
            h.append(i, float(i), r)
        assert not h.is_monotone()
        assert h.is_monotone(tolerance=0.5)

    def test_time_to_reach(self):
        h = ResidualHistory()
        for i, r in enumerate([1.0, 1e-3, 1e-8]):
            h.append(i, float(i), r)
        assert h.time_to_reach(1e-2) == 1.0
        assert h.time_to_reach(1e-12) is None

    def test_empty_history_defaults(self):
        h = ResidualHistory()
        assert h.final_residual == float("inf")
        assert h.final_time == 0.0


class TestConvergenceRecord:
    def test_slowdown_vs(self):
        base = ConvergenceRecord(True, 10, 1.0, 1e-10)
        other = ConvergenceRecord(True, 12, 1.5, 1e-10)
        assert other.slowdown_vs(base) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            other.slowdown_vs(ConvergenceRecord(True, 1, 0.0, 0.0))

    def test_summary_mentions_status(self):
        rec = ConvergenceRecord(False, 3, 0.5, 1e-2, method="CG-FEIR",
                                matrix="thermal2")
        text = rec.summary()
        assert "NOT converged" in text and "CG-FEIR" in text


class TestReport:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_column_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_percent(self):
        assert format_percent(5.366) == "5.37%"
