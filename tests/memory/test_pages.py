"""Tests for the page-blocked vector abstraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PAGE_DOUBLES
from repro.memory.pages import PagedVector, page_count, page_of_index, page_slice


class TestPageArithmetic:
    def test_page_count_exact_multiple(self):
        assert page_count(1024, 512) == 2

    def test_page_count_partial_last_page(self):
        assert page_count(1025, 512) == 3

    def test_page_count_zero_length(self):
        assert page_count(0, 512) == 0

    def test_page_count_default_page_size(self):
        assert page_count(PAGE_DOUBLES) == 1

    def test_page_count_rejects_negative_length(self):
        with pytest.raises(ValueError):
            page_count(-1, 512)

    def test_page_count_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            page_count(10, 0)

    def test_page_slice_bounds(self):
        sl = page_slice(1, 1000, 512)
        assert sl.start == 512 and sl.stop == 1000

    def test_page_slice_out_of_range(self):
        with pytest.raises(IndexError):
            page_slice(3, 1000, 512)

    def test_page_of_index(self):
        assert page_of_index(0, 512) == 0
        assert page_of_index(511, 512) == 0
        assert page_of_index(512, 512) == 1

    def test_page_of_index_negative(self):
        with pytest.raises(IndexError):
            page_of_index(-1)

    @given(n=st.integers(1, 5000), page_size=st.integers(1, 700))
    @settings(max_examples=60, deadline=None)
    def test_page_slices_partition_the_index_range(self, n, page_size):
        covered = []
        for p in range(page_count(n, page_size)):
            sl = page_slice(p, n, page_size)
            covered.extend(range(sl.start, sl.stop))
        assert covered == list(range(n))


class TestPagedVector:
    def test_zero_initialised_from_length(self):
        v = PagedVector(100, name="v", page_size=32)
        assert v.size == 100
        assert np.all(v.array == 0.0)

    def test_copies_input_data(self):
        data = np.arange(10, dtype=float)
        v = PagedVector(data, name="v", page_size=4)
        data[0] = 99.0
        assert v.array[0] == 0.0

    def test_num_pages(self):
        v = PagedVector(100, page_size=32)
        assert v.num_pages == 4

    def test_page_view_is_writable(self):
        v = PagedVector(64, page_size=16)
        v.page(2)[:] = 5.0
        assert np.all(v.array[32:48] == 5.0)

    def test_set_page_and_zero_page(self):
        v = PagedVector(np.arange(40, dtype=float), page_size=16)
        v.set_page(1, np.full(16, -1.0))
        assert np.all(v.page(1) == -1.0)
        v.zero_page(1)
        assert np.all(v.page(1) == 0.0)

    def test_set_page_wrong_length_raises(self):
        v = PagedVector(40, page_size=16)
        with pytest.raises(ValueError):
            v.set_page(2, np.zeros(16))   # last page holds only 8 values

    def test_fill_from_length_mismatch(self):
        v = PagedVector(10)
        with pytest.raises(ValueError):
            v.fill_from(np.zeros(11))

    def test_fill_from_other_vector(self):
        v = PagedVector(np.arange(10, dtype=float))
        w = PagedVector(10)
        w.fill_from(v)
        assert np.array_equal(w.array, v.array)

    def test_copy_is_independent(self):
        v = PagedVector(np.arange(10, dtype=float), name="v")
        w = v.copy(name="w")
        w.array[:] = 0
        assert v.array[3] == 3.0
        assert w.name == "w"

    def test_norm(self):
        v = PagedVector(np.array([3.0, 4.0]))
        assert v.norm() == pytest.approx(5.0)

    def test_page_indices(self):
        v = PagedVector(40, page_size=16)
        assert list(v.page_indices(2)) == list(range(32, 40))

    def test_pages_iterator_covers_everything(self):
        v = PagedVector(np.arange(50, dtype=float), page_size=16)
        rebuilt = np.concatenate(list(v.pages()))
        assert np.array_equal(rebuilt, v.array)

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            PagedVector(10, page_size=0)

    @given(n=st.integers(1, 2000), page_size=st.integers(1, 600))
    @settings(max_examples=40, deadline=None)
    def test_page_views_tile_the_vector(self, n, page_size):
        v = PagedVector(np.arange(n, dtype=float), page_size=page_size)
        total = sum(p.size for p in v.pages())
        assert total == n
        assert v.num_pages == page_count(n, page_size)
