"""Tests for the per-page bitmask protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.bitmask import Bitmask


class TestBitmask:
    def test_register_and_mark(self):
        mask = Bitmask(4, labels=["g", "q"])
        mask.mark("g", 2)
        assert mask.is_marked("g", 2)
        assert not mask.is_marked("q", 2)
        assert not mask.is_marked("g", 1)

    def test_clear(self):
        mask = Bitmask(4, labels=["g"])
        mask.mark("g", 0)
        mask.clear("g", 0)
        assert not mask.is_marked("g", 0)

    def test_clear_all(self):
        mask = Bitmask(8, labels=["g"])
        for p in range(8):
            mask.mark("g", p)
        mask.clear_all("g")
        assert not mask.any_marked("g")

    def test_marked_pages(self):
        mask = Bitmask(10, labels=["x"])
        mask.mark("x", 3)
        mask.mark("x", 7)
        assert mask.marked_pages("x") == [3, 7]

    def test_pages_with_any(self):
        mask = Bitmask(10, labels=["x", "g"])
        mask.mark("x", 1)
        mask.mark("g", 5)
        assert mask.pages_with_any(["x", "g"]) == [1, 5]

    def test_unknown_label_raises(self):
        mask = Bitmask(4, labels=["g"])
        with pytest.raises(KeyError):
            mask.mark("unknown", 0)

    def test_page_out_of_range(self):
        mask = Bitmask(4, labels=["g"])
        with pytest.raises(IndexError):
            mask.mark("g", 4)

    def test_lazy_label_registration(self):
        mask = Bitmask(4)
        mask.register("later")
        mask.mark("later", 1)
        assert mask.is_marked("later", 1)

    def test_labels_in_bit_order(self):
        mask = Bitmask(2, labels=["c", "a", "b"])
        assert mask.labels == ["c", "a", "b"]

    def test_snapshot_and_reset(self):
        mask = Bitmask(4, labels=["x", "g"])
        mask.mark("x", 0)
        mask.mark("g", 3)
        assert set(mask.snapshot()) == {("x", 0), ("g", 3)}
        mask.reset()
        assert mask.snapshot() == []

    def test_too_many_labels(self):
        mask = Bitmask(2)
        for k in range(63):
            mask.register(f"l{k}")
        with pytest.raises(ValueError):
            mask.register("overflow")

    def test_invalid_page_count(self):
        with pytest.raises(ValueError):
            Bitmask(0)

    @given(ops=st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                                  st.integers(0, 15),
                                  st.booleans()), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_set_semantics(self, ops):
        """The bitmask behaves exactly like a set of (label, page) pairs."""
        mask = Bitmask(16, labels=["a", "b", "c"])
        reference = set()
        for label, page, is_mark in ops:
            if is_mark:
                mask.mark(label, page)
                reference.add((label, page))
            else:
                mask.clear(label, page)
                reference.discard((label, page))
        assert set(mask.snapshot()) == reference
