"""Tests for the memory manager (poison / detect / recover lifecycle)."""

import numpy as np
import pytest

from repro.memory.events import PageState
from repro.memory.manager import MemoryManager
from repro.memory.pages import PagedVector


@pytest.fixture
def manager_with_vector():
    mm = MemoryManager()
    vec = mm.register(PagedVector(np.arange(64, dtype=float), name="x",
                                  page_size=16))
    return mm, vec


class TestRegistration:
    def test_register_requires_name(self):
        mm = MemoryManager()
        with pytest.raises(ValueError):
            mm.register(PagedVector(10))

    def test_duplicate_name_rejected(self):
        mm = MemoryManager()
        mm.register(PagedVector(10, name="x"))
        with pytest.raises(ValueError):
            mm.register(PagedVector(10, name="x"))

    def test_lookup_unknown_vector(self):
        mm = MemoryManager()
        with pytest.raises(KeyError):
            mm.vector("nope")

    def test_total_pages_and_universe(self, manager_with_vector):
        mm, vec = manager_with_vector
        assert mm.total_pages() == 4
        assert mm.page_universe() == [("x", p) for p in range(4)]

    def test_unregister(self, manager_with_vector):
        mm, _ = manager_with_vector
        mm.unregister("x")
        assert mm.total_pages() == 0


class TestFaultLifecycle:
    def test_poison_is_silent_until_touched(self, manager_with_vector):
        mm, vec = manager_with_vector
        mm.poison("x", 1, time=1.0)
        assert mm.state("x", 1) is PageState.POISONED
        # Contents are conceptually lost but not yet blanked.
        assert mm.fault_count() == 0

    def test_touch_detects_and_blanks(self, manager_with_vector):
        mm, vec = manager_with_vector
        mm.poison("x", 1, time=1.0, iteration=7)
        event = mm.touch("x", 1, time=2.0)
        assert event is not None
        assert event.inject_time == 1.0
        assert event.detect_time == 2.0
        assert event.iteration == 7
        assert np.all(vec.page(1) == 0.0)
        assert mm.state("x", 1) is PageState.LOST
        assert mm.fault_count() == 1

    def test_touch_clean_page_is_noop(self, manager_with_vector):
        mm, vec = manager_with_vector
        before = vec.page(2).copy()
        assert mm.touch("x", 2, time=1.0) is None
        assert np.array_equal(vec.page(2), before)

    def test_mark_recovered_restores_valid_state(self, manager_with_vector):
        mm, _ = manager_with_vector
        mm.poison("x", 0, time=0.5)
        mm.touch("x", 0, time=1.0)
        mm.mark_recovered("x", 0)
        assert mm.is_available("x", 0)
        assert not mm.has_faults()

    def test_mark_recovered_on_latent_poison_logs_event(self, manager_with_vector):
        mm, vec = manager_with_vector
        mm.poison("x", 3, time=0.1)
        mm.mark_recovered("x", 3)
        assert mm.fault_count() == 1
        assert np.all(vec.page(3) == 0.0)

    def test_overwrite_cures_latent_poison(self, manager_with_vector):
        mm, vec = manager_with_vector
        mm.poison("x", 2, time=0.1)
        mm.overwrite("x", 2)
        assert mm.is_available("x", 2)
        assert mm.touch("x", 2, time=1.0) is None
        assert mm.fault_count() == 0

    def test_lost_pages_listing(self, manager_with_vector):
        mm, _ = manager_with_vector
        mm.poison("x", 1, time=0.0)
        mm.poison("x", 3, time=0.0)
        assert mm.lost_pages() == [("x", 1), ("x", 3)]
        assert mm.lost_pages("x") == [("x", 1), ("x", 3)]

    def test_reset_faults(self, manager_with_vector):
        mm, _ = manager_with_vector
        mm.poison("x", 1, time=0.0)
        mm.reset_faults()
        assert not mm.has_faults()

    def test_poison_out_of_range(self, manager_with_vector):
        mm, _ = manager_with_vector
        with pytest.raises(IndexError):
            mm.poison("x", 9, time=0.0)

    def test_fault_log_by_vector(self, manager_with_vector):
        mm, _ = manager_with_vector
        mm.poison("x", 0, time=0.0)
        mm.touch("x", 0, time=0.1)
        mm.poison("x", 1, time=0.2)
        mm.touch("x", 1, time=0.3)
        assert mm.log.by_vector() == {"x": 2}
