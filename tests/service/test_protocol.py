"""Wire-protocol invariants of the campaign service.

The one that matters most: a spec serialized for submission must
reconstruct with a **byte-identical content token** — store keys, trial
seeds and therefore every result bit depend on it.  JSON float
round-tripping (``repr``-based) makes this exact, and these tests pin
it down for every knob family.
"""

import pytest

from repro.campaign.spec import CampaignSpec, MatrixSpec, SolverKnobs
from repro.faults.scenarios import ErrorScenario
from repro.runtime.cost_model import CostModel
from repro.service.protocol import (PROTOCOL_VERSION, ProtocolError,
                                    parse_event_line, spec_from_payload,
                                    spec_to_payload, validate_job_id)


def round_trip(spec: CampaignSpec) -> CampaignSpec:
    return spec_from_payload(spec_to_payload(spec))


class TestSpecRoundTrip:
    def test_default_knobs(self):
        spec = CampaignSpec(matrices=["laplacian2d:12"],
                            methods=("FEIR", "AFEIR"), rates=(1.0, 10.0),
                            repetitions=3, seed=42, name="rt")
        back = round_trip(spec)
        assert back.store_key() == spec.store_key()
        assert back.content_token() == spec.content_token()
        assert back.name == "rt"

    def test_non_trivial_knobs(self):
        spec = CampaignSpec(
            matrices=["laplacian2d:8x12", "poisson3d27:4"],
            methods=("Lossy",), rates=(0.5,), repetitions=2, seed=7,
            knobs=SolverKnobs(tolerance=3e-9, max_iterations=1234,
                              page_size=64, preconditioned=True,
                              work_scale=150.0, checkpoint_interval=50))
        assert round_trip(spec).store_key() == spec.store_key()

    def test_runtime_axes(self):
        spec = CampaignSpec(
            matrices=["laplacian2d:10"], methods=("FEIR",), rates=(1.0,),
            knobs=SolverKnobs(scheduler="threaded", placement="ranks",
                              ranks=2, clock="wall"))
        back = round_trip(spec)
        assert back.store_key() == spec.store_key()
        assert back.knobs.runtime_spec() == spec.knobs.runtime_spec()

    def test_custom_cost_model(self):
        knobs = SolverKnobs(cost_model=CostModel(flop_rate=1.25e9,
                                                 task_overhead=1e-5))
        spec = CampaignSpec(matrices=["laplacian2d:10"], knobs=knobs)
        back = round_trip(spec)
        assert back.knobs.cost_model == knobs.cost_model
        assert back.store_key() == spec.store_key()

    def test_suite_matrix(self):
        spec = CampaignSpec(matrices=[MatrixSpec.suite("qa8fm", sparse=True)])
        assert round_trip(spec).store_key() == spec.store_key()

    def test_trial_seeds_survive_the_wire(self):
        """Per-trial seed material is content-keyed, so equal tokens
        imply equal seeds — spot-check the expansion anyway."""
        spec = CampaignSpec(matrices=["laplacian2d:10"],
                            methods=("FEIR",), rates=(2.0,), repetitions=2)
        ours = spec.expand()
        theirs = round_trip(spec).expand()
        assert [t.store_key() for t in ours] == \
            [t.store_key() for t in theirs]


class TestRejections:
    def test_scenario_specs_are_not_wire_expressible(self):
        spec = CampaignSpec(matrices=["laplacian2d:10"],
                            scenario=ErrorScenario(name="x",
                                                   normalized_rate=1.0))
        with pytest.raises(ProtocolError, match="scenario"):
            spec_to_payload(spec)

    def test_version_mismatch(self):
        payload = spec_to_payload(CampaignSpec(matrices=["laplacian2d:10"]))
        payload["version"] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="protocol v"):
            spec_from_payload(payload)

    def test_non_object_payload(self):
        with pytest.raises(ProtocolError):
            spec_from_payload("not a dict")

    def test_unknown_knob(self):
        payload = spec_to_payload(CampaignSpec(matrices=["laplacian2d:10"]))
        payload["knobs"]["warp_drive"] = True
        with pytest.raises(ProtocolError, match="warp_drive"):
            spec_from_payload(payload)

    def test_bad_matrix_family(self):
        payload = spec_to_payload(CampaignSpec(matrices=["laplacian2d:10"]))
        payload["matrices"][0]["family"] = "hilbert"
        with pytest.raises(ProtocolError):
            spec_from_payload(payload)

    def test_missing_fields(self):
        with pytest.raises(ProtocolError):
            spec_from_payload({"version": PROTOCOL_VERSION})


class TestJobIdsAndEvents:
    @pytest.mark.parametrize("good", ["j1-ab12cd34", "job_7", "A-1"])
    def test_valid_job_ids(self, good):
        assert validate_job_id(good) == good

    @pytest.mark.parametrize("bad", ["", "../etc", "a/b", "a b", "j%00"])
    def test_malformed_job_ids(self, bad):
        with pytest.raises(ProtocolError):
            validate_job_id(bad)

    def test_blank_line_is_keepalive(self):
        assert parse_event_line("   \n") is None

    def test_bad_json_line(self):
        with pytest.raises(ProtocolError):
            parse_event_line("{not json")

    def test_event_without_kind(self):
        with pytest.raises(ProtocolError):
            parse_event_line('{"index": 3}')
