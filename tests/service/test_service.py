"""End-to-end tests of the campaign service daemon.

Each test boots a real :class:`CampaignService` on an ephemeral port
(``port=0``) and talks to it through :class:`ServiceClient` over actual
HTTP, so the wire path (chunked watch streaming included) is exercised,
not mocked.  The three invariants the service is built around:

1. a daemon-run campaign's fingerprint is byte-identical to the offline
   ``python -m repro.campaign run`` of the same spec;
2. a warm resubmission executes zero trials — everything is served from
   the warm cache, and ``/metrics`` proves it;
3. a worker death mid-job is absorbed: the shard is retried with the
   already-recorded trials skipped and the fingerprint is unchanged.
"""

import pytest

from repro.campaign.engine import clear_caches, run_campaign
from repro.campaign.executors import SerialExecutor
from repro.campaign.spec import CampaignSpec, SolverKnobs
from repro.campaign.store import CampaignStore, clear_store_cache
from repro.service import (CampaignService, ChaosMonkey, ServiceClient,
                           ServiceError, WorkerDied)
from repro.service.protocol import ProtocolError, TERMINAL_STATES


def tiny_spec(**overrides):
    defaults = dict(
        matrices=["laplacian2d:10"], methods=("FEIR", "Lossy"),
        rates=(2.0, 20.0), repetitions=2, seed=99,
        knobs=SolverKnobs(tolerance=1e-8, max_iterations=2000,
                          num_workers=4, page_size=20),
        name="tiny")
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def offline_fingerprint(spec):
    """The ground truth: a serial, storeless, single-process run."""
    clear_caches()
    result = run_campaign(spec, executor=SerialExecutor())
    clear_caches()
    return result.fingerprint()


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    clear_store_cache()
    yield
    clear_caches()
    clear_store_cache()


@pytest.fixture()
def service(tmp_path):
    svc = CampaignService(host="127.0.0.1", port=0, workers=2,
                          store=CampaignStore(tmp_path / "store"))
    svc.start()
    yield svc
    svc.shutdown(drain=False, timeout=30)


@pytest.fixture()
def client(service):
    c = ServiceClient(service.url())
    c.wait_until_up()
    return c


class TestFingerprintInvariant:
    def test_daemon_matches_offline(self, client):
        spec = tiny_spec()
        reference = offline_fingerprint(spec)
        job = client.submit(spec)
        status = client.wait(job["id"], timeout=120)
        assert status["state"] == "done"
        assert status["executed"] == spec.num_trials
        assert status["cached"] == 0
        assert status["fingerprint"] == reference

    def test_offline_resumes_from_daemon_store(self, service, client,
                                               tmp_path):
        """The daemon persists through the same content-addressed store
        the offline engine reads — an offline re-run of a daemon-executed
        campaign is fully warm and fingerprint-identical."""
        spec = tiny_spec()
        job = client.submit(spec)
        status = client.wait(job["id"], timeout=120)
        assert status["state"] == "done"

        clear_caches()
        clear_store_cache()
        offline = run_campaign(spec, executor=SerialExecutor(),
                               store=CampaignStore(tmp_path / "store"))
        assert offline.executed == 0
        assert offline.cache_hits == spec.num_trials
        assert offline.fingerprint() == status["fingerprint"]


class TestWarmResubmission:
    def test_second_submission_executes_nothing(self, client):
        spec = tiny_spec()
        first = client.wait(client.submit(spec)["id"], timeout=120)
        second = client.wait(client.submit(spec)["id"], timeout=120)
        assert second["state"] == "done"
        assert second["executed"] == 0
        assert second["cached"] == spec.num_trials
        assert second["fingerprint"] == first["fingerprint"]

        metrics = client.metrics()
        assert metrics["cache"]["trials"]["hits"] >= spec.num_trials
        assert metrics["trials"]["executed"] == spec.num_trials
        assert metrics["trials"]["cached"] >= spec.num_trials

    def test_fresh_daemon_is_warm_from_the_store(self, service, client,
                                                 tmp_path):
        """A restarted daemon (cold RAM, same store root) still executes
        zero trials — persistence, not process memory, carries the heat."""
        spec = tiny_spec()
        first = client.wait(client.submit(spec)["id"], timeout=120)
        assert first["state"] == "done"

        clear_caches()
        clear_store_cache()
        svc2 = CampaignService(host="127.0.0.1", port=0, workers=2,
                               store=CampaignStore(tmp_path / "store"))
        svc2.start()
        try:
            c2 = ServiceClient(svc2.url())
            c2.wait_until_up()
            resumed = c2.wait(c2.submit(spec)["id"], timeout=120)
            assert resumed["state"] == "done"
            assert resumed["executed"] == 0
            assert resumed["cached"] == spec.num_trials
            assert resumed["fingerprint"] == first["fingerprint"]
        finally:
            svc2.shutdown(drain=False, timeout=30)


class TestWorkerDeath:
    def test_chaos_kill_is_absorbed(self):
        """A worker dying mid-shard must not fail the job or change one
        bit of the result: the shard is requeued and already-recorded
        trials are skipped."""
        spec = tiny_spec()
        reference = offline_fingerprint(spec)
        svc = CampaignService(host="127.0.0.1", port=0, workers=2,
                              store=None, chaos=ChaosMonkey(2))
        svc.start()
        try:
            client = ServiceClient(svc.url())
            client.wait_until_up()
            status = client.wait(client.submit(spec)["id"], timeout=120)
            assert status["state"] == "done"
            assert status["fingerprint"] == reference
            assert status["shard_retries"] >= 1
            metrics = client.metrics()
            assert metrics["worker_deaths"] >= 1
        finally:
            svc.shutdown(drain=False, timeout=30)

    def test_chaos_monkey_fires_exactly_once(self):
        chaos = ChaosMonkey(3)
        chaos(0, 1)
        chaos(0, 2)
        with pytest.raises(WorkerDied):
            chaos(0, 3)
        chaos(0, 4)  # second worker survives the same count

    def test_chaos_monkey_env_parsing(self, monkeypatch):
        from repro.service.server import SERVICE_CHAOS_ENV
        monkeypatch.delenv(SERVICE_CHAOS_ENV, raising=False)
        assert ChaosMonkey.from_env() is None
        monkeypatch.setenv(SERVICE_CHAOS_ENV, "kill-worker:5")
        assert ChaosMonkey.from_env().kill_after == 5
        monkeypatch.setenv(SERVICE_CHAOS_ENV, "set-fire-to:everything")
        with pytest.raises(ValueError):
            ChaosMonkey.from_env()


class TestWatchStream:
    def test_watch_streams_every_trial_event(self, client):
        spec = tiny_spec()
        job = client.submit(spec)
        events = list(client.watch(job["id"], read_timeout=120))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "queued"
        assert "start" in kinds
        assert kinds[-1] == "done"
        trials = [e for e in events if e["event"] == "trial"]
        assert len(trials) == spec.num_trials
        assert sorted(e["index"] for e in trials) == \
            list(range(spec.num_trials))
        done = events[-1]
        assert done["fingerprint"] == client.status(job["id"])["fingerprint"]

    def test_late_watcher_replays_history(self, client):
        """Attaching after completion still yields the full event log."""
        spec = tiny_spec()
        job = client.submit(spec)
        client.wait(job["id"], timeout=120)
        events = list(client.watch(job["id"], read_timeout=30))
        assert events[-1]["event"] == "done"
        assert len([e for e in events if e["event"] == "trial"]) == \
            spec.num_trials

    def test_watch_unknown_job(self, client):
        with pytest.raises(ServiceError):
            list(client.watch("j999-deadbeef", read_timeout=10))


class TestCancelAndShutdown:
    def test_cancel_stops_dispatch(self, client):
        spec = tiny_spec(repetitions=25)  # 100 trials: long enough to hit
        job = client.submit(spec)
        client.cancel(job["id"])
        final = client.wait(job["id"], timeout=120)
        assert final["state"] == "cancelled"
        assert final["completed"] < spec.num_trials
        assert final["fingerprint"] is None

    def test_drain_shutdown_finishes_queued_work(self, tmp_path):
        spec = tiny_spec()
        svc = CampaignService(host="127.0.0.1", port=0, workers=2,
                              store=CampaignStore(tmp_path / "store"))
        svc.start()
        client = ServiceClient(svc.url())
        client.wait_until_up()
        job = client.submit(spec)
        svc.shutdown(drain=True, timeout=120)
        assert svc.job(job["id"]).state == "done"
        assert svc.job(job["id"]).fingerprint is not None
        with pytest.raises(ProtocolError, match="not accepting"):
            svc.submit(spec)

    def test_jobs_listing_and_bad_ids(self, client):
        spec = tiny_spec()
        job = client.submit(spec)
        client.wait(job["id"], timeout=120)
        listed = client.jobs()
        assert [j["id"] for j in listed] == [job["id"]]
        with pytest.raises(ServiceError):
            client.status("no-such-job")
        # the client refuses malformed ids before any request goes out...
        with pytest.raises(ProtocolError):
            client.status("..%2f..%2fetc")
        # ...and the server rejects them independently (raw HTTP)
        import http.client
        conn = http.client.HTTPConnection(client.host, client.port,
                                          timeout=10)
        try:
            conn.request("GET", "/jobs/..%2f..%2fetc")
            assert conn.getresponse().status == 400
        finally:
            conn.close()


class TestMetricsAndHealth:
    def test_health_reports_protocol_version(self, client):
        from repro.service.protocol import PROTOCOL_VERSION
        health = client.health()
        assert health["version"] == PROTOCOL_VERSION

    def test_metrics_shape(self, client):
        spec = tiny_spec()
        client.wait(client.submit(spec)["id"], timeout=120)
        m = client.metrics()
        assert m["workers"] == 2
        assert m["jobs"]["done"] == 1
        assert m["queue_depth"] == 0
        assert m["trials"]["completed"] == spec.num_trials
        assert set(m["cache"]) >= {"matrices", "baselines", "trials"}
        assert m["store"] is not None
        for detail in m["jobs_detail"].values():
            assert detail["state"] in TERMINAL_STATES


class TestConcurrentSubmissions:
    def test_interleaved_jobs_keep_their_fingerprints(self, client):
        """Two different specs in flight at once must not cross-talk —
        content-keyed seeds make every trial self-contained."""
        spec_a = tiny_spec()
        spec_b = tiny_spec(seed=123, name="tiny-b")
        ref_a = offline_fingerprint(spec_a)
        ref_b = offline_fingerprint(spec_b)
        job_a = client.submit(spec_a)
        job_b = client.submit(spec_b)
        done_a = client.wait(job_a["id"], timeout=120)
        done_b = client.wait(job_b["id"], timeout=120)
        assert done_a["fingerprint"] == ref_a
        assert done_b["fingerprint"] == ref_b
        assert done_a["fingerprint"] != done_b["fingerprint"]
