"""Tests for error scenarios (rate sweeps, single-error, multi-error)."""

import pytest

from repro.faults.injector import Injection
from repro.faults.scenarios import (PAPER_ERROR_RATES, ErrorScenario,
                                    fault_free_scenario, multi_error_scenario,
                                    normalized_rate_scenarios,
                                    single_error_scenario)


class TestScenarioConstruction:
    def test_paper_rates_constant(self):
        assert PAPER_ERROR_RATES == (1.0, 2.0, 5.0, 10.0, 20.0, 50.0)

    def test_fault_free(self):
        scen = fault_free_scenario()
        assert scen.is_fault_free
        assert scen.schedule(1.0, 10.0, [("x", 0)]) == []

    def test_rate_scenarios_grid(self):
        scens = normalized_rate_scenarios(rates=(1, 2), repetitions=3)
        assert len(scens) == 6
        assert len({s.seed for s in scens}) == 6

    def test_rate_scenarios_validation(self):
        with pytest.raises(ValueError):
            normalized_rate_scenarios(repetitions=0)
        with pytest.raises(ValueError):
            normalized_rate_scenarios(rates=(0.0,))

    def test_single_error_scenario(self):
        scen = single_error_scenario("x", 3, 1.5)
        schedule = scen.schedule(1.0, 10.0, [("x", 0)])
        assert schedule == [Injection(time=1.5, vector="x", page=3)]
        assert not scen.is_fault_free

    def test_single_error_negative_time(self):
        with pytest.raises(ValueError):
            single_error_scenario("x", 0, -1.0)

    def test_multi_error_scenario_sorted(self):
        scen = multi_error_scenario([Injection(2.0, "g", 1),
                                     Injection(1.0, "x", 0)])
        schedule = scen.schedule(1.0, 10.0, [])
        assert [inj.time for inj in schedule] == [1.0, 2.0]


class TestScenarioInjector:
    def test_rate_scenario_schedule_scales_with_rate(self):
        pages = [("x", p) for p in range(16)]
        low = ErrorScenario(normalized_rate=1.0, seed=5)
        high = ErrorScenario(normalized_rate=20.0, seed=5)
        n_low = len(low.schedule(1.0, 50.0, pages))
        n_high = len(high.schedule(1.0, 50.0, pages))
        assert n_high > 5 * max(n_low, 1)

    def test_zero_rate_gives_null_injector(self):
        scen = ErrorScenario(normalized_rate=0.0)
        assert scen.injector(1.0).expected_errors(100.0) == 0.0

    def test_fixed_injections_take_priority(self):
        scen = ErrorScenario(normalized_rate=10.0,
                             fixed_injections=[Injection(0.5, "x", 0)])
        assert len(scen.schedule(1.0, 100.0, [("x", 0)])) == 1
